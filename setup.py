"""Shim for environments without PEP 660 editable support (no wheel)."""
from setuptools import setup

setup()
