#!/usr/bin/env python
"""Routing kernels across a heterogeneous QPU fleet.

Facilities will operate mixed fleets (the paper: technologies differ by
orders of magnitude in time scale, and every vendor brings its own
access path).  This example routes a bursty mixed-size kernel stream
across two superconducting devices and one trapped-ion device under
each routing policy of :class:`repro.quantum.fleet.QPUFleet` and
reports makespan and per-device load.

The :class:`~repro.quantum.fleet.QPUFleet` router sits *below* the
declarative scenario surface (heterogeneous fleets in ``FleetSpec``
are a roadmap item), so this example assembles its kernel and devices
directly.

Run with::

    python examples/fleet_routing.py
"""

from repro.metrics.report import render_table
from repro.quantum import SUPERCONDUCTING, TRAPPED_ION, Circuit
from repro.quantum.fleet import ROUTING_POLICIES, QPUFleet
from repro.quantum.qpu import QPU
from repro.sim import Kernel, RandomStreams

KERNELS = 60


def workload(streams: RandomStreams):
    rng = streams.stream("workload")
    stream = []
    for index in range(KERNELS):
        shots = int(rng.integers(500, 5000))
        stream.append((Circuit(12, 80, name=f"k{index}"), shots))
    return stream


def main() -> None:
    rows = []
    for policy in ROUTING_POLICIES:
        kernel = Kernel()
        streams = RandomStreams(21)
        fleet = QPUFleet(
            [
                QPU(kernel, SUPERCONDUCTING, name="sc0"),
                QPU(kernel, SUPERCONDUCTING, name="sc1"),
                QPU(kernel, TRAPPED_ION, name="ti0"),
            ],
            policy=policy,
        )
        for circuit, shots in workload(streams):
            fleet.run(circuit, shots)
        kernel.run()
        rows.append(
            [
                policy,
                f"{kernel.now:.1f}",
                fleet.routed_counts["sc0"],
                fleet.routed_counts["sc1"],
                fleet.routed_counts["ti0"],
            ]
        )

    print(
        render_table(
            ["policy", "makespan_s", "sc0", "sc1", "ti0"],
            rows,
            title=(
                f"{KERNELS} mixed kernels across 2x superconducting + "
                "1x trapped-ion"
            ),
        )
    )
    print()
    print(
        "Earliest-finish-time routing balances the fast twins and "
        "keeps kernels off\nthe slow device; queue-length or "
        "round-robin routing poisons the makespan\nwith minute-scale "
        "trapped-ion jobs."
    )


if __name__ == "__main__":
    main()
