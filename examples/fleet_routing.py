#!/usr/bin/env python
"""Routing kernels across a heterogeneous QPU fleet, declaratively.

Facilities will operate mixed fleets (the paper: technologies differ by
orders of magnitude in time scale, and every vendor brings its own
access path).  This example declares the fleet once — two
superconducting devices plus one trapped-ion device, via
``FleetSpec.devices`` — then rebuilds the facility under each routing
policy of :class:`repro.quantum.fleet.QPUFleet` with a dotted-path
override on ``fleet.routing``, drives the same bursty mixed-size
kernel stream through ``env.fleet`` and reports makespan and
per-device load.

Run with::

    python examples/fleet_routing.py
"""

from repro.metrics.report import render_table
from repro.quantum import Circuit
from repro.quantum.fleet import ROUTING_POLICIES
from repro.scenarios import (
    DeviceSpec,
    FleetSpec,
    ScenarioSpec,
    build,
    with_overrides,
)

KERNELS = 60

SCENARIO = ScenarioSpec(
    name="routing-demo",
    fleet=FleetSpec(
        devices=(
            DeviceSpec(technology="superconducting", name="sc", count=2),
            DeviceSpec(technology="trapped_ion", name="ti"),
        ),
    ),
    seed=21,
)


def workload(streams):
    rng = streams.stream("workload")
    stream = []
    for index in range(KERNELS):
        shots = int(rng.integers(500, 5000))
        stream.append((Circuit(12, 80, name=f"k{index}"), shots))
    return stream


def main() -> None:
    rows = []
    for policy in ROUTING_POLICIES:
        env = build(with_overrides(SCENARIO, {"fleet.routing": policy}))
        for circuit, shots in workload(env.streams):
            env.fleet.run(circuit, shots)
        env.kernel.run()
        rows.append(
            [
                policy,
                f"{env.kernel.now:.1f}",
                env.fleet.routed_counts["sc-0"],
                env.fleet.routed_counts["sc-1"],
                env.fleet.routed_counts["ti-0"],
            ]
        )

    print(
        render_table(
            ["policy", "makespan_s", "sc-0", "sc-1", "ti-0"],
            rows,
            title=(
                f"{KERNELS} mixed kernels across 2x superconducting + "
                "1x trapped-ion"
            ),
        )
    )
    print()
    print(
        "Earliest-finish-time routing balances the fast twins and "
        "keeps kernels off\nthe slow device; queue-length or "
        "round-robin routing poisons the makespan\nwith minute-scale "
        "trapped-ion jobs.  The same fleet is sweepable from the\n"
        "scenario layer: axis 'fleet.routing' over the mixed-fleet "
        "preset."
    )


if __name__ == "__main__":
    main()
