#!/usr/bin/env python
"""Synthetic SWF trace replay comparing backfill policies.

Generates an archive-shaped synthetic workload trace (log-uniform
runtimes, power-of-two job sizes, Poisson arrivals), writes it to SWF,
reads it back, and replays it through the batch scheduler under FIFO,
EASY and conservative backfill — alongside a stream of hybrid HPC-QC
hetjobs, which are exactly the jobs head-of-line blocking punishes.

Run with::

    python examples/trace_replay.py
"""

import tempfile

from repro.metrics.report import render_table
from repro.metrics.stats import mean
from repro.quantum import SUPERCONDUCTING
from repro.strategies import CoScheduleStrategy, make_environment
from repro.experiments.common import standard_hybrid_app
from repro.workloads import (
    CampaignDriver,
    LogUniform,
    PowerOfTwoNodes,
    read_swf,
    submit_trace,
    synthesise_trace,
    write_swf,
)

TRACE_JOBS = 80
POLICIES = ("fifo", "easy", "conservative")


def main() -> None:
    # Synthesise once, persist to SWF, and reuse the identical trace
    # for every policy (as a trace-replay study would).
    seed_env = make_environment(seed=99)
    # Runtime/size marginals chosen for an offered load of ~0.8 on the
    # 32-node partition: mean work ~2900 node-s per job every ~115 s.
    trace = synthesise_trace(
        seed_env.streams.stream("trace"),
        job_count=TRACE_JOBS,
        mean_interarrival=115.0,
        runtimes=LogUniform(120.0, 1800.0),
        sizes=PowerOfTwoNodes(2, 8),
    )
    with tempfile.NamedTemporaryFile(
        "w", suffix=".swf", delete=False
    ) as handle:
        write_swf(trace, handle)
        path = handle.name
    trace = read_swf(path)
    print(f"Synthesised {len(trace)} jobs -> {path}")
    print()

    rows = []
    for policy in POLICIES:
        env = make_environment(
            classical_nodes=32,
            technology=SUPERCONDUCTING,
            policy=policy,
            seed=99,
        )
        jobs = submit_trace(env, trace)
        driver = CampaignDriver(env, CoScheduleStrategy())
        hybrids = [
            standard_hybrid_app(
                SUPERCONDUCTING,
                iterations=3,
                classical_phase_seconds=120.0,
                classical_nodes=8,
                name=f"hybrid-{index}",
            )
            for index in range(4)
        ]
        driver.launch_all(
            hybrids, submit_times=[900.0 * i for i in range(4)]
        )
        hybrid_records = driver.collect()
        env.kernel.run()  # drain the rest of the trace

        waits = [j.wait_time for j in jobs if j.wait_time is not None]
        slowdowns = [
            j.slowdown() for j in jobs if j.slowdown() is not None
        ]
        rows.append(
            [
                policy,
                f"{mean(waits):.0f}",
                f"{mean(slowdowns):.2f}",
                f"{mean([r.total_queue_wait for r in hybrid_records]):.0f}",
                f"{env.cluster.node_utilisation('classical'):.3f}",
                f"{env.kernel.now / 3600:.2f}",
            ]
        )

    print(
        render_table(
            [
                "policy",
                "trace mean_wait_s",
                "trace mean_slowdown",
                "hybrid queue_wait_s",
                "classical_util",
                "makespan_h",
            ],
            rows,
            title=(
                f"SWF replay ({TRACE_JOBS} classical jobs + 4 hybrid "
                "hetjobs, 32 nodes)"
            ),
        )
    )
    print()
    print(
        "Backfill keeps the machine dense around the rigid hetjobs; "
        "strict FIFO\nhead-blocking shows up directly in the trace "
        "jobs' waits and slowdowns."
    )


if __name__ == "__main__":
    main()
