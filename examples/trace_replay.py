#!/usr/bin/env python
"""Trace-driven workload replay through the declarative scenario layer.

The ``trace-replay`` preset binds the checked-in synthetic SWF sample
(64 archive-shaped jobs, offered load ~0.86 on 32 nodes) to the
baseline facility.  This example replays that trace under FIFO, EASY
and conservative backfill by perturbing the preset with dotted-path
overrides — no imperative environment assembly — then sweeps the
trace's ``time_scale`` through the deterministic sweep engine to show
how compressing arrivals stresses the queue.

Environment knobs (for quick smoke runs): ``REPRO_EXAMPLE_HORIZON``
caps the simulated seconds.

Run with::

    python examples/trace_replay.py
"""

import os

from repro.experiments.sweep import run_sweep
from repro.metrics.report import render_table
from repro.scenarios import (
    get_scenario,
    run_scenario,
    run_scenario_point,
    scenario_sweep_spec,
    with_overrides,
)

POLICIES = ("fifo", "easy", "conservative")
HORIZON = float(os.environ.get("REPRO_EXAMPLE_HORIZON", 4 * 3600.0))


def main() -> None:
    preset = get_scenario("trace-replay")
    print(f"Preset: {preset.name} — {preset.description}")
    print()

    # One facility per policy, identical trace: a classic replay study.
    rows = []
    for policy in POLICIES:
        spec = with_overrides(preset, {"policy.policy": policy})
        metrics = run_scenario(spec, seed=99, horizon=HORIZON)
        rows.append(
            [
                policy,
                str(metrics["trace_jobs"]),
                str(metrics["trace_completed"]),
                f"{metrics['trace_mean_wait_s']:.0f}",
                f"{metrics['trace_mean_slowdown']:.2f}",
                f"{metrics['utilisation_classical']:.3f}",
            ]
        )
    print(
        render_table(
            [
                "policy",
                "jobs",
                "completed",
                "mean_wait_s",
                "mean_slowdown",
                "classical_util",
            ],
            rows,
            title="SWF sample replayed under three backfill policies",
        )
    )
    print()

    # Sweep a trace-rescale field by dotted path: halving submit times
    # doubles the arrival rate at unchanged per-job work.
    sweep = scenario_sweep_spec(
        "trace-replay",
        {"workload.trace.time_scale": [1.0, 0.75, 0.5]},
        run_horizon=HORIZON,
    )
    result = run_sweep(sweep, run_scenario_point)
    rows = [
        [
            f"{point.params['workload.trace.time_scale']:.2f}",
            str(value["trace_jobs"]),
            f"{value['trace_mean_wait_s']:.0f}",
            f"{value['trace_mean_slowdown']:.2f}",
        ]
        for point, value in zip(result.points, result.values)
    ]
    print(
        render_table(
            ["time_scale", "jobs", "mean_wait_s", "mean_slowdown"],
            rows,
            title="workload.trace.time_scale sweep (EASY backfill)",
        )
    )
    print()
    print(
        "Backfill keeps the machine dense around the rigid jobs; "
        "compressing the\ntrace (time_scale < 1) packs the same work "
        "into less time and the queue\nwait climbs accordingly."
    )


if __name__ == "__main__":
    main()
