#!/usr/bin/env python
"""Multi-user VQE campaign sharing one superconducting QPU via VQPUs.

Eight research groups each run a VQE campaign (classical optimisation
interleaved with second-scale kernels).  The facility exposes the
single physical QPU as a configurable number of *virtual* QPU gres
units (paper Fig 3).  The script sweeps the VQPU count and reports
campaign makespan, tenant turnaround, physical-device utilisation and
the measured interleaving delay against the (V-1)·task bound.

Run with::

    python examples/vqe_campaign.py
"""

from repro.metrics.report import render_table
from repro.metrics.stats import mean
from repro.quantum import SUPERCONDUCTING, Circuit
from repro.scenarios import FleetSpec, ScenarioSpec, TopologySpec, build
from repro.strategies import VQPUStrategy, vqe_like
from repro.workloads import CampaignDriver

GROUPS = 8
VQPU_SWEEP = (1, 2, 4, 8)


def make_campaign_apps():
    """One VQE app per research group (varied ansatz depths)."""
    apps = []
    for index in range(GROUPS):
        circuit = Circuit(
            num_qubits=10 + index,
            depth=80 + 20 * index,
            geometry=f"ansatz-{index}",
            name=f"group{index}-ansatz",
        )
        apps.append(
            vqe_like(
                iterations=4,
                classical_work=150.0 * 2,  # 150 s at 2 nodes
                circuit=circuit,
                shots=1000,
                classical_nodes=2,
                name=f"group-{index}",
            )
        )
    return apps


def main() -> None:
    rows = []
    for vqpus in VQPU_SWEEP:
        env = build(
            ScenarioSpec(
                name="vqe-campaign",
                topology=TopologySpec(classical_nodes=4 * GROUPS),
                fleet=FleetSpec(
                    technology="superconducting", vqpus_per_qpu=vqpus
                ),
                seed=7,
            )
        )
        driver = CampaignDriver(env, VQPUStrategy())
        driver.launch_all(make_campaign_apps())
        records = driver.collect()

        makespan = max(r.end_time for r in records) - min(
            r.submit_time for r in records
        )
        qpu = env.primary_qpu()
        waits = [w for r in records for w in r.quantum_access_waits]
        kernel_times = [
            r.qpu_busy_seconds / max(len(r.quantum_access_waits), 1)
            for r in records
        ]
        bound = (vqpus - 1) * max(kernel_times)
        rows.append(
            [
                vqpus,
                f"{makespan:.0f}",
                f"{mean([r.turnaround for r in records]):.0f}",
                f"{qpu.busy.time_average(makespan):.4f}",
                f"{max(waits):.2f}",
                f"{bound:.2f}",
            ]
        )

    print(
        render_table(
            [
                "VQPUs",
                "makespan_s",
                "mean_turnaround_s",
                "qpu_busy_fraction",
                "max_kernel_wait_s",
                "(V-1)*task bound_s",
            ],
            rows,
            title=(
                f"{GROUPS} VQE campaigns sharing one superconducting QPU"
            ),
        )
    )
    print()
    print(
        "Temporal interleaving collapses the campaign makespan while "
        "keeping every\nkernel's extra wait under the (V-1) x task-time "
        "bound the paper states."
    )


if __name__ == "__main__":
    main()
