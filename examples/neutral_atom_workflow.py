#!/usr/bin/env python
"""Neutral-atom sampling pipeline as a loosely-coupled workflow.

A neutral-atom QPU takes >30 minutes per job once register-geometry
calibration is counted (paper Fig 1), so exclusively co-scheduling
classical nodes alongside it wastes them (Section 3).  This example
runs a three-stage analysis pipeline — prepare → sample (quantum) →
post-process, twice, with a final aggregation — both ways and shows
the workflow's node-hour savings.

Run with::

    python examples/neutral_atom_workflow.py
"""

from repro.metrics.report import render_table
from repro.quantum import NEUTRAL_ATOM, Circuit
from repro.scenarios import FleetSpec, ScenarioSpec, TopologySpec, build
from repro.strategies import (
    CoScheduleStrategy,
    HybridApplication,
    WorkflowStrategy,
    classical,
    quantum,
)


def make_pipeline() -> HybridApplication:
    circuit = Circuit(
        num_qubits=100,
        depth=60,
        geometry="kagome-lattice",
        name="rydberg-sampler",
    )
    return HybridApplication(
        phases=[
            classical(600.0 * 16),   # 10 min prepare at 16 nodes
            quantum(circuit, 1000),  # ~30+ min incl. calibration
            classical(900.0 * 16),   # 15 min analysis
            quantum(circuit, 1000),  # geometry cached: faster
            classical(1200.0 * 16),  # 20 min final aggregation
        ],
        classical_nodes=16,
        min_classical_nodes=1,
        name="neutral-atom-pipeline",
    )


def main() -> None:
    app = make_pipeline()
    print(f"Pipeline: {app.name}")
    print(
        "  quantum job estimate (first, incl. geometry calibration): "
        f"{NEUTRAL_ATOM.job_time_with_calibration(app.phases[1].circuit, 1000) / 60:.1f} min"
    )
    print()

    rows = []
    for strategy in (CoScheduleStrategy(), WorkflowStrategy()):
        env = build(
            ScenarioSpec(
                name="neutral-atom-pipeline",
                topology=TopologySpec(classical_nodes=32),
                fleet=FleetSpec(technology="neutral_atom"),
                seed=3,
            )
        )
        run = strategy.launch(env, app)
        env.kernel.run(until=run.done)
        record = run.record
        node_hours_held = record.classical_held_node_seconds / 3600.0
        node_hours_used = record.classical_useful_node_seconds / 3600.0
        rows.append(
            [
                record.strategy,
                f"{record.turnaround / 60:.1f}",
                f"{node_hours_held:.1f}",
                f"{node_hours_used:.1f}",
                f"{record.classical_efficiency:.2f}",
                f"{record.qpu_efficiency:.2f}",
            ]
        )

    print(
        render_table(
            [
                "strategy",
                "turnaround_min",
                "node_hours_held",
                "node_hours_used",
                "classical_eff",
                "qpu_eff",
            ],
            rows,
            title="Neutral-atom pipeline: co-scheduling vs workflow",
        )
    )
    print()
    print(
        "While the QPU grinds through its half-hour jobs, the "
        "co-scheduled variant\nkeeps 16 classical nodes captive; the "
        "workflow releases them between steps\nand burns a fraction of "
        "the node-hours for the same turnaround."
    )


if __name__ == "__main__":
    main()
