#!/usr/bin/env python
"""A malleable hybrid job on a busy cluster (paper Fig 4).

A saturated classical partition makes every extra queue entry
expensive.  The malleable job queues once, shrinks to a single node
while its kernels run on the QPU (returning nodes to the backfill
scheduler), and grows back afterwards — the scheduler grants regrowth
ahead of new jobs.  Compared against a workflow, which re-queues at
every step.

Environment knobs (for quick smoke runs): ``REPRO_EXAMPLE_HORIZON``
caps the background horizon.

Run with::

    python examples/malleable_cluster.py
"""

import os

from repro.metrics.report import render_table
from repro.quantum import Circuit
from repro.scenarios import (
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build,
    install_background,
)
from repro.strategies import (
    CoScheduleStrategy,
    MalleableStrategy,
    WorkflowStrategy,
    vqe_like,
)
from repro.workloads import CampaignDriver

BACKGROUND_RHO = 1.15     # offered load on the classical partition
WARMUP = 3600.0           # let the queue build before submitting
HORIZON = float(os.environ.get("REPRO_EXAMPLE_HORIZON", 8 * 3600.0))


def make_app():
    return vqe_like(
        iterations=5,
        classical_work=300.0 * 8,
        circuit=Circuit(num_qubits=12, depth=100, geometry="g0"),
        shots=1000,
        classical_nodes=8,
        min_classical_nodes=1,
        name="malleable-demo",
    )


def main() -> None:
    rows = []
    for strategy in (
        CoScheduleStrategy(),
        WorkflowStrategy(),
        MalleableStrategy(reconfiguration_cost=5.0),
    ):
        spec = ScenarioSpec(
            name="malleable-demo",
            topology=TopologySpec(classical_nodes=32),
            workload=WorkloadSpec(
                background_rho=BACKGROUND_RHO, horizon=HORIZON
            ),
            seed=0,
        )
        env = build(spec)
        install_background(env, spec.workload)
        driver = CampaignDriver(env, strategy)
        driver.launch_all([make_app()], submit_times=[WARMUP])
        [record] = driver.collect()
        grow_waits = record.details.get("grow_waits_s", [])
        rows.append(
            [
                record.strategy,
                f"{record.turnaround:.0f}",
                len(record.queue_waits),
                f"{record.total_queue_wait:.0f}",
                record.details.get("resizes", 0),
                f"{sum(grow_waits):.0f}" if grow_waits else "-",
                record.details.get("final_state", "?"),
            ]
        )

    print(
        render_table(
            [
                "strategy",
                "turnaround_s",
                "queue entries",
                "queue_wait_s",
                "resizes",
                "grow_wait_s",
                "state",
            ],
            rows,
            title=(
                f"Hybrid job on a saturated cluster "
                f"(offered load {BACKGROUND_RHO:.2f})"
            ),
        )
    )
    print()
    print(
        "The malleable job pays the queue once and renegotiates "
        "resources in place;\nthe workflow re-queues at every step.  "
        "The malleable price is visible too:\nregrowth after a quantum "
        "phase competes with the saturated queue (grow_wait_s)."
    )


if __name__ == "__main__":
    main()
