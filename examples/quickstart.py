#!/usr/bin/env python
"""Quickstart: one hybrid application under all four strategies.

Builds a small HPC-QC facility (32 classical nodes + 1 superconducting
QPU), defines a VQE-style hybrid application (5 optimiser iterations,
each a 5-minute classical phase followed by a 1000-shot kernel), and
runs it under:

- exclusive co-scheduling (the paper's Listing 1 baseline),
- a loosely-coupled workflow (Fig 2),
- a virtual-QPU share (Fig 3),
- a malleable job (Fig 4),

printing the per-strategy turnaround and held-vs-used efficiencies.

Run with::

    python examples/quickstart.py
"""

from repro.metrics.report import render_table
from repro.quantum import SUPERCONDUCTING, Circuit
from repro.scenarios import FleetSpec, ScenarioSpec, TopologySpec, build
from repro.strategies import (
    CoScheduleStrategy,
    MalleableStrategy,
    VQPUStrategy,
    WorkflowStrategy,
    vqe_like,
)


def main() -> None:
    app = vqe_like(
        iterations=5,
        classical_work=300.0 * 8,  # 300 s wall per phase at 8 nodes
        circuit=Circuit(num_qubits=12, depth=120, geometry="ansatz-1"),
        shots=1000,
        classical_nodes=8,
        min_classical_nodes=1,
        name="quickstart-vqe",
    )
    print(f"Application: {app.name}")
    print(f"  phases: {len(app.phases)} "
          f"({app.classical_phase_count} classical, "
          f"{app.quantum_phase_count} quantum)")
    print(f"  ideal makespan on superconducting: "
          f"{app.ideal_makespan(SUPERCONDUCTING):.0f} s")
    print()

    strategies = [
        (CoScheduleStrategy(), 1),
        (WorkflowStrategy(), 1),
        (VQPUStrategy(), 4),
        (MalleableStrategy(reconfiguration_cost=5.0), 1),
    ]
    rows = []
    for strategy, vqpus in strategies:
        # Fresh facility per strategy: same declarative scenario (same
        # topology, same seed), materialised by the one build pipeline.
        env = build(
            ScenarioSpec(
                name="quickstart",
                topology=TopologySpec(classical_nodes=32),
                fleet=FleetSpec(
                    technology="superconducting", vqpus_per_qpu=vqpus
                ),
                seed=42,
            )
        )
        run = strategy.launch(env, app)
        env.kernel.run(until=run.done)
        record = run.record
        rows.append(
            [
                record.strategy,
                f"{record.turnaround:.0f}",
                f"{record.total_queue_wait:.0f}",
                f"{record.classical_efficiency:.2f}",
                f"{record.qpu_efficiency:.3f}",
                record.details.get("final_state", "?"),
            ]
        )

    print(
        render_table(
            [
                "strategy",
                "turnaround_s",
                "queue_wait_s",
                "classical_eff",
                "qpu_eff",
                "state",
            ],
            rows,
            title="One hybrid app, four integration strategies (idle cluster)",
        )
    )
    print()
    print(
        "Note the paper's core observation: co-scheduling completes as "
        "fast as\nanything on an idle cluster but leaves the "
        "exclusively-held QPU ~99% idle;\nthe other strategies trade "
        "that waste against queueing, sharing bounds,\nor "
        "reconfiguration cost."
    )


if __name__ == "__main__":
    main()
