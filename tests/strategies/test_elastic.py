"""Tests for the elastic QPU attach/detach strategy (extension S4)."""

import pytest

from repro.quantum.circuit import Circuit
from repro.quantum.technology import SUPERCONDUCTING
from repro.strategies.application import vqe_like
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.elastic import ElasticQPUStrategy
from repro.strategies.envs import make_environment


def app_sc(iterations=3, classical_work=400.0, nodes=4):
    return vqe_like(
        iterations=iterations,
        classical_work=classical_work,
        circuit=Circuit(10, 100, geometry="g"),
        shots=1000,
        classical_nodes=nodes,
    )


def run_one(strategy, app, nodes=16, scheduling_cycle=0.0):
    env = make_environment(
        classical_nodes=nodes,
        technology=SUPERCONDUCTING,
        seed=0,
        scheduling_cycle=scheduling_cycle,
    )
    run = strategy.launch(env, app)
    env.kernel.run(until=run.done)
    return run.record, env


class TestElasticBasics:
    def test_completes(self):
        record, _ = run_one(ElasticQPUStrategy(), app_sc())
        assert record.details["final_state"] == "completed"
        assert record.qpu_busy_seconds > 0

    def test_qpu_held_only_during_quantum_phases(self):
        app = app_sc()
        record, _ = run_one(ElasticQPUStrategy(attach_overhead=0.0), app)
        # Held time equals kernel execution time (no calibration here).
        assert record.qpu_held_seconds == pytest.approx(
            record.qpu_busy_seconds, rel=0.01
        )
        assert record.qpu_efficiency > 0.99

    def test_attach_waits_recorded_per_quantum_phase(self):
        app = app_sc(iterations=4)
        record, _ = run_one(ElasticQPUStrategy(), app)
        assert len(record.details["attach_waits_s"]) == 4

    def test_single_queue_entry(self):
        record, _ = run_one(ElasticQPUStrategy(), app_sc())
        assert len(record.queue_waits) == 1

    def test_attach_overhead_costs_time(self):
        app = app_sc()
        cheap, _ = run_one(ElasticQPUStrategy(attach_overhead=0.0), app)
        costly, _ = run_one(ElasticQPUStrategy(attach_overhead=10.0), app)
        expected = 10.0 * app.quantum_phase_count
        assert costly.turnaround - cheap.turnaround == pytest.approx(
            expected, rel=0.05
        )

    def test_scheduler_cycle_paid_per_attach(self):
        app = app_sc(iterations=3)
        instant, _ = run_one(
            ElasticQPUStrategy(attach_overhead=0.0), app
        )
        cycled, _ = run_one(
            ElasticQPUStrategy(attach_overhead=0.0),
            app,
            scheduling_cycle=30.0,
        )
        # Each of the 3 attaches costs up to one cycle plus the job's
        # own start cycle.
        delta = cycled.turnaround - instant.turnaround
        assert 30.0 <= delta <= 4 * 30.0 + 1.0


class TestElasticVsCoschedule:
    def test_device_free_between_phases(self):
        """During classical phases, another tenant can use the QPU."""
        env = make_environment(classical_nodes=16, seed=0)
        app_a = app_sc(nodes=4)
        app_b = app_sc(nodes=4)
        strategy = ElasticQPUStrategy()
        run_a = strategy.launch(env, app_a)
        run_b = strategy.launch(env, app_b)
        env.kernel.run(until=run_a.done)
        env.kernel.run(until=run_b.done)
        # Both tenants ran concurrently: the campaign is far shorter
        # than two serial co-scheduled runs would be.
        co_env = make_environment(classical_nodes=16, seed=0)
        co = CoScheduleStrategy()
        co_a = co.launch(co_env, app_a)
        co_env.kernel.run(until=co_a.done)
        serial_each = co_a.record.turnaround
        elastic_makespan = max(
            run_a.record.end_time, run_b.record.end_time
        )
        assert elastic_makespan < 2 * serial_each

    def test_less_qpu_held_than_coschedule(self):
        app = app_sc()
        elastic, _ = run_one(ElasticQPUStrategy(), app)
        coschedule, _ = run_one(CoScheduleStrategy(), app)
        assert elastic.qpu_held_seconds < 0.2 * coschedule.qpu_held_seconds
