"""Tests for the hybrid application phase model."""

import pytest

from repro.errors import ConfigurationError
from repro.quantum.circuit import Circuit
from repro.quantum.technology import NEUTRAL_ATOM, SUPERCONDUCTING
from repro.strategies.application import (
    HybridApplication,
    PhaseKind,
    classical,
    qaoa_like,
    quantum,
    sampling_campaign,
    vqe_like,
)


def simple_app(**overrides):
    defaults = dict(
        phases=[classical(100.0), quantum(Circuit(5, 10), 100)],
        classical_nodes=4,
    )
    defaults.update(overrides)
    return HybridApplication(**defaults)


class TestPhases:
    def test_classical_phase(self):
        phase = classical(60.0)
        assert phase.kind == PhaseKind.CLASSICAL
        assert not phase.is_quantum

    def test_quantum_phase(self):
        phase = quantum(Circuit(3, 5), 100)
        assert phase.is_quantum
        assert phase.shots == 100

    def test_quantum_needs_circuit_and_shots(self):
        with pytest.raises(ConfigurationError):
            quantum(Circuit(3, 5), 0)

    def test_negative_classical_work_rejected(self):
        with pytest.raises(ConfigurationError):
            classical(-1.0)


class TestApplicationValidation:
    def test_needs_phases(self):
        with pytest.raises(ConfigurationError):
            HybridApplication(phases=[], classical_nodes=1)

    def test_min_nodes_range(self):
        with pytest.raises(ConfigurationError):
            simple_app(classical_nodes=4, min_classical_nodes=8)

    def test_serial_fraction_range(self):
        with pytest.raises(ConfigurationError):
            simple_app(serial_fraction=2.0)


class TestAmdahlScaling:
    def test_single_node_time_is_work(self):
        app = simple_app(serial_fraction=0.0)
        phase = app.phases[0]
        assert app.classical_time(phase, 1) == pytest.approx(100.0)

    def test_perfect_scaling_with_zero_serial(self):
        app = simple_app(serial_fraction=0.0)
        phase = app.phases[0]
        assert app.classical_time(phase, 4) == pytest.approx(25.0)

    def test_serial_fraction_limits_speedup(self):
        app = simple_app(serial_fraction=0.5)
        phase = app.phases[0]
        # 50 serial + 50/4 parallel
        assert app.classical_time(phase, 4) == pytest.approx(62.5)

    def test_quantum_phase_rejected(self):
        app = simple_app()
        with pytest.raises(ConfigurationError):
            app.classical_time(app.phases[1], 4)

    def test_more_nodes_never_slower(self):
        app = simple_app(serial_fraction=0.1)
        phase = app.phases[0]
        times = [app.classical_time(phase, n) for n in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)


class TestMakespan:
    def test_ideal_makespan_sums_phases(self):
        app = simple_app(serial_fraction=0.0)
        technology = SUPERCONDUCTING
        expected = 25.0 + technology.execution_time(
            app.phases[1].circuit, 100
        )
        assert app.ideal_makespan(technology) == pytest.approx(expected)

    def test_calibration_counted_once_per_geometry_change(self):
        circuit_a = Circuit(5, 10, geometry="A")
        circuit_b = Circuit(5, 10, geometry="B")
        app = HybridApplication(
            phases=[
                quantum(circuit_a, 10),
                quantum(circuit_a, 10),  # cached
                quantum(circuit_b, 10),  # change
            ],
            classical_nodes=1,
        )
        assert app.calibration_overhead(NEUTRAL_ATOM) == pytest.approx(
            2 * NEUTRAL_ATOM.geometry_calibration_duration
        )

    def test_no_calibration_for_superconducting(self):
        app = simple_app()
        assert app.calibration_overhead(SUPERCONDUCTING) == 0.0

    def test_phase_counts(self):
        app = vqe_like(3, 10.0, Circuit(4, 10))
        assert app.quantum_phase_count == 3
        assert app.classical_phase_count == 3


class TestFactories:
    def test_vqe_alternates_phases(self):
        app = vqe_like(4, 100.0, Circuit(4, 10), final_analysis=50.0)
        kinds = [phase.kind for phase in app.phases]
        assert kinds[0] == PhaseKind.CLASSICAL
        assert kinds[1] == PhaseKind.QUANTUM
        assert len(app.phases) == 9  # 4 pairs + final analysis
        assert kinds[-1] == PhaseKind.CLASSICAL

    def test_vqe_validates_iterations(self):
        with pytest.raises(ConfigurationError):
            vqe_like(0, 10.0, Circuit(4, 10))

    def test_qaoa_bursts(self):
        app = qaoa_like(2, 3, 10.0, Circuit(4, 10))
        quantum_count = sum(1 for p in app.phases if p.is_quantum)
        assert quantum_count == 6  # 2 layers x 3 points
        assert app.classical_phase_count == 2

    def test_sampling_campaign_starts_quantum(self):
        app = sampling_campaign(3, Circuit(4, 10), 100, 60.0)
        assert app.phases[0].is_quantum
        assert app.quantum_phase_count == 3

    def test_names_auto_generated_and_unique(self):
        a = simple_app()
        b = simple_app()
        assert a.name != b.name
