"""Cross-strategy behaviour tests: the paper's core semantics."""

import pytest

from repro.quantum.circuit import Circuit
from repro.quantum.technology import NEUTRAL_ATOM, SUPERCONDUCTING
from repro.strategies.application import vqe_like
from repro.strategies.base import Environment
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.envs import make_environment
from repro.strategies.malleability import GrowMode, MalleableStrategy
from repro.strategies.vqpu import VQPUStrategy
from repro.strategies.workflow import WorkflowStrategy


def app_sc(iterations=3, classical_work=400.0, nodes=4, shots=1000):
    return vqe_like(
        iterations=iterations,
        classical_work=classical_work,
        circuit=Circuit(10, 100, geometry="g"),
        shots=shots,
        classical_nodes=nodes,
        min_classical_nodes=1,
    )


def run_one(strategy, app, technology=SUPERCONDUCTING, vqpus=1, nodes=16):
    env = make_environment(
        classical_nodes=nodes,
        technology=technology,
        vqpus_per_qpu=vqpus,
        seed=0,
    )
    run = strategy.launch(env, app)
    env.kernel.run(until=run.done)
    return run.record, env


class TestCoSchedule:
    def test_completes_and_accounts(self):
        record, env = run_one(CoScheduleStrategy(), app_sc())
        assert record.details["final_state"] == "completed"
        assert record.turnaround is not None
        assert record.qpu_busy_seconds > 0
        assert record.classical_held_node_seconds > 0
        assert record.queue_waits == [0.0]

    def test_qpu_wasted_on_fast_device(self):
        record, _ = run_one(CoScheduleStrategy(), app_sc())
        assert record.qpu_efficiency < 0.2
        assert record.classical_efficiency > 0.8

    def test_classical_wasted_on_slow_device(self):
        app = app_sc(iterations=2, classical_work=100.0)
        record, _ = run_one(
            CoScheduleStrategy(), app, technology=NEUTRAL_ATOM
        )
        assert record.classical_efficiency < 0.2

    def test_hold_full_walltime_idles_tail(self):
        strategy = CoScheduleStrategy(
            walltime=3600.0, hold_full_walltime=True
        )
        record, _ = run_one(strategy, app_sc())
        assert record.turnaround == pytest.approx(3600.0, abs=1.0)
        assert record.details["idle_tail_s"] > 0

    def test_explicit_walltime_respected(self):
        strategy = CoScheduleStrategy(walltime=7200.0)
        record, _ = run_one(strategy, app_sc())
        assert record.details["walltime_s"] == 7200.0

    def test_turnaround_close_to_ideal_when_idle(self):
        app = app_sc()
        record, env = run_one(CoScheduleStrategy(), app)
        ideal = app.ideal_makespan(SUPERCONDUCTING)
        assert record.turnaround == pytest.approx(ideal, rel=0.05)


class TestWorkflow:
    def test_completes_with_per_step_jobs(self):
        app = app_sc()
        record, _ = run_one(WorkflowStrategy(), app)
        assert record.details["final_state"] == "completed"
        assert record.details["steps"] == len(app.phases)
        assert len(record.queue_waits) == len(app.phases)

    def test_high_qpu_efficiency(self):
        record, _ = run_one(WorkflowStrategy(), app_sc())
        assert record.qpu_efficiency > 0.9

    def test_high_classical_efficiency(self):
        record, _ = run_one(WorkflowStrategy(), app_sc())
        assert record.classical_efficiency > 0.95

    def test_same_useful_work_as_coschedule(self):
        app = app_sc()
        wf_record, _ = run_one(WorkflowStrategy(), app)
        co_record, _ = run_one(CoScheduleStrategy(), app)
        assert wf_record.classical_useful_node_seconds == pytest.approx(
            co_record.classical_useful_node_seconds, rel=1e-6
        )
        assert wf_record.qpu_busy_seconds == pytest.approx(
            co_record.qpu_busy_seconds, rel=1e-6
        )


class TestVQPU:
    def test_single_tenant_matches_coschedule(self):
        app = app_sc()
        vq_record, _ = run_one(VQPUStrategy(), app, vqpus=4)
        co_record, _ = run_one(CoScheduleStrategy(), app)
        assert vq_record.turnaround == pytest.approx(
            co_record.turnaround, rel=0.05
        )

    def test_tenants_share_one_physical_qpu(self):
        env = make_environment(
            classical_nodes=16,
            technology=SUPERCONDUCTING,
            vqpus_per_qpu=4,
            seed=0,
        )
        strategy = VQPUStrategy()
        apps = [app_sc(nodes=2) for _ in range(4)]
        runs = [strategy.launch(env, app) for app in apps]
        for run in runs:
            env.kernel.run(until=run.done)
        qpu = env.primary_qpu()
        total_kernels = 4 * 3  # tenants x iterations
        assert qpu.jobs_executed == total_kernels
        # All tenants overlapped: campaign much shorter than serial.
        ends = [run.record.end_time for run in runs]
        serial = sum(
            run.record.turnaround for run in runs
        )
        assert max(ends) < serial

    def test_pool_records_requests(self):
        env = make_environment(vqpus_per_qpu=2, seed=0)
        strategy = VQPUStrategy()
        run = strategy.launch(env, app_sc(nodes=2))
        env.kernel.run(until=run.done)
        pool = env.vqpu_pools[0]
        assert pool.total_requests == 3
        assert pool.delay_bound(10.0) == 10.0  # (2-1) x 10


class TestMalleable:
    def test_resizes_happen(self):
        app = app_sc()
        record, _ = run_one(MalleableStrategy(), app)
        assert record.details["final_state"] == "completed"
        assert record.details["resizes"] == 2 * app.quantum_phase_count

    def test_reconfiguration_cost_extends_runtime(self):
        app = app_sc()
        cheap, _ = run_one(
            MalleableStrategy(reconfiguration_cost=0.0), app
        )
        costly, _ = run_one(
            MalleableStrategy(reconfiguration_cost=10.0), app
        )
        expected_delta = 10.0 * 2 * app.quantum_phase_count
        assert costly.turnaround - cheap.turnaround == pytest.approx(
            expected_delta, rel=0.05
        )

    def test_holds_fewer_node_seconds_than_coschedule_on_slow_qpu(self):
        app = app_sc(iterations=2, classical_work=100.0)
        malleable, _ = run_one(
            MalleableStrategy(), app, technology=NEUTRAL_ATOM
        )
        coschedule, _ = run_one(
            CoScheduleStrategy(), app, technology=NEUTRAL_ATOM
        )
        assert (
            malleable.classical_held_node_seconds
            < 0.5 * coschedule.classical_held_node_seconds
        )

    def test_single_queue_entry(self):
        record, _ = run_one(MalleableStrategy(), app_sc())
        assert len(record.queue_waits) == 1

    def test_opportunistic_mode_completes(self):
        strategy = MalleableStrategy(grow_mode=GrowMode.OPPORTUNISTIC)
        record, _ = run_one(strategy, app_sc())
        assert record.details["final_state"] == "completed"
        assert record.details["grow_mode"] == "opportunistic"

    def test_min_nodes_retained_during_quantum(self):
        """The shrunken allocation equals min_classical_nodes."""
        app = app_sc()
        env = make_environment(classical_nodes=16, seed=0)
        observed = []

        class SpyStrategy(MalleableStrategy):
            pass

        strategy = SpyStrategy()
        run = strategy.launch(env, app)

        def spy(k):
            # Sample allocation size during the first quantum phase.
            while not run.done.triggered:
                jobs = env.scheduler.running
                if jobs:
                    allocation = jobs[0].allocation_for("classical")
                    observed.append(allocation.node_count)
                yield k.timeout(5.0)

        env.kernel.process(spy(env.kernel))
        env.kernel.run(until=run.done)
        assert min(observed) == app.min_classical_nodes
        assert max(observed) == app.classical_nodes


class TestEnvironmentFactory:
    def test_vqpu_pools_created(self):
        env = make_environment(vqpus_per_qpu=4)
        assert len(env.vqpu_pools) == 1
        assert env.vqpu_pools[0].size == 4
        quantum = env.cluster.partition("quantum")
        assert quantum.gres_capacity("qpu") == 4
        assert quantum.node_count == 4

    def test_no_pools_without_virtualisation(self):
        env = make_environment()
        assert env.vqpu_pools == []
        assert isinstance(env, Environment)

    def test_multiple_qpus(self):
        env = make_environment(qpu_count=3)
        assert len(env.qpus) == 3
        assert env.cluster.partition("quantum").gres_capacity("qpu") == 3

    def test_primary_qpu(self):
        env = make_environment()
        assert env.primary_qpu() is env.qpus[0]


class TestWorkflowSchedulerDriven:
    def test_scheduler_dependency_mode_matches_engine_mode(self):
        """Both workflow modes run the same app to the same result."""
        app = app_sc()
        engine_rec, _ = run_one(WorkflowStrategy(), app)
        sched_rec, _ = run_one(
            WorkflowStrategy(use_scheduler_dependencies=True), app
        )
        assert sched_rec.details["final_state"] == "completed"
        assert sched_rec.qpu_busy_seconds == pytest.approx(
            engine_rec.qpu_busy_seconds, rel=1e-6
        )
        # On an idle cluster, turnaround matches too.
        assert sched_rec.turnaround == pytest.approx(
            engine_rec.turnaround, rel=0.01
        )

    def test_scheduler_driven_submits_everything_up_front(self):
        app = app_sc()
        record, env = run_one(
            WorkflowStrategy(use_scheduler_dependencies=True), app
        )
        submits = {
            job.submit_time
            for job in env.scheduler.finished_jobs
            if job.spec.tags.get("strategy") == "workflow"
        }
        assert submits == {0.0}


class TestCoScheduleTimeoutPath:
    def test_undersized_walltime_records_timeout(self):
        app = app_sc()
        strategy = CoScheduleStrategy(walltime=10.0)  # far too small
        record, _ = run_one(strategy, app)
        assert record.details["final_state"] == "timeout"
        assert record.end_time is not None
        assert record.turnaround == pytest.approx(10.0, abs=0.5)
