"""Tests for the virtual QPU pool and time-share semantics."""

import pytest

from repro.errors import QuantumDeviceError
from repro.quantum.circuit import Circuit
from repro.quantum.qpu import QPU
from repro.quantum.technology import QPUTechnology
from repro.strategies.vqpu import VirtualQPUPool

TOY = QPUTechnology(
    name="toy",
    num_qubits=8,
    one_qubit_gate_time=0.0,
    two_qubit_gate_time=0.0,
    readout_time=0.0,
    reset_time=0.0,
    per_shot_overhead=0.001,
    job_overhead=1.0,
    calibration_interval=float("inf"),
    calibration_duration=0.0,
)


@pytest.fixture
def pool(kernel):
    return VirtualQPUPool(QPU(kernel, TOY), size=3)


class TestPoolConstruction:
    def test_size_must_be_positive(self, kernel):
        with pytest.raises(QuantumDeviceError):
            VirtualQPUPool(QPU(kernel, TOY), size=0)

    def test_virtual_devices_created(self, pool):
        assert len(pool.virtual_qpus) == 3
        names = [vqpu.name for vqpu in pool.virtual_qpus]
        assert len(set(names)) == 3

    def test_technology_passthrough(self, pool):
        assert pool.virtual_qpus[0].technology is TOY

    def test_delay_bound_formula(self, pool):
        assert pool.delay_bound(7.0) == pytest.approx(14.0)  # (3-1)*7


class TestInterleaving:
    def test_requests_serialise_on_physical_device(self, kernel, pool):
        results = {}

        def tenant(k, vqpu, name):
            result = yield vqpu.run(Circuit(4, 10), 1000)  # 2 s each
            results[name] = (k.now, result.queue_time)

        for index, vqpu in enumerate(pool.virtual_qpus):
            kernel.process(tenant(kernel, vqpu, f"t{index}"))
        kernel.run()
        finish_times = sorted(t for t, _ in results.values())
        assert finish_times == pytest.approx([2.0, 4.0, 6.0])

    def test_delay_respects_bound(self, kernel, pool):
        """Each request waits at most (V-1) foreign kernels."""
        waits = []

        def tenant(k, vqpu):
            for _ in range(3):
                result = yield vqpu.run(Circuit(4, 10), 1000)
                waits.append(result.queue_time)
                yield k.timeout(0.5)

        for vqpu in pool.virtual_qpus:
            kernel.process(tenant(kernel, vqpu))
        kernel.run()
        kernel_time = 2.0
        bound = pool.delay_bound(kernel_time)
        assert max(waits) <= bound + 1e-9

    def test_one_outstanding_request_per_vqpu(self, kernel, pool):
        vqpu = pool.virtual_qpus[0]
        vqpu.run(Circuit(4, 10), 100)
        with pytest.raises(QuantumDeviceError):
            vqpu.run(Circuit(4, 10), 100)

    def test_vqpu_reusable_after_completion(self, kernel, pool):
        vqpu = pool.virtual_qpus[0]

        def tenant(k):
            yield vqpu.run(Circuit(4, 10), 100)
            result = yield vqpu.run(Circuit(4, 10), 100)
            return result

        process = kernel.process(tenant(kernel))
        kernel.run()
        assert process.value is not None
        assert vqpu.requests_served == 2

    def test_pool_statistics(self, kernel, pool):
        def tenant(k, vqpu):
            yield vqpu.run(Circuit(4, 10), 100)

        for vqpu in pool.virtual_qpus:
            kernel.process(tenant(kernel, vqpu))
        kernel.run()
        assert pool.total_requests == 3
        assert pool.request_times.count == 3

    def test_repr(self, pool):
        assert "x3" in repr(pool)
        assert "/v0" in repr(pool.virtual_qpus[0])
