"""Edge-path tests: environment factory wiring and the phase driver."""

import pytest

from repro.quantum.circuit import Circuit
from repro.quantum.qpu import QPU
from repro.quantum.technology import SUPERCONDUCTING, TRAPPED_ION
from repro.scheduler.backfill import ConservativeBackfillPolicy
from repro.scheduler.job import JobComponent, JobSpec
from repro.strategies.application import (
    HybridApplication,
    classical,
    quantum,
)
from repro.strategies.base import RunRecord
from repro.strategies.envs import make_environment
from repro.strategies.phases import execute_phases


class TestEnvironmentWiring:
    def test_policy_name_propagates(self):
        env = make_environment(policy="conservative")
        assert isinstance(env.scheduler.policy, ConservativeBackfillPolicy)

    def test_scheduling_cycle_propagates(self):
        env = make_environment(scheduling_cycle=45.0)
        assert env.scheduler.cycle_time == 45.0

    def test_technology_propagates(self):
        env = make_environment(technology=TRAPPED_ION)
        assert env.primary_qpu().technology is TRAPPED_ION

    def test_jitter_enables_stochastic_durations(self):
        deterministic = make_environment(jitter=False)
        stochastic = make_environment(jitter=True)
        assert deterministic.primary_qpu()._rng is None
        assert stochastic.primary_qpu()._rng is not None

    def test_seed_isolation(self):
        env_a = make_environment(seed=1, jitter=True)
        env_b = make_environment(seed=2, jitter=True)
        draw_a = env_a.streams.stream("x").random()
        draw_b = env_b.streams.stream("x").random()
        assert draw_a != draw_b


class TestPlanningTechnology:
    """Fleet-aware walltime planning on the Environment."""

    def _hetero_env(self):
        from repro.scenarios import (
            DeviceSpec,
            FleetSpec,
            ScenarioSpec,
            build,
        )

        return build(
            ScenarioSpec(
                fleet=FleetSpec(
                    devices=(
                        DeviceSpec("superconducting"),
                        DeviceSpec("trapped_ion"),
                    )
                )
            )
        )

    @staticmethod
    def _app(qubits: int) -> HybridApplication:
        return HybridApplication(
            phases=[classical(60.0), quantum(Circuit(qubits, 50), 1000)],
            classical_nodes=4,
            name=f"plan-{qubits}",
        )

    def test_homogeneous_env_matches_primary_qpu(self):
        env = make_environment(technology=TRAPPED_ION)
        app = self._app(10)
        assert env.planning_technology(app) is env.primary_qpu().technology

    def test_heterogeneous_env_plans_for_the_slowest_capable(self):
        env = self._hetero_env()
        app = self._app(10)  # fits both; trapped ion is far slower
        assert env.planning_technology(app).name == "trapped_ion"

    def test_wide_circuit_excludes_small_registers(self):
        env = self._hetero_env()
        app = self._app(100)  # beyond trapped ion's 32 qubits
        assert env.planning_technology(app).name == "superconducting"

    def test_impossible_width_rejected(self):
        from repro.errors import ConfigurationError

        env = self._hetero_env()
        with pytest.raises(ConfigurationError, match="qubits"):
            env.planning_technology(self._app(500))

    def test_technologies_deduplicates_in_order(self):
        from repro.scenarios import (
            DeviceSpec,
            FleetSpec,
            ScenarioSpec,
            build,
        )

        env = build(
            ScenarioSpec(
                fleet=FleetSpec(
                    devices=(
                        DeviceSpec("trapped_ion", count=2),
                        DeviceSpec("superconducting"),
                        DeviceSpec("trapped_ion", name="extra"),
                    )
                )
            )
        )
        assert [t.name for t in env.technologies()] == [
            "trapped_ion",
            "superconducting",
        ]

    def test_strategy_walltime_provisions_for_slow_device(self):
        """A co-schedule launch into a mixed fleet requests a walltime
        sized for the slowest capable technology, not whichever device
        happens to be first."""
        from repro.strategies.coschedule import CoScheduleStrategy

        env = self._hetero_env()
        app = self._app(10)
        run = CoScheduleStrategy()
        walltime = run._walltime_for(env, app)
        assert walltime == pytest.approx(
            app.ideal_makespan(TRAPPED_ION) * run.walltime_safety
        )
        assert walltime > app.ideal_makespan(SUPERCONDUCTING)


class TestExecutePhasesDriver:
    """Drive execute_phases directly through a minimal job context."""

    def _run(self, app, hooks=False):
        env = make_environment(classical_nodes=8, seed=0)
        record = RunRecord(
            app_name=app.name, strategy="direct", submit_time=0.0
        )
        calls = []

        def before(phase):
            calls.append(("before", env.kernel.now))
            yield env.kernel.timeout(0.0)

        def after(phase):
            calls.append(("after", env.kernel.now))
            yield env.kernel.timeout(0.0)

        def work(ctx):
            yield from execute_phases(
                app,
                ctx,
                record,
                qpu_device=ctx.first_qpu(),
                nodes_getter=lambda: app.classical_nodes,
                before_quantum=before if hooks else None,
                after_quantum=after if hooks else None,
            )

        spec = JobSpec(
            name="direct",
            components=[
                JobComponent("classical", app.classical_nodes, 10000.0),
                JobComponent("quantum", 1, 10000.0, gres={"qpu": 1}),
            ],
            work=work,
        )
        job = env.scheduler.submit(spec)
        env.kernel.run(until=job.finished)
        return record, calls

    def _app(self):
        return HybridApplication(
            phases=[
                classical(80.0),
                quantum(Circuit(5, 10), 500),
                classical(40.0),
                quantum(Circuit(5, 10), 500),
            ],
            classical_nodes=4,
            name="driver-app",
        )

    def test_accounting_matches_phase_structure(self):
        app = self._app()
        record, _ = self._run(app)
        expected_classical = sum(
            app.classical_time(p, 4) * 4
            for p in app.phases
            if not p.is_quantum
        )
        assert record.classical_useful_node_seconds == pytest.approx(
            expected_classical
        )
        expected_quantum = 2 * SUPERCONDUCTING.execution_time(
            Circuit(5, 10), 500
        )
        assert record.qpu_busy_seconds == pytest.approx(expected_quantum)
        assert len(record.quantum_access_waits) == 2

    def test_hooks_bracket_each_quantum_phase(self):
        app = self._app()
        _, calls = self._run(app, hooks=True)
        kinds = [kind for kind, _ in calls]
        assert kinds == ["before", "after", "before", "after"]

    def test_zero_duration_classical_phase_skips_timeout(self):
        app = HybridApplication(
            phases=[classical(0.0), quantum(Circuit(5, 10), 100)],
            classical_nodes=2,
            name="zero-phase",
        )
        record, _ = self._run(app)
        assert record.classical_useful_node_seconds == 0.0
        assert record.qpu_busy_seconds > 0


class TestAllocationRollback:
    def test_failed_gres_packing_rolls_back_nodes(self, kernel):
        """If the chosen nodes cannot jointly satisfy the gres request,
        nothing stays allocated."""
        from repro.cluster.cluster import Cluster
        from repro.cluster.node import GresInstance, Node
        from repro.cluster.partition import Partition
        from repro.errors import AllocationError

        # Two nodes, one gres unit: ask for 1 node + 2 qpu units, which
        # find_nodes approves by count... except capacity checks catch
        # it; craft the rollback path by requesting through _grant
        # directly with an impossible spread.
        node_a = Node("a", gres=[GresInstance("qpu", 0)])
        node_b = Node("b")
        cluster = Cluster(
            kernel, [Partition("p", [node_a, node_b])]
        )
        with pytest.raises(AllocationError):
            cluster._grant_on_nodes("job-x", [node_b], {"qpu": 1})
        assert node_b.is_available
        assert node_a.is_available
