"""Property-based tests: invariants every integration strategy obeys.

The strategies differ in *when resources are held*, never in *what the
application computes*.  For any randomly-shaped hybrid application, on
an idle facility:

1. every strategy completes the app;
2. the useful work (classical node-seconds, device-busy seconds,
   kernel count) is identical across strategies;
3. turnaround is never below the app's ideal makespan;
4. held resources are never below useful resources.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import Circuit
from repro.quantum.technology import SUPERCONDUCTING
from repro.strategies.application import (
    HybridApplication,
    classical,
    quantum,
)
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.elastic import ElasticQPUStrategy
from repro.strategies.envs import make_environment
from repro.strategies.malleability import MalleableStrategy
from repro.strategies.vqpu import VQPUStrategy
from repro.strategies.workflow import WorkflowStrategy

app_shapes = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=600.0),  # classical work
        st.integers(min_value=100, max_value=5000),  # shots
    ),
    min_size=1,
    max_size=5,
)


def build_app(shape, nodes):
    circuit = Circuit(8, 50, geometry="prop")
    phases = []
    for work, shots in shape:
        phases.append(classical(work))
        phases.append(quantum(circuit, shots))
    return HybridApplication(
        phases=phases,
        classical_nodes=nodes,
        min_classical_nodes=1,
        name="prop-app",
    )


def run_strategy(strategy, app, vqpus=1):
    env = make_environment(
        classical_nodes=16,
        technology=SUPERCONDUCTING,
        vqpus_per_qpu=vqpus,
        seed=0,
    )
    run = strategy.launch(env, app)
    env.kernel.run(until=run.done)
    return run.record


ALL_STRATEGIES = [
    (CoScheduleStrategy, 1),
    (WorkflowStrategy, 1),
    (VQPUStrategy, 2),
    (MalleableStrategy, 1),
    (ElasticQPUStrategy, 1),
]


@given(shape=app_shapes, nodes=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=15, deadline=None)
def test_all_strategies_do_identical_useful_work(shape, nodes):
    app = build_app(shape, nodes)
    records = [
        run_strategy(strategy_class(), app, vqpus)
        for strategy_class, vqpus in ALL_STRATEGIES
    ]
    reference = records[0]
    for record in records:
        assert record.details["final_state"] == "completed", (
            record.strategy,
            record.details,
        )
        assert record.classical_useful_node_seconds == pytest.approx(
            reference.classical_useful_node_seconds, rel=1e-6
        ), record.strategy
        assert record.qpu_busy_seconds == pytest.approx(
            reference.qpu_busy_seconds, rel=1e-6
        ), record.strategy
        assert len(record.quantum_access_waits) == len(
            reference.quantum_access_waits
        ), record.strategy


@given(shape=app_shapes, nodes=st.sampled_from([2, 8]))
@settings(max_examples=15, deadline=None)
def test_turnaround_never_beats_ideal_makespan(shape, nodes):
    app = build_app(shape, nodes)
    ideal = app.ideal_makespan(SUPERCONDUCTING)
    for strategy_class, vqpus in ALL_STRATEGIES:
        record = run_strategy(strategy_class(), app, vqpus)
        assert record.turnaround >= ideal - 1e-6, (
            strategy_class.name,
            record.turnaround,
            ideal,
        )


@given(shape=app_shapes)
@settings(max_examples=15, deadline=None)
def test_held_never_below_useful(shape):
    app = build_app(shape, 4)
    for strategy_class, vqpus in ALL_STRATEGIES:
        record = run_strategy(strategy_class(), app, vqpus)
        assert (
            record.classical_held_node_seconds
            >= record.classical_useful_node_seconds - 1e-6
        ), strategy_class.name
        assert (
            record.qpu_held_seconds >= record.qpu_busy_seconds - 1e-6
        ), strategy_class.name
