"""Tests for the generic workflow DAG engine."""

import pytest

from repro.errors import WorkflowError
from repro.scheduler.job import JobComponent, JobSpec
from repro.strategies.envs import make_environment
from repro.strategies.workflow import Workflow, WorkflowEngine, WorkflowStep


def step(name, deps=(), nodes=1, duration=10.0, walltime=100.0):
    def factory():
        return JobSpec(
            name=name,
            components=[JobComponent("classical", nodes, walltime)],
            duration=duration,
        )

    return WorkflowStep(name, factory, list(deps))


class TestDagValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", [step("a"), step("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", [step("a", deps=["ghost"])])

    def test_cycle_detected(self):
        with pytest.raises(WorkflowError, match="cycle"):
            Workflow(
                "w",
                [
                    step("a", deps=["b"]),
                    step("b", deps=["c"]),
                    step("c", deps=["a"]),
                ],
            )

    def test_self_cycle_detected(self):
        with pytest.raises(WorkflowError, match="cycle"):
            Workflow("w", [step("a", deps=["a"])])

    def test_topological_order_respects_deps(self):
        workflow = Workflow(
            "w",
            [
                step("c", deps=["a", "b"]),
                step("a"),
                step("b", deps=["a"]),
            ],
        )
        order = workflow.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_len(self):
        assert len(Workflow("w", [step("a"), step("b")])) == 2


class TestEngineExecution:
    def test_linear_chain_runs_sequentially(self):
        env = make_environment(classical_nodes=4, seed=0)
        workflow = Workflow(
            "chain",
            [
                step("s1", duration=10.0),
                step("s2", deps=["s1"], duration=10.0),
                step("s3", deps=["s2"], duration=10.0),
            ],
        )
        engine = WorkflowEngine(env)
        holder = {}

        def runner():
            jobs = yield from engine.execute(workflow)
            holder.update(jobs)

        env.kernel.process(runner())
        env.kernel.run()
        assert holder["s1"].end_time <= holder["s2"].start_time
        assert holder["s2"].end_time <= holder["s3"].start_time

    def test_independent_steps_run_in_parallel(self):
        env = make_environment(classical_nodes=4, seed=0)
        workflow = Workflow(
            "fanout",
            [
                step("root", duration=5.0),
                step("left", deps=["root"], duration=20.0),
                step("right", deps=["root"], duration=20.0),
            ],
        )
        engine = WorkflowEngine(env)
        holder = {}

        def runner():
            jobs = yield from engine.execute(workflow)
            holder.update(jobs)

        env.kernel.process(runner())
        env.kernel.run()
        assert holder["left"].start_time == holder["right"].start_time

    def test_failed_step_aborts_workflow(self):
        env = make_environment(classical_nodes=4, seed=0)

        def failing_factory():
            def work(ctx):
                yield ctx.timeout(1.0)
                raise RuntimeError("step exploded")

            return JobSpec(
                name="bad",
                components=[JobComponent("classical", 1, 100.0)],
                work=work,
            )

        workflow = Workflow(
            "failing",
            [
                WorkflowStep("bad", failing_factory),
                step("after", deps=["bad"]),
            ],
        )
        engine = WorkflowEngine(env)
        outcome = {}

        def runner():
            try:
                yield from engine.execute(workflow)
            except WorkflowError as error:
                outcome["error"] = str(error)

        env.kernel.process(runner())
        env.kernel.run()
        assert "failed" in outcome["error"]

    def test_diamond_dependency_joins(self):
        env = make_environment(classical_nodes=8, seed=0)
        workflow = Workflow(
            "diamond",
            [
                step("a", duration=5.0),
                step("b", deps=["a"], duration=10.0),
                step("c", deps=["a"], duration=30.0),
                step("d", deps=["b", "c"], duration=5.0),
            ],
        )
        engine = WorkflowEngine(env)
        holder = {}

        def runner():
            jobs = yield from engine.execute(workflow)
            holder.update(jobs)

        env.kernel.process(runner())
        env.kernel.run()
        # d starts only after the slower branch (c) completes.
        assert holder["d"].start_time >= holder["c"].end_time
