"""The documentation suite stays executable and internally linked.

Two failure modes kill docs: code blocks that drift from the API and
links that dangle after a rename.  This suite runs every ``>>>``
example in ``docs/*.md`` + ``README.md`` through doctest and verifies
every relative markdown link (including ``#anchor`` fragments against
GitHub-style heading slugs).  CI runs the same checks via the ``docs``
job; here they are part of tier-1.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

#: ``[text](target)`` pairs, ignoring images and fenced code blocks.
_LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _strip_fences(text: str) -> str:
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _heading_slugs(text: str) -> set:
    """GitHub-style anchor slugs for every heading in ``text``."""
    slugs = set()
    for heading in _HEADING_PATTERN.findall(_strip_fences(text)):
        slug = heading.strip().lower()
        slug = re.sub(r"[^\w\s-]", "", slug)
        slugs.add(re.sub(r"[\s]+", "-", slug))
    return slugs


def test_docs_suite_exists():
    names = {path.name for path in DOC_FILES}
    assert {
        "README.md",
        "architecture.md",
        "campaigns.md",
        "fleet.md",
        "resilience.md",
        "scenarios.md",
        "service.md",
        "store.md",
        "sweeps.md",
    } <= names


def test_readme_links_the_doc_pages():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for page in (
        "architecture.md",
        "campaigns.md",
        "fleet.md",
        "resilience.md",
        "scenarios.md",
        "service.md",
        "store.md",
        "sweeps.md",
    ):
        assert f"docs/{page}" in readme, f"README must link docs/{page}"


def test_every_doc_page_is_reachable_from_readme():
    """No orphan pages: every ``docs/*.md`` file must be reachable by
    following relative markdown links from README.md.  Catches the
    classic failure mode where a new chapter ships but nothing links
    to it."""
    reachable = set()
    frontier = [REPO_ROOT / "README.md"]
    while frontier:
        page = frontier.pop()
        if page in reachable or not page.is_file():
            continue
        reachable.add(page)
        text = _strip_fences(page.read_text(encoding="utf-8"))
        for target in _LINK_PATTERN.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part = target.partition("#")[0]
            if file_part.endswith(".md"):
                frontier.append((page.parent / file_part).resolve())
    orphans = sorted(
        path.name
        for path in (REPO_ROOT / "docs").glob("*.md")
        if path.resolve() not in reachable
    )
    assert not orphans, (
        f"docs pages unreachable from README.md: {orphans}"
    )


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=lambda p: p.relative_to(REPO_ROOT).as_posix()
)
def test_relative_links_resolve(path):
    text = path.read_text(encoding="utf-8")
    broken = []
    for target in _LINK_PATTERN.findall(_strip_fences(text)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (
            (path.parent / file_part).resolve() if file_part else path
        )
        if not resolved.exists():
            broken.append(target)
            continue
        if anchor and resolved.suffix == ".md":
            slugs = _heading_slugs(
                resolved.read_text(encoding="utf-8")
            )
            if anchor not in slugs:
                broken.append(f"{target} (no such heading)")
    assert not broken, f"{path.name}: broken links {broken}"


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=lambda p: p.relative_to(REPO_ROOT).as_posix()
)
def test_markdown_doctests_pass(path):
    result = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS,
        verbose=False,
    )
    assert result.failed == 0, (
        f"{path.name}: {result.failed} doctest failure(s)"
    )
