"""Tests for plain-text report rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.report import (
    format_cell,
    format_duration,
    render_bars,
    render_markdown_table,
    render_series,
    render_table,
    summarise_records,
)


class TestFormatDuration:
    def test_milliseconds(self):
        assert format_duration(0.005) == "5 ms"

    def test_seconds(self):
        assert format_duration(42.0) == "42 s"

    def test_minutes(self):
        assert format_duration(600.0) == "10 min"

    def test_hours(self):
        assert format_duration(7200.0) == "2 h"

    def test_none(self):
        assert format_duration(None) == "-"


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_small_float_scientific(self):
        assert "e" in format_cell(1e-6)

    def test_plain_float(self):
        assert format_cell(3.14159) == "3.142"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "value"],
            [["a", 1.0], ["bb", 22.5]],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "22.5" in lines[4]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = render_table(["h1", "h2"], [])
        assert "h1" in text


class TestMarkdownTable:
    def test_structure(self):
        text = render_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestRenderBars:
    def test_bars_scale_with_values(self):
        text = render_bars(["x", "y"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_peak(self):
        text = render_bars(["x"], [0.0])
        assert "#" not in text

    def test_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_bars(["x"], [1.0, 2.0])


class TestRenderSeries:
    def test_multi_series_table(self):
        text = render_series(
            "V",
            ["makespan", "util"],
            [1, 2, 4],
            [[100.0, 50.0, 25.0], [0.1, 0.2, 0.4]],
        )
        assert "makespan" in text
        assert "0.4" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            render_series("x", ["y"], [1, 2], [[1.0]])
        with pytest.raises(ConfigurationError):
            render_series("x", ["y", "z"], [1], [[1.0]])


class TestSummariseRecords:
    def test_empty(self):
        assert summarise_records([]) == "(no records)"

    def test_dict_rows(self):
        text = summarise_records(
            [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        )
        assert "4.5" in text
