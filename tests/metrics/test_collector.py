"""Tests for record aggregation and facility snapshots."""

import pytest

from repro.metrics.collector import (
    StrategySummary,
    facility_snapshot,
    summarise,
)
from repro.quantum.circuit import Circuit
from repro.strategies.application import vqe_like
from repro.strategies.base import RunRecord
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.envs import make_environment


def record(strategy, submit, end, wait=0.0, held=100.0, useful=50.0):
    r = RunRecord(app_name="a", strategy=strategy, submit_time=submit)
    r.end_time = end
    r.queue_waits = [wait]
    r.classical_held_node_seconds = held
    r.classical_useful_node_seconds = useful
    r.qpu_held_seconds = end - submit
    r.qpu_busy_seconds = (end - submit) / 10.0
    return r


class TestSummarise:
    def test_groups_by_strategy(self):
        records = [
            record("coschedule", 0.0, 100.0),
            record("coschedule", 0.0, 200.0),
            record("workflow", 0.0, 150.0),
        ]
        summaries = summarise(records)
        assert set(summaries) == {"coschedule", "workflow"}
        assert summaries["coschedule"].runs == 2
        assert summaries["workflow"].runs == 1

    def test_turnaround_statistics(self):
        records = [
            record("s", 0.0, 100.0),
            record("s", 0.0, 300.0),
        ]
        summary = summarise(records)["s"]
        assert summary.mean_turnaround == 200.0
        assert summary.median_turnaround == 200.0

    def test_makespan_spans_first_submit_to_last_end(self):
        records = [
            record("s", 10.0, 100.0),
            record("s", 50.0, 400.0),
        ]
        assert summarise(records)["s"].makespan == 390.0

    def test_row_and_headers_align(self):
        summary = summarise([record("s", 0.0, 10.0)])["s"]
        assert len(summary.as_row()) == len(StrategySummary.headers())


class TestFacilitySnapshot:
    def test_snapshot_after_run(self):
        env = make_environment(classical_nodes=8, seed=0)
        app = vqe_like(2, 100.0, Circuit(5, 10), classical_nodes=4)
        run = CoScheduleStrategy().launch(env, app)
        env.kernel.run(until=run.done)
        snapshot = facility_snapshot(env)
        assert 0.0 < snapshot.classical_node_utilisation <= 1.0
        assert 0.0 < snapshot.qpu_allocation_fraction <= 1.0
        assert 0.0 < snapshot.qpu_busy_fraction <= 1.0
        # Exclusive co-scheduling: allocated far more than busy.
        assert (
            snapshot.qpu_allocation_fraction
            > snapshot.qpu_busy_fraction
        )

    def test_idle_facility(self):
        env = make_environment(seed=0)
        env.kernel.timeout(100.0)
        env.kernel.run()
        snapshot = facility_snapshot(env)
        assert snapshot.classical_node_utilisation == 0.0
        assert snapshot.qpu_busy_fraction == 0.0
        assert snapshot.window_s == pytest.approx(100.0)
