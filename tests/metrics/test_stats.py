"""Tests for statistical helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.stats import (
    RunningStats,
    bootstrap_ci,
    bounded_slowdowns,
    geometric_mean,
    mean,
    median,
    ratio,
)


class TestRunningStats:
    def test_matches_batch_formulas(self):
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = RunningStats()
        for value in values:
            stats.add(value)
        assert stats.count == 8
        assert stats.total == pytest.approx(sum(values))
        assert stats.mean == pytest.approx(mean(values))
        assert stats.stdev == pytest.approx(2.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.variance == 0.0
        assert stats.stdev == 0.0

    def test_merge_equals_single_pass(self):
        values = [float(v) for v in range(1, 21)]
        combined = RunningStats()
        for value in values:
            combined.add(value)
        left, right = RunningStats(), RunningStats()
        for value in values[:7]:
            left.add(value)
        for value in values[7:]:
            right.add(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.total == pytest.approx(combined.total)
        assert left.mean == pytest.approx(combined.mean)
        assert left.stdev == pytest.approx(combined.stdev)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_with_empty_sides(self):
        filled = RunningStats()
        filled.add(3.0)
        empty = RunningStats()
        filled.merge(empty)
        assert filled.count == 1
        empty2 = RunningStats()
        empty2.merge(filled)
        assert empty2.count == 1
        assert empty2.mean == 3.0


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty(self):
        assert median([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_ratio(self):
        assert ratio(10.0, 2.0) == 5.0
        assert ratio(10.0, 0.0) == 0.0


class TestSlowdowns:
    def test_bounded_floor(self):
        slowdowns = bounded_slowdowns([100.0], [1.0], floor=10.0)
        assert slowdowns == [pytest.approx(10.0)]

    def test_never_below_one(self):
        slowdowns = bounded_slowdowns([5.0], [100.0])
        assert slowdowns == [1.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            bounded_slowdowns([1.0], [1.0, 2.0])


class TestBootstrap:
    def test_interval_contains_true_mean(self):
        values = [float(v) for v in range(100)]
        low, high = bootstrap_ci(values, seed=1)
        assert low <= 49.5 <= high

    def test_degenerate_inputs(self):
        assert bootstrap_ci([]) == (0.0, 0.0)
        assert bootstrap_ci([7.0]) == (7.0, 7.0)

    def test_deterministic_with_seed(self):
        values = [1.0, 5.0, 9.0, 2.0, 8.0]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)

    def test_confidence_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_wider_confidence_wider_interval(self):
        values = [float(v) for v in range(50)]
        narrow = bootstrap_ci(values, confidence=0.5, seed=2)
        wide = bootstrap_ci(values, confidence=0.99, seed=2)
        assert (wide[1] - wide[0]) >= (narrow[1] - narrow[0])
