"""Tests for statistical helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.stats import (
    bootstrap_ci,
    bounded_slowdowns,
    geometric_mean,
    mean,
    median,
    ratio,
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty(self):
        assert median([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_ratio(self):
        assert ratio(10.0, 2.0) == 5.0
        assert ratio(10.0, 0.0) == 0.0


class TestSlowdowns:
    def test_bounded_floor(self):
        slowdowns = bounded_slowdowns([100.0], [1.0], floor=10.0)
        assert slowdowns == [pytest.approx(10.0)]

    def test_never_below_one(self):
        slowdowns = bounded_slowdowns([5.0], [100.0])
        assert slowdowns == [1.0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            bounded_slowdowns([1.0], [1.0, 2.0])


class TestBootstrap:
    def test_interval_contains_true_mean(self):
        values = [float(v) for v in range(100)]
        low, high = bootstrap_ci(values, seed=1)
        assert low <= 49.5 <= high

    def test_degenerate_inputs(self):
        assert bootstrap_ci([]) == (0.0, 0.0)
        assert bootstrap_ci([7.0]) == (7.0, 7.0)

    def test_deterministic_with_seed(self):
        values = [1.0, 5.0, 9.0, 2.0, 8.0]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)

    def test_confidence_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_wider_confidence_wider_interval(self):
        values = [float(v) for v in range(50)]
        narrow = bootstrap_ci(values, confidence=0.5, seed=2)
        wide = bootstrap_ci(values, confidence=0.99, seed=2)
        assert (wide[1] - wide[0]) >= (narrow[1] - narrow[0])
