"""Shared fixtures for the test suite."""

import pytest

from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams


@pytest.fixture
def kernel() -> Kernel:
    """A fresh simulation kernel starting at t=0."""
    return Kernel()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams for tests."""
    return RandomStreams(seed=12345)
