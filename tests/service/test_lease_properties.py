"""Property-based lease protocol: random worker interleavings.

Hypothesis drives 2–4 simulated workers through random sequences of
claim / heartbeat / release / crash / clock-advance operations against
a real store on a simulated clock, shadowed by a reference model.
The invariants no example-based test can sweep:

- the store and the model never disagree on state, holder, or lease;
- a submission is only ever taken over after its lease has *strictly*
  expired — two live holders can never coexist;
- a fenced-off worker (crashed, or expired and superseded) can never
  heartbeat or release;
- every submission reaches ``done`` or ``failed`` **exactly once**,
  no matter how the schedule interleaves or how many workers crash.
"""

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.sweep import runner_name
from repro.store import ResultStore

from tests.service.conftest import counting_runner
from tests.store.conftest import grid_spec

#: Each example replays a whole multi-worker schedule against a fresh
#: SQLite store, so keep the sweep compact and the deadline off.
PROPERTY_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

LEASE = 10.0


@st.composite
def schedules(draw):
    n_subs = draw(st.integers(min_value=1, max_value=3))
    n_workers = draw(st.integers(min_value=2, max_value=4))
    count = draw(st.integers(min_value=4, max_value=40))
    ops = []
    for _ in range(count):
        kind = draw(
            st.sampled_from(
                ["claim", "heartbeat", "release", "crash", "advance"]
            )
        )
        if kind == "advance":
            ops.append(("advance", draw(st.integers(1, 15))))
        elif kind == "release":
            ops.append(
                (
                    "release",
                    draw(st.integers(0, n_workers - 1)),
                    draw(st.sampled_from(["pending", "done", "failed"])),
                )
            )
        else:
            ops.append((kind, draw(st.integers(0, n_workers - 1))))
    return n_subs, n_workers, ops


class _SimWorker:
    """One worker identity: what it *believes* it holds.

    A crash forgets the belief and rotates the identity (epoch), the
    way a restarted process comes back with a fresh worker id while
    its orphaned lease is still ticking in the store.
    """

    def __init__(self, index):
        self.index = index
        self.epoch = 0
        self.holding = None

    @property
    def worker_id(self):
        return f"w{self.index}e{self.epoch}"

    def crash(self):
        self.holding = None
        self.epoch += 1


class _Model:
    """Reference lease table: sid -> (holder, lease expiry, terminal)."""

    def __init__(self, sids):
        self.holder = {sid: None for sid in sids}
        self.lease_exp = {sid: None for sid in sids}
        self.terminal = {}
        self.terminal_releases = {sid: 0 for sid in sids}

    def claimable(self, now):
        for sid in sorted(self.holder):
            if sid in self.terminal:
                continue
            if self.holder[sid] is None:
                return sid
            if self.lease_exp[sid] < now:  # strictly expired
                return sid
        return None


def _check_agreement(store, model, now):
    """The store must mirror the model after every operation."""
    for sid in model.holder:
        record = store.submission(sid)
        if sid in model.terminal:
            assert record["state"] == model.terminal[sid]
            assert record["claimed_by"] is None
            assert record["lease_expires_at"] is None
        elif model.holder[sid] is None:
            assert record["state"] == "pending"
            assert record["claimed_by"] is None
        else:
            assert record["state"] == "running"
            assert record["claimed_by"] == model.holder[sid]
            assert record["lease_expires_at"] == model.lease_exp[sid]


class TestLeaseStateMachine:
    @settings(**PROPERTY_SETTINGS)
    @given(schedule=schedules())
    def test_random_interleavings_preserve_all_invariants(
        self, schedule
    ):
        n_subs, n_workers, ops = schedule
        with tempfile.TemporaryDirectory() as tmp:
            with ResultStore(
                Path(tmp) / "store", shared_writer=True
            ) as store:
                sids = [
                    store.submit(
                        f"sub{i}",
                        grid_spec(2, experiment_id=f"prop-{i}"),
                        runner_name(counting_runner),
                    )
                    for i in range(n_subs)
                ]
                self._run_schedule(store, sids, n_workers, ops)

    def _run_schedule(self, store, sids, n_workers, ops):
        workers = [_SimWorker(i) for i in range(n_workers)]
        model = _Model(sids)
        now = 0.0

        for op in ops:
            if op[0] == "advance":
                now += op[1]
                continue
            worker = workers[op[1]]
            wid = worker.worker_id

            if op[0] == "claim":
                if worker.holding is not None:
                    continue  # real workers run one submission at a time
                expected = model.claimable(now)
                record = store.claim_next_submission(
                    wid, lease_seconds=LEASE, now=now, max_claims=None
                )
                if expected is None:
                    assert record is None
                else:
                    assert record["id"] == expected
                    # Takeover only after strict expiry: the previous
                    # holder's lease must already be dead.
                    previous = model.holder[expected]
                    if previous is not None:
                        assert model.lease_exp[expected] < now
                    model.holder[expected] = wid
                    model.lease_exp[expected] = now + LEASE
                    worker.holding = expected

            elif op[0] == "heartbeat":
                if worker.holding is None:
                    continue
                sid = worker.holding
                held = store.heartbeat_submission(
                    sid, wid, lease_seconds=LEASE, now=now
                )
                still_mine = (
                    model.holder.get(sid) == wid
                    and sid not in model.terminal
                )
                assert held == still_mine
                if held:
                    model.lease_exp[sid] = now + LEASE
                else:
                    worker.holding = None  # fenced off: forget it

            elif op[0] == "release":
                if worker.holding is None:
                    continue
                sid, state = worker.holding, op[2]
                ok = store.release_submission(sid, wid, state, now=now)
                still_mine = (
                    model.holder.get(sid) == wid
                    and sid not in model.terminal
                )
                assert ok == still_mine
                if ok and state == "pending":
                    model.holder[sid] = None
                    model.lease_exp[sid] = None
                elif ok:
                    model.terminal[sid] = state
                    model.terminal_releases[sid] += 1
                    model.holder[sid] = None
                    model.lease_exp[sid] = None
                worker.holding = None

            elif op[0] == "crash":
                worker.crash()

            _check_agreement(store, model, now)

        # Drive every survivor to completion with a fresh finisher
        # whose clock has outlived every possible orphaned lease.
        now += LEASE + 1.0
        finisher = "finisher"
        while True:
            record = store.claim_next_submission(
                finisher, lease_seconds=LEASE, now=now, max_claims=None
            )
            if record is None:
                break
            assert store.release_submission(
                record["id"], finisher, "done", now=now
            )
            model.terminal[record["id"]] = "done"
            model.terminal_releases[record["id"]] += 1

        # THE invariant: terminal exactly once, for every submission.
        for sid in model.holder:
            assert model.terminal_releases[sid] == 1
            assert store.submission(sid)["state"] == model.terminal[sid]
            # A terminal submission is inert: unclaimable, unreleasable.
            assert not store.release_submission(
                sid, finisher, "done", now=now
            )
        assert store.claim_next_submission(finisher, now=now) is None
