"""The HTTP campaign API on a live ephemeral-port server.

Every test talks real HTTP (``http.client`` over a loopback socket) to
a :class:`~repro.service.http.ServiceServer` running in a thread —
routing, status-code mapping, JSON shapes, and concurrent submitters
all exercised through the wire, not by calling payload methods
directly.  The final class covers the subprocess reality: ``repro-hpcqc
serve`` taking a SIGTERM mid-request and still draining cleanly.
"""

import http.client
import json
import os
import select
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments.sweep import runner_name
from repro.service import Worker, make_server
from repro.service.http import MAX_BODY_BYTES
from repro.store import ResultStore

from tests.service.conftest import (
    COUNTS,
    counting_runner,
    subprocess_pythonpath,
)
from tests.store.conftest import grid_spec


def request(port, method, path, body=None):
    """One wire round-trip; returns (status, decoded JSON body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        conn.request(
            method, path, body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


def raw_spec_body(n=3, name="api-sub"):
    return {
        "name": name,
        "spec": grid_spec(n, experiment_id=f"http-{name}").to_dict(),
        "runner": runner_name(counting_runner),
    }


@pytest.fixture
def server(store_dir):
    server = make_server(store_dir, code_version="pinned")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
        thread.join(timeout=5)


@pytest.fixture
def port(server):
    return server.server_address[1]


class TestHealthAndQueue:
    def test_healthz_reports_ok_and_empty_queue(self, port):
        status, body = request(port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["version"]
        assert body["queue"]["depth"] == 0

    def test_queue_endpoint_counts_submissions(self, port):
        request(port, "POST", "/submissions", raw_spec_body())
        status, body = request(port, "GET", "/queue")
        assert status == 200
        assert body["pending"] == 1
        assert body["depth"] == 1
        assert body["stale_leases"] == 0


class TestSubmit:
    def test_raw_spec_submission_is_created(self, port):
        status, body = request(
            port, "POST", "/submissions", raw_spec_body(n=4)
        )
        assert status == 201
        assert body["id"] == 1
        assert body["state"] == "pending"
        assert body["points"] == 4
        assert body["runner"] == runner_name(counting_runner)
        assert "spec_json" not in body  # specs stay server-side

    def test_preset_submission_sweeps_a_scenario(self, port):
        status, body = request(port, "POST", "/submissions", {
            "preset": "baseline-32",
            "axes": {"workload.background_rho": [0.25, 0.5]},
        })
        assert status == 201
        assert body["points"] == 2
        assert body["name"] == "baseline-32"
        assert body["runner"].endswith(":run_scenario_point")

    @pytest.mark.parametrize("body,fragment", [
        ({}, "either 'preset'"),
        ({"spec": {"nonsense": 1}}, "'runner'"),
        ({"spec": {"nonsense": 1}, "runner": "m:f"}, "bad 'spec'"),
        ({"preset": "baseline-32"}, "'axes'"),
        ({"preset": "baseline-32", "axes": {}}, "'axes'"),
        ({"preset": "baseline-32", "axes": {"a.b": []}},
         "non-empty list"),
        ({"preset": "no-such-preset", "axes": {"a.b": [1]}},
         "unknown scenario"),
        ({"name": 7, "spec": {}, "runner": "m:f"}, "'name'"),
    ])
    def test_malformed_bodies_get_400(self, port, body, fragment):
        status, response = request(port, "POST", "/submissions", body)
        assert status == 400
        assert fragment in response["error"]

    def test_non_json_body_gets_400(self, port):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request("POST", "/submissions", body=b"not json {")
            response = conn.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_oversized_body_is_refused_unread(self, port):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.putrequest("POST", "/submissions")
            conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            assert "over" in json.loads(response.read())["error"]
        finally:
            conn.close()

    def test_concurrent_submitters_all_land(self, port):
        results, errors = [], []

        def post(index):
            try:
                results.append(request(
                    port, "POST", "/submissions",
                    raw_spec_body(name=f"racer-{index}"),
                ))
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=post, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert [status for status, _ in results] == [201] * 8
        assert {body["id"] for _, body in results} == set(range(1, 9))
        _, rows = request(port, "GET", "/submissions")
        assert len(rows) == 8


class TestRoutes:
    def test_unknown_routes_and_ids_get_404(self, port):
        assert request(port, "GET", "/nope")[0] == 404
        assert request(port, "GET", "/submissions/999")[0] == 404
        assert request(port, "GET", "/submissions/abc")[0] == 404
        assert request(port, "GET", "/submissions/1/nope")[0] == 404
        assert request(port, "POST", "/healthz", {})[0] == 404

    def test_write_methods_are_405(self, port):
        assert request(port, "PUT", "/submissions", {})[0] == 405
        assert request(port, "DELETE", "/submissions/1")[0] == 405

    def test_results_before_done_is_409(self, port):
        request(port, "POST", "/submissions", raw_spec_body())
        status, body = request(port, "GET", "/submissions/1/results")
        assert status == 409
        assert body["state"] == "pending"


class TestEndToEnd:
    def test_submit_work_fetch_results_over_the_wire(
        self, port, store_dir
    ):
        status, created = request(
            port, "POST", "/submissions", raw_spec_body(n=4)
        )
        assert status == 201
        with Worker(
            store_dir, poll_seconds=0.01, code_version="pinned"
        ) as worker:
            assert worker.run(until_drained=True, timeout=30) == 1
        assert COUNTS == {0: 1, 1: 1, 2: 1, 3: 1}

        status, record = request(
            port, "GET", f"/submissions/{created['id']}"
        )
        assert status == 200
        assert record["state"] == "done"
        assert record["ok_points"] == 4

        status, results = request(
            port, "GET", f"/submissions/{created['id']}/results?metrics=y"
        )
        assert status == 200
        assert results["headers"] == ["index", "params", "y"]
        assert [row[2] for row in results["rows"]] == [
            0.0, 2.0, 4.0, 6.0,
        ]


class TestDraining:
    def test_draining_rejects_submissions_but_stays_alive(self, server):
        port = server.server_address[1]
        server.service.draining = True
        status, body = request(
            port, "POST", "/submissions", raw_spec_body()
        )
        assert status == 503
        assert "draining" in body["error"]
        # Reads still work: health advertises the drain, queue serves.
        status, health = request(port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "draining"
        assert request(port, "GET", "/queue")[0] == 200


class TestServeSubprocess:
    def _start_serve(self, store_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = subprocess_pythonpath()
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--store", str(store_dir), "--port", "0", "--workers", "0",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        os.set_blocking(proc.stdout.fileno(), False)
        line, deadline = "", time.monotonic() + 30
        while "listening on" not in line:
            assert time.monotonic() < deadline, "serve never came up"
            assert proc.poll() is None, proc.stderr.read()
            ready, _, _ = select.select([proc.stdout], [], [], 0.5)
            if ready:
                line += proc.stdout.readline() or ""
        return proc, int(line.rsplit(":", 1)[1].strip())

    def test_sigterm_mid_request_still_drains_cleanly(self, store_dir):
        proc, port = self._start_serve(store_dir)
        try:
            status, _ = request(port, "GET", "/healthz")
            assert status == 200
            # A half-sent request: headers promise a body that never
            # arrives, parking one handler thread mid-read.
            import socket

            hung = socket.create_connection(("127.0.0.1", port))
            hung.sendall(
                b"POST /submissions HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: 64\r\n\r\n"
            )
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            hung.close()
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
            proc.wait()
        # The store the server held is intact and reopenable.
        with ResultStore(store_dir, code_version="pinned") as store:
            assert store.verify()["ok"]
