"""The in-process worker loop: claim, execute, release, drain.

Subprocess realities (real SIGKILL, lease expiry on the wall clock)
live in ``test_kill_anywhere.py``; here the loop's control flow is
pinned deterministically — unresolvable runners, graceful drain
mid-submission, bounded runs — plus the runner-resolution contract
and the supervisor's restart bookkeeping.
"""

import pytest

from repro.errors import ServiceError
from repro.experiments.sweep import runner_name
from repro.service import (
    Worker,
    WorkerSupervisor,
    default_worker_id,
    resolve_runner,
)

from tests.service.conftest import (
    COUNTS,
    CURRENT_WORKER,
    counting_runner,
    stopping_runner,
    subprocess_pythonpath,
)
from tests.store.conftest import grid_spec


def submit(store, n=3, runner=counting_runner, name="sub"):
    return store.submit(
        name, grid_spec(n, experiment_id=f"grid-{name}"),
        runner_name(runner),
    )


class TestResolveRunner:
    def test_round_trips_runner_name(self):
        name = runner_name(counting_runner)
        assert resolve_runner(name) is counting_runner

    @pytest.mark.parametrize(
        "bad",
        [
            "no-colon",
            ":dangling",
            "dangling:",
            "definitely.not.a.module:fn",
            "repro.service.workers:no_such_attr",
            "repro.service.workers:Worker.no_such_attr",
        ],
    )
    def test_unresolvable_references_raise_service_error(self, bad):
        with pytest.raises(ServiceError):
            resolve_runner(bad)

    def test_non_callable_target_is_rejected(self):
        with pytest.raises(ServiceError, match="non-callable"):
            resolve_runner("repro.store.api:DEFAULT_LEASE_SECONDS")

    def test_dotted_qualname_resolves(self):
        assert (
            resolve_runner("repro.service.workers:Worker.run")
            is Worker.run
        )


class TestDefaultWorkerId:
    def test_ids_are_distinct_and_carry_the_pid(self):
        import os

        first, second = default_worker_id(), default_worker_id()
        assert first != second
        assert str(os.getpid()) in first


class TestWorkerLoop:
    def test_drains_all_submissions_then_exits(self, store_dir, store):
        submit(store, name="a")
        submit(store, name="b")
        with Worker(
            store_dir, poll_seconds=0.01, code_version="pinned"
        ) as worker:
            executed = worker.run(until_drained=True, timeout=30)
        assert executed == 2
        assert [row["state"] for row in store.status()] == [
            "done", "done",
        ]
        assert COUNTS == {0: 2, 1: 2, 2: 2}  # 3 points x 2 submissions

    def test_max_submissions_bounds_the_run(self, store_dir, store):
        submit(store, name="a")
        submit(store, name="b")
        with Worker(
            store_dir, poll_seconds=0.01, code_version="pinned"
        ) as worker:
            assert worker.run(max_submissions=1) == 1
        states = {row["name"]: row["state"] for row in store.status()}
        assert states == {"a": "done", "b": "pending"}

    def test_timeout_bounds_an_idle_worker(self, store_dir):
        with Worker(
            store_dir, poll_seconds=0.01, code_version="pinned"
        ) as worker:
            assert worker.run(timeout=0.2) == 0

    def test_unresolvable_runner_fails_the_submission(
        self, store_dir, store
    ):
        sid = store.submit(
            "bad", grid_spec(2), "definitely.not.a.module:fn"
        )
        with Worker(
            store_dir, poll_seconds=0.01, code_version="pinned"
        ) as worker:
            assert worker.run(until_drained=True, timeout=30) == 1
        record = store.submission(sid)
        assert record["state"] == "failed"
        assert "cannot import runner module" in record["error"]

    def test_stop_mid_submission_requeues_after_current_point(
        self, store_dir, store
    ):
        sid = submit(store, n=4, runner=stopping_runner)
        with Worker(
            store_dir, poll_seconds=0.01, code_version="pinned"
        ) as worker:
            CURRENT_WORKER.append(worker)
            executed = worker.run(until_drained=True, timeout=30)
        # The drain aborted the submission (not counted as executed),
        # after the in-flight point committed.
        assert executed == 0
        record = store.submission(sid)
        assert record["state"] == "pending"
        assert record["claimed_by"] is None
        assert COUNTS == {0: 1}

        # A second worker resumes the remainder: zero re-execution.
        CURRENT_WORKER.clear()
        with Worker(
            store_dir, poll_seconds=0.01, code_version="pinned"
        ) as worker:
            assert worker.run(until_drained=True, timeout=30) == 1
        assert store.submission(sid)["state"] == "done"
        assert COUNTS == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_stopped_worker_never_claims(self, store_dir, store):
        submit(store)
        with Worker(
            store_dir, poll_seconds=0.01, code_version="pinned"
        ) as worker:
            worker.stop()
            assert worker.run() == 0
        assert store.status()[0]["state"] == "pending"


class TestWorkerSupervisor:
    def test_rejects_negative_workers(self, tmp_path):
        with pytest.raises(ServiceError):
            WorkerSupervisor(tmp_path, workers=-1)

    def test_restart_limit_defaults_scale_with_pool(self, tmp_path):
        assert WorkerSupervisor(tmp_path, 3).restart_limit == 24
        assert WorkerSupervisor(
            tmp_path, 3, restart_limit=1
        ).restart_limit == 1

    def test_spawn_restart_and_drain(self, store_dir, store, tmp_path):
        # Workers that die instantly (bad interpreter args are not an
        # option, so point them at a store and give them nothing to
        # do; kill them to simulate the crash).
        supervisor = WorkerSupervisor(
            store_dir, workers=2, poll_seconds=0.05, restart_limit=2,
            extra_env={"PYTHONPATH": subprocess_pythonpath()},
        )
        supervisor.start()
        try:
            assert len(supervisor._procs) == 2
            supervisor._procs[0].kill()
            supervisor._procs[0].wait()
            assert supervisor.poll() == 2  # replaced, still 2 alive
            assert supervisor.restarts == 1
            # Exhaust the restart budget: further deaths stay dead.
            supervisor._procs[0].kill()
            supervisor._procs[0].wait()
            supervisor._procs[1].kill()
            supervisor._procs[1].wait()
            supervisor.poll()
            supervisor._procs[0].kill()
            supervisor._procs[0].wait()
            assert supervisor.restarts == 2
            assert supervisor.poll() <= 2
        finally:
            supervisor.drain(timeout=15)
        assert supervisor.alive_count() == 0

    def test_drain_is_idempotent_and_stops_restarts(
        self, store_dir, store
    ):
        supervisor = WorkerSupervisor(
            store_dir, workers=1, poll_seconds=0.05,
            extra_env={"PYTHONPATH": subprocess_pythonpath()},
        )
        supervisor.start()
        supervisor.drain(timeout=15)
        assert supervisor.alive_count() == 0
        assert supervisor.poll() == 0  # draining: no replacement
        supervisor.drain(timeout=1)  # second drain is a no-op
        assert supervisor.restarts == 0
