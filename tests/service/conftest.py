"""Shared fixtures and subprocess drivers for the service battery.

The kill-anywhere suite follows the ``tests/store`` crash-test
conventions: every crash happens in a fresh interpreter (``os._exit``
in-process would take pytest down), per-point execution counts are
fsync'd marker files, and byte-identity is asserted through
``canonical_bytes`` digests.

The sweep runner workers execute lives in a ``svc_runner.py`` module
written into each test's workdir (drivers put the workdir on
``sys.path``), so submissions can record it as the portable
``svc_runner:marker_runner`` reference and *any* worker process can
resolve it — exactly how a real deployment ships runner code to its
workers.
"""

import json
import os
import sqlite3
from pathlib import Path

import pytest

from repro.store import ResultStore

from tests.store.conftest import run_driver  # noqa: F401 - re-export

REPO_ROOT = Path(__file__).resolve().parents[2]


def subprocess_pythonpath() -> str:
    """PYTHONPATH for spawned workers: src + repo root (for the
    ``tests.*`` runner modules) + whatever the session already had."""
    return os.pathsep.join(
        part
        for part in (
            str(REPO_ROOT / "src"),
            str(REPO_ROOT),
            os.environ.get("PYTHONPATH"),
        )
        if part
    )

#: Executions per in-process counting runner, keyed by grid x.
COUNTS = {}


def counting_runner(params, seed):
    """In-process runner whose executions are observable."""
    x = params["x"]
    COUNTS[x] = COUNTS.get(x, 0) + 1
    return {"y": x * 2.0, "n": x, "seed_mod": seed % 1000}


#: In-process worker-under-test, so a runner can ask it to drain.
CURRENT_WORKER = []


def stopping_runner(params, seed):
    """Requests a graceful drain from inside the first point."""
    if CURRENT_WORKER:
        CURRENT_WORKER[0].stop()
    return counting_runner(params, seed)


@pytest.fixture(autouse=True)
def _reset_runner_state():
    # Pytest loads this conftest under its own module name; the tests
    # (and the workers' resolve_runner) import `tests.service.conftest`
    # as a distinct module object.  Reset THAT copy's state — it is
    # the one the runners mutate.
    import importlib

    module = importlib.import_module("tests.service.conftest")
    module.COUNTS.clear()
    module.CURRENT_WORKER.clear()
    yield
    module.CURRENT_WORKER.clear()


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"


@pytest.fixture
def store(store_dir):
    # Shared-writer mode: these tests run in-process Workers (and
    # subprocess pools) against the same open store, exactly like the
    # HTTP service does.
    result_store = ResultStore(
        store_dir, code_version="pinned", shared_writer=True
    )
    with result_store:
        yield result_store


#: The runner module drivers write next to the store: marker files
#: count executions (fsync'd, so counts survive a SIGKILL), and the
#: optional SVC_POINT_DELAY keeps a sweep alive long enough for the
#: lease heartbeat sites to be reached.
RUNNER_MODULE = """
import os
import time
from pathlib import Path


def marker_runner(params, seed):
    marks = Path(os.environ["SVC_MARKS"])
    marks.mkdir(parents=True, exist_ok=True)
    with open(marks / f"p{params['x']}.runs", "a") as handle:
        handle.write(f"{os.getpid()}\\n")
        handle.flush()
        os.fsync(handle.fileno())
    delay = float(os.environ.get("SVC_POINT_DELAY", "0") or 0)
    if delay:
        time.sleep(delay)
    return {
        "y": params["x"] * 2.0,
        "n": params["x"],
        "label": f"x{params['x']}",
    }
"""

#: Record one deferred 6-point submission (the queue seed).
SEED_DRIVER = """
import sys
from pathlib import Path

from repro.experiments.sweep import SweepSpec
from repro.store import ResultStore

workdir = Path(sys.argv[1])
spec = SweepSpec("svc-grid", axes={"x": list(range(6))})
with ResultStore(workdir / "store", code_version="pinned") as store:
    store.submit("svc", spec, "svc_runner:marker_runner")
"""

#: One leased worker draining the queue (fault env may be set).
WORKER_DRIVER = """
import json, os, sys
from pathlib import Path

workdir = Path(sys.argv[1])
sys.path.insert(0, str(workdir))
worker_id, lease, timeout = sys.argv[2], float(sys.argv[3]), float(sys.argv[4])
os.environ.setdefault("SVC_MARKS", str(workdir / "points"))

from repro.service import Worker

with Worker(
    workdir / "store",
    worker_id=worker_id,
    lease_seconds=lease,
    poll_seconds=0.05,
    shard_points=2,
    code_version="pinned",
) as worker:
    executed = worker.run(until_drained=True, timeout=timeout)
(workdir / f"worker-{worker_id}.json").write_text(
    json.dumps({"executed": executed})
)
"""

#: Post-mortem: final submission state + results digest (done only).
REPORT_DRIVER = """
import hashlib, json, sys
from pathlib import Path

from repro.experiments.sweep import canonical_bytes
from repro.store import ResultStore

workdir = Path(sys.argv[1])
tag = sys.argv[2]
with ResultStore(workdir / "store", code_version="pinned") as store:
    record = store.submission(1)
    report = {
        "state": record["state"],
        "ok_points": record["ok_points"],
        "failed_points": record["failed_points"],
        "claimed_by": record["claimed_by"],
        "attempts": record["attempts"],
        "verify": store.verify(),
    }
    if record["state"] == "done":
        headers, rows = store.results_rows(1)
        report["digest"] = hashlib.sha256(
            canonical_bytes([headers, rows])
        ).hexdigest()
(workdir / f"report-{tag}.json").write_text(json.dumps(report))
"""

#: The byte-identity baseline: the same submission run serially
#: through ``run_submission`` (the `store run` path) in a clean store.
SERIAL_DRIVER = """
import hashlib, json, os, sys
from pathlib import Path

workdir = Path(sys.argv[1])
sys.path.insert(0, str(workdir))
os.environ["SVC_MARKS"] = str(workdir / "serial-points")

from repro.experiments.sweep import SweepSpec, canonical_bytes
from repro.store import ResultStore

import svc_runner

spec = SweepSpec("svc-grid", axes={"x": list(range(6))})
with ResultStore(workdir / "clean-store", code_version="pinned") as store:
    sid = store.submit("svc", spec, "svc_runner:marker_runner")
    store.run_submission(sid, svc_runner.marker_runner, workers=1)
    headers, rows = store.results_rows(sid)
(workdir / "serial.json").write_text(json.dumps({
    "digest": hashlib.sha256(
        canonical_bytes([headers, rows])
    ).hexdigest(),
}))
"""


def write_runner_module(workdir) -> None:
    (Path(workdir) / "svc_runner.py").write_text(
        RUNNER_MODULE, encoding="utf-8"
    )


def marker_counts(workdir):
    counts = {}
    points = Path(workdir) / "points"
    if points.is_dir():
        for path in points.glob("p*.runs"):
            x = int(path.stem[1:].split(".")[0])
            counts[x] = len(path.read_text().splitlines())
    return counts


def stored_xs(workdir):
    """Grid positions whose values committed, read straight off disk."""
    conn = sqlite3.connect(Path(workdir) / "store" / "store.sqlite3")
    try:
        keys = [
            key for (key,) in conn.execute("SELECT point_key FROM points")
        ]
    finally:
        conn.close()
    return {json.loads(key.split(":rep")[0])["x"] for key in keys}


def read_json(workdir, name):
    return json.loads((Path(workdir) / name).read_text())
