"""SIGKILL a worker at every fault site; a second worker finishes.

The service-level durability contract, pinned site by site: a worker
hard-killed (``os._exit`` via ``REPRO_STORE_FAULT``, the in-process
stand-in for SIGKILL) at *any* store commit boundary or lease-protocol
boundary never loses the submission — after its lease expires a second
worker claims the remainder, re-executes **zero** points whose values
had committed before the kill, and finishes with a results table
byte-identical to the same submission run serially through
``run_submission`` (the ``store run`` path) in a clean store.

Layout per scenario (all in fresh interpreters via ``run_driver``):

1. seed driver — record one deferred 6-point submission;
2. worker A — lease 1 s, fault env set, dies with CHAOS_EXIT_CODE;
3. worker B — different identity, no fault env, ``until_drained``
   (waits out A's orphaned lease where one survives the kill);
4. report driver — final state, verify report, results digest.
"""

import pytest

from repro.experiments.resilience import CHAOS_EXIT_CODE

from tests.service.conftest import (
    REPORT_DRIVER,
    SEED_DRIVER,
    SERIAL_DRIVER,
    WORKER_DRIVER,
    marker_counts,
    read_json,
    run_driver,
    stored_xs,
    write_runner_module,
)

#: Sweep-path sites (hit counts land the crash mid-grid: 6 points,
#: shard_points=2 -> 3 shards) plus every lease-protocol site.  The
#: heartbeat sites need the sweep still running when a heartbeat
#: fires, so those scenarios slow each point down past the heartbeat
#: interval (lease 1 s / 4 = 0.25 s).
SITES = [
    ("point-pre-commit", 3, 0.0),
    ("point-post-commit", 3, 0.0),
    ("outcome-pre-commit", 3, 0.0),
    ("outcome-post-commit", 3, 0.0),
    ("shard-mid-write", 2, 0.0),
    ("shard-tmp-written", 2, 0.0),
    ("shard-renamed", 2, 0.0),
    ("finalize-pre-commit", 1, 0.0),
    ("finalize-post-commit", 1, 0.0),
    ("lease-claim-pre-commit", 1, 0.0),
    ("lease-claim-post-commit", 1, 0.0),
    ("lease-heartbeat-pre-commit", 1, 0.12),
    ("lease-heartbeat-post-commit", 1, 0.12),
    ("lease-release-pre-commit", 1, 0.0),
    ("lease-release-post-commit", 1, 0.0),
]

#: Worker A's lease: short enough that worker B's takeover keeps the
#: suite fast, long enough that a live worker never loses it.
LEASE_A = 1.0


@pytest.fixture(scope="session")
def serial_digest(tmp_path_factory):
    """The byte-identity baseline, computed once: the runner is
    deterministic in (params, seed), so every scenario's grid must
    reproduce this exact results table."""
    workdir = tmp_path_factory.mktemp("serial-baseline")
    write_runner_module(workdir)
    done = run_driver(SERIAL_DRIVER, workdir)
    assert done.returncode == 0, done.stderr
    return read_json(workdir, "serial.json")["digest"]


class TestKillAnyWorkerAnywhere:
    @pytest.mark.parametrize(
        "site,hit,delay", SITES, ids=[s for s, _, _ in SITES]
    )
    def test_second_worker_completes_without_reexecution(
        self, tmp_path, serial_digest, site, hit, delay
    ):
        write_runner_module(tmp_path)
        seeded = run_driver(SEED_DRIVER, tmp_path)
        assert seeded.returncode == 0, seeded.stderr

        env = {"REPRO_STORE_FAULT": f"{site}:{hit}"}
        if delay:
            env["SVC_POINT_DELAY"] = str(delay)
        killed = run_driver(
            WORKER_DRIVER, tmp_path, "worker-a", LEASE_A, 30, env=env
        )
        assert killed.returncode == CHAOS_EXIT_CODE, (
            killed.stdout + killed.stderr
        )
        assert not (tmp_path / "worker-worker-a.json").exists()

        runs_before = marker_counts(tmp_path)
        stored = stored_xs(tmp_path)
        # Whatever committed was executed at least once before dying.
        for x in stored:
            assert runs_before.get(x, 0) >= 1

        # Worker B: fresh identity, no faults; until_drained waits out
        # worker A's orphaned lease where the kill left one behind.
        second = run_driver(
            WORKER_DRIVER, tmp_path, "worker-b", 10.0, 60
        )
        assert second.returncode == 0, second.stdout + second.stderr

        report_run = run_driver(REPORT_DRIVER, tmp_path, "final")
        assert report_run.returncode == 0, report_run.stderr
        report = read_json(tmp_path, "report-final.json")

        # The submission reached `done` exactly once, lease cleared.
        assert report["state"] == "done", report
        assert report["ok_points"] == 6
        assert report["failed_points"] == 0
        assert report["claimed_by"] is None
        assert report["verify"]["ok"], report["verify"]

        # THE contract: not one point whose value had committed before
        # the kill ran again under worker B.
        runs_after = marker_counts(tmp_path)
        for x in stored:
            assert runs_after[x] == runs_before[x], (
                f"committed point x={x} re-executed after {site}"
            )
        assert all(runs_after.get(x, 0) >= 1 for x in range(6))

        # Byte-identity with the serial `store run` baseline.
        assert report["digest"] == serial_digest

    def test_no_fault_env_single_worker_completes(
        self, tmp_path, serial_digest
    ):
        write_runner_module(tmp_path)
        seeded = run_driver(SEED_DRIVER, tmp_path)
        assert seeded.returncode == 0, seeded.stderr
        done = run_driver(WORKER_DRIVER, tmp_path, "solo", 30.0, 60)
        assert done.returncode == 0, done.stdout + done.stderr
        assert read_json(tmp_path, "worker-solo.json")["executed"] == 1
        assert marker_counts(tmp_path) == {x: 1 for x in range(6)}
        report_run = run_driver(REPORT_DRIVER, tmp_path, "solo")
        assert report_run.returncode == 0, report_run.stderr
        report = read_json(tmp_path, "report-solo.json")
        assert report["state"] == "done"
        assert report["attempts"] == 1
        assert report["digest"] == serial_digest

    def test_release_post_commit_kill_leaves_nothing_for_worker_b(
        self, tmp_path
    ):
        """Killed *after* the terminal release committed: the queue is
        already drained — worker B must execute nothing and must not
        disturb the finished submission."""
        write_runner_module(tmp_path)
        run_driver(SEED_DRIVER, tmp_path)
        killed = run_driver(
            WORKER_DRIVER, tmp_path, "worker-a", LEASE_A, 30,
            env={"REPRO_STORE_FAULT": "lease-release-post-commit:1"},
        )
        assert killed.returncode == CHAOS_EXIT_CODE
        second = run_driver(WORKER_DRIVER, tmp_path, "worker-b", 10.0, 60)
        assert second.returncode == 0, second.stderr
        assert (
            read_json(tmp_path, "worker-worker-b.json")["executed"] == 0
        )
        assert marker_counts(tmp_path) == {x: 1 for x in range(6)}
