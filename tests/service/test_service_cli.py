"""The ``serve``, ``worker``, and ``store status`` CLI surfaces.

The subprocess lifecycle of ``serve`` (SIGTERM drain, port scraping)
is pinned in ``test_http.py``; here the verbs run in-process through
``main()`` — flag validation, the worker verb's bounded runs, and the
queue line ``store status`` grew for lease visibility.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.sweep import runner_name

from tests.service.conftest import COUNTS, counting_runner
from tests.store.conftest import grid_spec


def seed(store, n=3, name="cli-sub"):
    return store.submit(
        name, grid_spec(n, experiment_id=f"cli-{name}"),
        runner_name(counting_runner),
    )


class TestStoreStatusQueue:
    def test_text_status_reports_queue_counts(self, store_dir, store, capsys):
        seed(store, name="a")
        seed(store, name="b")
        store.claim_next_submission("w1", lease_seconds=0.001, now=0.0)
        assert main(["store", "status", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert (
            "[queue] pending=1 running=1 done=0 failed=0 stale_leases=1"
            in out
        )

    def test_json_status_keeps_bare_rows_and_reports_queue_aside(
        self, store_dir, store, capsys
    ):
        seed(store)
        assert main(["store", "status", str(store_dir), "--json"]) == 0
        captured = capsys.readouterr()
        rows = json.loads(captured.out)  # the pinned machine shape
        assert isinstance(rows, list) and rows[0]["state"] == "pending"
        aside = json.loads(captured.err)
        assert aside["queue"]["pending"] == 1
        assert aside["queue"]["stale_leases"] == 0


class TestWorkerVerb:
    def test_until_drained_executes_and_reports(
        self, store_dir, store, capsys
    ):
        seed(store)
        assert main([
            "worker", "--store", str(store_dir),
            "--worker-id", "cli-w", "--poll-interval", "0.01",
            "--until-drained", "--timeout", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "[worker] cli-w draining" in out
        assert "[worker] cli-w exiting (1 executed)" in out
        assert COUNTS == {0: 1, 1: 1, 2: 1}
        assert store.submission(1)["state"] == "done"

    def test_max_submissions_bounds_the_verb(
        self, store_dir, store, capsys
    ):
        seed(store, name="a")
        seed(store, name="b")
        assert main([
            "worker", "--store", str(store_dir),
            "--worker-id", "cli-w", "--poll-interval", "0.01",
            "--max-submissions", "1",
        ]) == 0
        assert "(1 executed)" in capsys.readouterr().out
        states = {row["name"]: row["state"] for row in store.status()}
        assert states == {"a": "done", "b": "pending"}

    def test_idle_timeout_exits_zero(self, store_dir, capsys):
        assert main([
            "worker", "--store", str(store_dir),
            "--worker-id", "idle", "--poll-interval", "0.01",
            "--timeout", "0.2",
        ]) == 0
        assert "(0 executed)" in capsys.readouterr().out


class TestFlagValidation:
    def test_serve_rejects_negative_workers(self, store_dir, capsys):
        with pytest.raises(SystemExit):
            main([
                "serve", "--store", str(store_dir), "--workers", "-1",
            ])
        assert "--workers" in capsys.readouterr().err

    def test_worker_rejects_nonpositive_max_submissions(
        self, store_dir, capsys
    ):
        with pytest.raises(SystemExit):
            main([
                "worker", "--store", str(store_dir),
                "--max-submissions", "0",
            ])
        assert "--max-submissions" in capsys.readouterr().err

    def test_worker_rejects_bad_point_workers(self, store_dir):
        with pytest.raises(SystemExit):
            main([
                "worker", "--store", str(store_dir),
                "--point-workers", "lots",
            ])
