"""The lease protocol, unit by unit, on a simulated clock.

Every method takes ``now=`` so these tests never sleep: claims,
heartbeats, releases, expiry takeovers and the poison cap are all
driven with explicit timestamps.  The subprocess realities (real
crashes, real clocks) live in ``test_kill_anywhere.py``.
"""

import pytest

from repro.errors import (
    ConfigurationError,
    LeaseError,
    StoreLockedError,
    UnknownSubmissionError,
    WorkerDrainError,
)
from repro.experiments.sweep import SweepSpec, runner_name
from repro.store import ResultStore
from repro.store.api import DEFAULT_MAX_CLAIMS

from tests.service.conftest import COUNTS, counting_runner
from tests.store.conftest import grid_spec


def submit(store, n=3, name="sub"):
    return store.submit(
        name, grid_spec(n, experiment_id=f"grid-{name}"),
        runner_name(counting_runner),
    )


class TestClaim:
    def test_claim_marks_running_with_lease(self, store):
        sid = submit(store)
        record = store.claim_next_submission(
            "w1", lease_seconds=30.0, now=100.0
        )
        assert record["id"] == sid
        assert record["state"] == "running"
        assert record["claimed_by"] == "w1"
        assert record["lease_expires_at"] == 130.0
        assert record["attempts"] == 1
        assert record["code_version"] == "pinned"

    def test_claim_oldest_first(self, store):
        first = submit(store, name="a")
        second = submit(store, name="b")
        assert store.claim_next_submission("w1", now=0.0)["id"] == first
        assert store.claim_next_submission("w2", now=0.0)["id"] == second

    def test_empty_queue_claims_none(self, store):
        assert store.claim_next_submission("w1", now=0.0) is None

    def test_unexpired_lease_is_not_claimable(self, store):
        submit(store)
        store.claim_next_submission("w1", lease_seconds=30.0, now=100.0)
        assert (
            store.claim_next_submission("w2", now=129.9) is None
        )

    def test_expired_lease_takeover_increments_attempts(self, store):
        sid = submit(store)
        store.claim_next_submission("w1", lease_seconds=30.0, now=100.0)
        record = store.claim_next_submission(
            "w2", lease_seconds=30.0, now=130.1
        )
        assert record["id"] == sid
        assert record["claimed_by"] == "w2"
        assert record["attempts"] == 2

    def test_terminal_submissions_are_never_claimable(self, store):
        sid = submit(store)
        store.claim_next_submission("w1", now=0.0)
        assert store.release_submission(sid, "w1", "done", now=1.0)
        assert store.claim_next_submission("w2", now=1000.0) is None

    def test_claim_rejects_nonpositive_lease(self, store):
        submit(store)
        with pytest.raises(ConfigurationError):
            store.claim_next_submission("w1", lease_seconds=0.0)


class TestHeartbeatAndRelease:
    def test_heartbeat_extends_the_lease(self, store):
        sid = submit(store)
        store.claim_next_submission("w1", lease_seconds=30.0, now=100.0)
        assert store.heartbeat_submission(
            sid, "w1", lease_seconds=30.0, now=120.0
        )
        assert store.submission(sid)["lease_expires_at"] == 150.0

    def test_heartbeat_after_takeover_is_fenced_off(self, store):
        sid = submit(store)
        store.claim_next_submission("w1", lease_seconds=30.0, now=100.0)
        store.claim_next_submission("w2", lease_seconds=30.0, now=131.0)
        assert not store.heartbeat_submission(sid, "w1", now=132.0)
        # ... and w1 did not resurrect or extend anything.
        assert store.submission(sid)["claimed_by"] == "w2"
        assert store.submission(sid)["lease_expires_at"] == 161.0

    def test_release_requeues_as_pending(self, store):
        sid = submit(store)
        store.claim_next_submission("w1", now=0.0)
        assert store.release_submission(sid, "w1", "pending", now=1.0)
        record = store.submission(sid)
        assert record["state"] == "pending"
        assert record["claimed_by"] is None
        assert record["lease_expires_at"] is None
        # Requeued means claimable again, attempts preserved.
        assert store.claim_next_submission("w2", now=2.0)["attempts"] == 2

    def test_terminal_release_happens_exactly_once(self, store):
        sid = submit(store)
        store.claim_next_submission("w1", lease_seconds=30.0, now=100.0)
        store.claim_next_submission("w2", lease_seconds=30.0, now=131.0)
        # The stale holder cannot complete the submission...
        assert not store.release_submission(
            sid, "w1", "done", now=132.0, ok_points=3, failed_points=0
        )
        assert store.submission(sid)["state"] == "running"
        # ... the live one can, exactly once.
        assert store.release_submission(
            sid, "w2", "done", now=133.0, ok_points=3, failed_points=0
        )
        assert not store.release_submission(sid, "w2", "done", now=134.0)
        record = store.submission(sid)
        assert record["state"] == "done"
        assert record["ok_points"] == 3

    def test_release_rejects_non_release_states(self, store):
        sid = submit(store)
        store.claim_next_submission("w1", now=0.0)
        with pytest.raises(ConfigurationError):
            store.release_submission(sid, "w1", "running")


class TestPoisonCap:
    def test_submission_fails_after_max_claims(self, store):
        sid = submit(store)
        now = 0.0
        for attempt in range(1, 4):
            record = store.claim_next_submission(
                f"w{attempt}", lease_seconds=1.0, now=now, max_claims=3
            )
            assert record["attempts"] == attempt
            now += 10.0  # the lease expires, the worker never released
        assert (
            store.claim_next_submission("w9", now=now, max_claims=3)
            is None
        )
        record = store.submission(sid)
        assert record["state"] == "failed"
        assert "abandoned after 3 failed claims" in record["error"]

    def test_poisoned_submission_does_not_block_the_queue(self, store):
        poisoned = submit(store, name="poison")
        healthy = submit(store, name="healthy")
        now = 0.0
        for attempt in range(3):
            store.claim_next_submission(
                "w1", lease_seconds=1.0, now=now, max_claims=3
            )
            now += 10.0
        record = store.claim_next_submission("w2", now=now, max_claims=3)
        assert record["id"] == healthy
        assert store.submission(poisoned)["state"] == "failed"

    def test_default_cap_is_generous_but_finite(self, store):
        submit(store)
        now = 0.0
        for _ in range(DEFAULT_MAX_CLAIMS):
            assert (
                store.claim_next_submission(
                    "w", lease_seconds=1.0, now=now
                )
                is not None
            )
            now += 10.0
        assert store.claim_next_submission("w", now=now) is None

    def test_max_claims_none_retries_forever(self, store):
        submit(store)
        now = 0.0
        for _ in range(DEFAULT_MAX_CLAIMS + 3):
            assert (
                store.claim_next_submission(
                    "w", lease_seconds=1.0, now=now, max_claims=None
                )
                is not None
            )
            now += 10.0


class TestQueueSummary:
    def test_counts_states_and_stale_leases(self, store):
        a = submit(store, name="a")
        submit(store, name="b")
        c = submit(store, name="c")
        d = submit(store, name="d")
        store.claim_next_submission("w1", lease_seconds=30.0, now=100.0)
        assert store.release_submission(a, "w1", "done", now=101.0)
        store.claim_next_submission("w1", lease_seconds=30.0, now=102.0)
        store.claim_next_submission("w2", lease_seconds=300.0, now=103.0)
        summary = store.queue_summary(now=200.0)
        assert summary["pending"] == 1
        assert summary["running"] == 2
        assert summary["done"] == 1
        assert summary["failed"] == 0
        assert summary["stale_leases"] == 1  # w1's 30 s lease, at t=200
        assert summary["depth"] == 3
        assert c and d  # ids used: b pending, c+d running

    def test_empty_store_summary_is_all_zero(self, store):
        summary = store.queue_summary()
        assert summary == {
            "pending": 0, "running": 0, "done": 0, "failed": 0,
            "stale_leases": 0, "depth": 0,
        }


class TestRunClaimedSubmission:
    def test_requires_a_held_lease(self, store):
        sid = submit(store)
        with pytest.raises(LeaseError):
            store.run_claimed_submission(sid, counting_runner, "w1")

    def test_rejects_a_stale_holder(self, store):
        sid = submit(store)
        store.claim_next_submission("w1", lease_seconds=30.0, now=100.0)
        store.claim_next_submission("w2", lease_seconds=30.0, now=131.0)
        with pytest.raises(LeaseError):
            store.run_claimed_submission(sid, counting_runner, "w1")

    def test_rejects_a_mismatched_runner(self, store):
        spec = grid_spec(2, experiment_id="mismatch")
        sid = store.submit("sub", spec, "some.other:runner")
        store.claim_next_submission("w1", now=0.0)
        with pytest.raises(ConfigurationError):
            store.run_claimed_submission(sid, counting_runner, "w1")

    def test_executes_finalizes_and_releases_done(self, store):
        sid = submit(store, n=4)
        store.claim_next_submission("w1")
        result, released = store.run_claimed_submission(
            sid, counting_runner, "w1", shard_points=2
        )
        assert released
        assert result.ok_count == 4
        record = store.submission(sid)
        assert record["state"] == "done"
        assert record["ok_points"] == 4
        assert record["claimed_by"] is None
        headers, rows = store.results_rows(sid, metrics=["y"])
        assert [row[2] for row in rows] == [0.0, 2.0, 4.0, 6.0]

    def test_drain_requeues_and_resume_skips_committed(self, store):
        sid = submit(store, n=4)
        store.claim_next_submission("w1")

        def drain_after_two(point, outcome):
            if point.index == 1:
                raise WorkerDrainError("drain requested")

        with pytest.raises(WorkerDrainError):
            store.run_claimed_submission(
                sid, counting_runner, "w1", on_outcome=drain_after_two
            )
        record = store.submission(sid)
        assert record["state"] == "pending"
        assert record["claimed_by"] is None
        assert COUNTS == {0: 1, 1: 1}  # the current point committed

        store.claim_next_submission("w2")
        result, released = store.run_claimed_submission(
            sid, counting_runner, "w2"
        )
        assert released
        # Zero re-execution of the two committed points.
        assert COUNTS == {0: 1, 1: 1, 2: 1, 3: 1}
        assert store.submission(sid)["state"] == "done"

    def test_runner_failure_releases_failed_with_error(self, store):
        spec = grid_spec(2, experiment_id="boom")
        sid = store.submit(
            "sub", spec, runner_name(_exploding_runner)
        )
        store.claim_next_submission("w1")
        with pytest.raises(Exception, match="boom at x=0"):
            store.run_claimed_submission(sid, _exploding_runner, "w1")
        record = store.submission(sid)
        assert record["state"] == "failed"
        assert "boom at x=0" in record["error"]
        assert record["claimed_by"] is None


def _exploding_runner(params, seed):
    raise RuntimeError(f"boom at x={params['x']}")


class TestSharedWriterLock:
    def test_shared_holders_coexist(self, store_dir):
        with ResultStore(store_dir, shared_writer=True) as a:
            a.acquire()
            with ResultStore(store_dir, shared_writer=True) as b:
                b.acquire()  # no StoreLockedError: leases arbitrate

    def test_shared_and_exclusive_exclude_each_other(self, store_dir):
        with ResultStore(store_dir, shared_writer=True) as shared:
            shared.acquire()
            exclusive = ResultStore(store_dir)
            with pytest.raises(StoreLockedError):
                exclusive.acquire()
            exclusive.close()
        with ResultStore(store_dir) as exclusive:
            exclusive.acquire()
            shared = ResultStore(store_dir, shared_writer=True)
            with pytest.raises(StoreLockedError):
                shared.acquire()
            shared.close()


class TestUnknownSubmission:
    def test_submission_raises_typed_error(self, store):
        with pytest.raises(UnknownSubmissionError):
            store.submission(999)
