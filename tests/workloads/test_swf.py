"""Tests for SWF trace synthesis, (de)serialisation and replay
transforms."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.swf import (
    TraceJob,
    clip_trace,
    jitter_trace,
    loop_trace,
    read_swf,
    rescale_trace,
    synthesise_trace,
    truncate_trace,
    write_swf,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestTraceJob:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceJob(1, 0.0, -5.0, 1, 10.0)
        with pytest.raises(WorkloadError):
            TraceJob(1, 0.0, 5.0, 0, 10.0)
        with pytest.raises(WorkloadError):
            TraceJob(1, 0.0, 5.0, 1, 0.0)


class TestSynthesis:
    def test_job_count(self, rng):
        jobs = synthesise_trace(rng, job_count=50)
        assert len(jobs) == 50

    def test_submit_times_increasing(self, rng):
        jobs = synthesise_trace(rng, job_count=50)
        submits = [job.submit_time for job in jobs]
        assert submits == sorted(submits)

    def test_walltime_overestimates_runtime(self, rng):
        jobs = synthesise_trace(rng, job_count=30,
                                walltime_overestimate=2.0)
        for job in jobs:
            assert job.requested_walltime == pytest.approx(
                2.0 * job.runtime
            )

    def test_users_drawn_from_pool(self, rng):
        jobs = synthesise_trace(rng, job_count=100, user_count=4)
        users = {job.user for job in jobs}
        assert users <= {f"user{i}" for i in range(4)}
        assert len(users) > 1

    def test_deterministic_for_seed(self):
        a = synthesise_trace(np.random.default_rng(5), job_count=20)
        b = synthesise_trace(np.random.default_rng(5), job_count=20)
        assert [(j.submit_time, j.runtime) for j in a] == [
            (j.submit_time, j.runtime) for j in b
        ]

    def test_negative_count_rejected(self, rng):
        with pytest.raises(WorkloadError):
            synthesise_trace(rng, job_count=-1)


class TestRoundTrip:
    def test_write_read_preserves_fields(self, rng, tmp_path):
        jobs = synthesise_trace(rng, job_count=20)
        path = str(tmp_path / "trace.swf")
        write_swf(jobs, path)
        loaded = read_swf(path)
        assert len(loaded) == 20
        for original, parsed in zip(jobs, loaded):
            assert parsed.job_id == original.job_id
            assert parsed.nodes == original.nodes
            assert parsed.submit_time == pytest.approx(
                original.submit_time, abs=1.0
            )
            assert parsed.runtime == pytest.approx(
                original.runtime, abs=1.0
            )
            assert parsed.user == original.user

    def test_read_from_file_object(self, rng):
        jobs = synthesise_trace(rng, job_count=5)
        buffer = io.StringIO()
        write_swf(jobs, buffer)
        buffer.seek(0)
        assert len(read_swf(buffer)) == 5

    def test_read_from_literal_text(self):
        text = (
            "; comment line\n"
            "1 100 -1 3600 8 -1 -1 -1 7200 -1 -1 2 -1 -1 -1 -1 -1 -1\n"
        )
        jobs = read_swf(text)
        assert len(jobs) == 1
        assert jobs[0].nodes == 8
        assert jobs[0].user == "user2"

    def test_cancelled_jobs_skipped(self):
        text = "1 100 -1 -1 8 -1 -1 -1 7200 -1 -1 2 -1 -1 -1 -1 -1 -1\n"
        assert read_swf(text) == []

    def test_short_line_rejected(self):
        with pytest.raises(WorkloadError):
            read_swf("1 2 3\n")

    def test_garbage_field_rejected(self):
        text = "x 100 -1 10 8 -1 -1 -1 7200 -1 -1 2 -1 -1 -1 -1 -1 -1\n"
        with pytest.raises(WorkloadError):
            read_swf(text)


class TestReadEdgeCases:
    def test_hash_comments_and_blank_lines_skipped(self):
        text = (
            "# non-standard comment\n"
            "\n"
            "; standard SWF header\n"
            "1 100 -1 60 4 -1 -1 4 120 -1 -1 0 -1 -1 -1 -1 -1 -1\n"
        )
        assert len(read_swf(text)) == 1

    def test_missing_submit_time_clamps_to_zero(self):
        text = "1 -1 -1 60 4 -1 -1 4 120 -1 -1 0 -1 -1 -1 -1 -1 -1\n"
        assert read_swf(text)[0].submit_time == 0.0

    def test_missing_allocated_nodes_fall_back_to_request(self):
        text = "1 100 -1 60 -1 -1 -1 16 120 -1 -1 0 -1 -1 -1 -1 -1 -1\n"
        assert read_swf(text)[0].nodes == 16

    def test_both_node_fields_missing_default_to_one(self):
        text = "1 100 -1 60 -1 -1 -1 -1 120 -1 -1 0 -1 -1 -1 -1 -1 -1\n"
        assert read_swf(text)[0].nodes == 1

    def test_zero_duration_job_kept(self):
        text = "1 100 -1 0 4 -1 -1 4 -1 -1 -1 0 -1 -1 -1 -1 -1 -1\n"
        jobs = read_swf(text)
        assert len(jobs) == 1
        assert jobs[0].runtime == 0.0
        assert jobs[0].requested_walltime == 1.0

    def test_missing_walltime_falls_back_to_runtime(self):
        text = "1 100 -1 600 4 -1 -1 4 -1 -1 -1 0 -1 -1 -1 -1 -1 -1\n"
        assert read_swf(text)[0].requested_walltime == 600.0

    def test_missing_user_maps_to_user0(self):
        text = "1 100 -1 60 4 -1 -1 4 120 -1 -1 -1 -1 -1 -1 -1 -1 -1\n"
        assert read_swf(text)[0].user == "user0"


class TestWriteEdgeCases:
    def test_non_numeric_users_get_stable_synthetic_ids(self):
        jobs = [
            TraceJob(1, 0.0, 60.0, 1, 120.0, user="alice"),
            TraceJob(2, 10.0, 60.0, 1, 120.0, user="bob"),
            TraceJob(3, 20.0, 60.0, 1, 120.0, user="alice"),
        ]
        buffer = io.StringIO()
        write_swf(jobs, buffer)
        buffer.seek(0)
        loaded = read_swf(buffer)
        assert loaded[0].user == loaded[2].user
        assert loaded[0].user != loaded[1].user

    def test_zero_duration_round_trips(self):
        buffer = io.StringIO()
        write_swf([TraceJob(1, 5.0, 0.0, 2, 10.0)], buffer)
        buffer.seek(0)
        job = read_swf(buffer)[0]
        assert job.runtime == 0.0
        assert job.nodes == 2

    def test_synthetic_ids_never_collide_with_numeric_users(self):
        jobs = [
            TraceJob(1, 0.0, 60.0, 1, 120.0, user="alice"),
            TraceJob(2, 10.0, 60.0, 1, 120.0, user="user1000"),
        ]
        buffer = io.StringIO()
        write_swf(jobs, buffer)
        buffer.seek(0)
        loaded = read_swf(buffer)
        assert loaded[1].user == "user1000"
        assert loaded[0].user != loaded[1].user

    def test_zero_padded_user_names_stay_distinct(self):
        jobs = [
            TraceJob(1, 0.0, 60.0, 1, 120.0, user="user007"),
            TraceJob(2, 10.0, 60.0, 1, 120.0, user="user7"),
        ]
        buffer = io.StringIO()
        write_swf(jobs, buffer)
        buffer.seek(0)
        loaded = read_swf(buffer)
        assert loaded[1].user == "user7"
        assert loaded[0].user != loaded[1].user


# -- hypothesis round-trip properties ----------------------------------------

_trace_jobs = st.builds(
    TraceJob,
    job_id=st.integers(min_value=1, max_value=10**6),
    submit_time=st.integers(min_value=0, max_value=10**7).map(float),
    runtime=st.integers(min_value=0, max_value=10**6).map(float),
    nodes=st.integers(min_value=1, max_value=4096),
    requested_walltime=st.integers(min_value=1, max_value=10**6).map(
        float
    ),
    user=st.integers(min_value=0, max_value=200).map(
        lambda i: f"user{i}"
    ),
)


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_trace_jobs, max_size=30))
    def test_integer_traces_round_trip_losslessly(self, jobs):
        """Whole-second jobs survive write -> read field for field
        (modulo the walltime >= runtime floor read_swf enforces)."""
        buffer = io.StringIO()
        write_swf(jobs, buffer)
        buffer.seek(0)
        loaded = read_swf(buffer)
        assert len(loaded) == len(jobs)
        for original, parsed in zip(jobs, loaded):
            assert parsed.job_id == original.job_id
            assert parsed.submit_time == original.submit_time
            assert parsed.runtime == original.runtime
            assert parsed.nodes == original.nodes
            assert parsed.requested_walltime == max(
                original.requested_walltime, original.runtime, 1.0
            )
            assert parsed.user == original.user

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_trace_jobs, max_size=30))
    def test_double_round_trip_is_identity(self, jobs):
        """read(write(x)) is a fixed point: a second round trip
        reproduces the first byte for byte."""
        first = io.StringIO()
        write_swf(jobs, first)
        once = read_swf(io.StringIO(first.getvalue()))
        second = io.StringIO()
        write_swf(once, second)
        assert read_swf(io.StringIO(second.getvalue())) == once


# -- replay transforms --------------------------------------------------------


def _stub_trace():
    return [
        TraceJob(1, 0.0, 100.0, 2, 200.0),
        TraceJob(2, 60.0, 50.0, 4, 100.0),
        TraceJob(3, 120.0, 0.0, 1, 10.0),
    ]


class TestRescale:
    def test_time_scale_compresses_arrivals_only(self):
        scaled = rescale_trace(_stub_trace(), time_scale=0.5)
        assert [j.submit_time for j in scaled] == [0.0, 30.0, 60.0]
        assert [j.runtime for j in scaled] == [100.0, 50.0, 0.0]

    def test_runtime_scale_preserves_overestimate_factor(self):
        scaled = rescale_trace(_stub_trace(), runtime_scale=3.0)
        assert scaled[0].runtime == 300.0
        assert scaled[0].requested_walltime == 600.0

    def test_identity_scales_copy(self):
        jobs = _stub_trace()
        assert rescale_trace(jobs) == jobs

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            rescale_trace(_stub_trace(), time_scale=0.0)


class TestTruncateAndClip:
    def test_truncate_keeps_first_n_in_submit_order(self):
        jobs = list(reversed(_stub_trace()))
        kept = truncate_trace(jobs, 2)
        assert [j.job_id for j in kept] == [1, 2]

    def test_truncate_none_keeps_all(self):
        assert len(truncate_trace(_stub_trace(), None)) == 3

    def test_truncate_zero_rejected(self):
        with pytest.raises(WorkloadError):
            truncate_trace(_stub_trace(), 0)

    def test_clip_drops_beyond_horizon(self):
        kept = clip_trace(_stub_trace(), 100.0)
        assert [j.job_id for j in kept] == [1, 2]


class TestLoop:
    def test_loops_fill_horizon_with_unique_ids(self):
        looped = loop_trace(_stub_trace(), horizon=500.0)
        ids = [j.job_id for j in looped]
        assert len(ids) == len(set(ids))
        assert len(looped) > 3
        assert all(j.submit_time < 500.0 for j in looped)
        submits = [j.submit_time for j in looped]
        assert submits == sorted(submits)

    def test_single_job_trace_repeats_at_its_runtime(self):
        looped = loop_trace([TraceJob(1, 0.0, 10.0, 1, 20.0)], 25.0)
        assert [job.submit_time for job in looped] == [0.0, 10.0, 20.0]

    def test_zero_span_burst_does_not_flood(self):
        burst = [
            TraceJob(i + 1, 0.0, 600.0, 1, 1200.0) for i in range(5)
        ]
        looped = loop_trace(burst, horizon=4 * 3600.0)
        # One batch per longest-runtime period, not one per second.
        assert len(looped) == 5 * 24

    def test_zero_based_ids_stay_unique_across_generations(self):
        jobs = [
            TraceJob(7, 0.0, 10.0, 1, 20.0),
            TraceJob(8, 30.0, 10.0, 1, 20.0),
        ]
        looped = loop_trace(jobs, horizon=200.0)
        ids = [job.job_id for job in looped]
        assert len(looped) > 2
        assert len(ids) == len(set(ids))

    def test_empty_or_zero_horizon(self):
        assert loop_trace([], 100.0) == []
        assert loop_trace(_stub_trace(), 0.0) == []

    def test_explicit_period_respected(self):
        looped = loop_trace(_stub_trace(), horizon=400.0, period=200.0)
        second_pass = [j for j in looped if j.submit_time >= 200.0]
        assert [j.submit_time for j in second_pass[:3]] == [
            200.0,
            260.0,
            320.0,
        ]


class TestJitter:
    def test_zero_sigma_is_identity(self):
        jobs = _stub_trace()
        assert jitter_trace(jobs, np.random.default_rng(0), 0.0) == jobs

    def test_jitter_is_deterministic_per_seed(self):
        jobs = _stub_trace()
        a = jitter_trace(jobs, np.random.default_rng(7), 30.0)
        b = jitter_trace(jobs, np.random.default_rng(7), 30.0)
        assert a == b

    def test_jitter_never_goes_negative_and_stays_sorted(self):
        jobs = _stub_trace()
        jittered = jitter_trace(jobs, np.random.default_rng(3), 500.0)
        submits = [j.submit_time for j in jittered]
        assert all(s >= 0.0 for s in submits)
        assert submits == sorted(submits)

    def test_negative_sigma_rejected(self):
        with pytest.raises(WorkloadError):
            jitter_trace(_stub_trace(), np.random.default_rng(0), -1.0)
