"""Tests for SWF trace synthesis and (de)serialisation."""

import io

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.swf import (
    TraceJob,
    read_swf,
    synthesise_trace,
    write_swf,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestTraceJob:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceJob(1, 0.0, -5.0, 1, 10.0)
        with pytest.raises(WorkloadError):
            TraceJob(1, 0.0, 5.0, 0, 10.0)
        with pytest.raises(WorkloadError):
            TraceJob(1, 0.0, 5.0, 1, 0.0)


class TestSynthesis:
    def test_job_count(self, rng):
        jobs = synthesise_trace(rng, job_count=50)
        assert len(jobs) == 50

    def test_submit_times_increasing(self, rng):
        jobs = synthesise_trace(rng, job_count=50)
        submits = [job.submit_time for job in jobs]
        assert submits == sorted(submits)

    def test_walltime_overestimates_runtime(self, rng):
        jobs = synthesise_trace(rng, job_count=30,
                                walltime_overestimate=2.0)
        for job in jobs:
            assert job.requested_walltime == pytest.approx(
                2.0 * job.runtime
            )

    def test_users_drawn_from_pool(self, rng):
        jobs = synthesise_trace(rng, job_count=100, user_count=4)
        users = {job.user for job in jobs}
        assert users <= {f"user{i}" for i in range(4)}
        assert len(users) > 1

    def test_deterministic_for_seed(self):
        a = synthesise_trace(np.random.default_rng(5), job_count=20)
        b = synthesise_trace(np.random.default_rng(5), job_count=20)
        assert [(j.submit_time, j.runtime) for j in a] == [
            (j.submit_time, j.runtime) for j in b
        ]

    def test_negative_count_rejected(self, rng):
        with pytest.raises(WorkloadError):
            synthesise_trace(rng, job_count=-1)


class TestRoundTrip:
    def test_write_read_preserves_fields(self, rng, tmp_path):
        jobs = synthesise_trace(rng, job_count=20)
        path = str(tmp_path / "trace.swf")
        write_swf(jobs, path)
        loaded = read_swf(path)
        assert len(loaded) == 20
        for original, parsed in zip(jobs, loaded):
            assert parsed.job_id == original.job_id
            assert parsed.nodes == original.nodes
            assert parsed.submit_time == pytest.approx(
                original.submit_time, abs=1.0
            )
            assert parsed.runtime == pytest.approx(
                original.runtime, abs=1.0
            )
            assert parsed.user == original.user

    def test_read_from_file_object(self, rng):
        jobs = synthesise_trace(rng, job_count=5)
        buffer = io.StringIO()
        write_swf(jobs, buffer)
        buffer.seek(0)
        assert len(read_swf(buffer)) == 5

    def test_read_from_literal_text(self):
        text = (
            "; comment line\n"
            "1 100 -1 3600 8 -1 -1 -1 7200 -1 -1 2 -1 -1 -1 -1 -1 -1\n"
        )
        jobs = read_swf(text)
        assert len(jobs) == 1
        assert jobs[0].nodes == 8
        assert jobs[0].user == "user2"

    def test_cancelled_jobs_skipped(self):
        text = "1 100 -1 -1 8 -1 -1 -1 7200 -1 -1 2 -1 -1 -1 -1 -1 -1\n"
        assert read_swf(text) == []

    def test_short_line_rejected(self):
        with pytest.raises(WorkloadError):
            read_swf("1 2 3\n")

    def test_garbage_field_rejected(self):
        text = "x 100 -1 10 8 -1 -1 -1 7200 -1 -1 2 -1 -1 -1 -1 -1 -1\n"
        with pytest.raises(WorkloadError):
            read_swf(text)
