"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    DiurnalArrivals,
    PoissonArrivals,
    TraceArrivals,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestPoisson:
    def test_rate_property(self):
        assert PoissonArrivals(10.0).rate == pytest.approx(0.1)

    def test_all_within_horizon(self, rng):
        times = list(PoissonArrivals(5.0).times(rng, horizon=1000.0))
        assert all(0.0 <= t < 1000.0 for t in times)

    def test_strictly_increasing(self, rng):
        times = list(PoissonArrivals(5.0).times(rng, horizon=1000.0))
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_count_matches_rate(self, rng):
        times = list(PoissonArrivals(10.0).times(rng, horizon=100000.0))
        assert len(times) == pytest.approx(10000, rel=0.05)

    def test_start_offset(self, rng):
        times = list(
            PoissonArrivals(5.0).times(rng, horizon=100.0, start=500.0)
        )
        assert all(500.0 <= t < 600.0 for t in times)

    def test_invalid_interarrival(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)


class TestDiurnal:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(10.0, amplitude=1.5)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(10.0, period=0.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(0.0)

    def test_rate_modulation(self):
        arrivals = DiurnalArrivals(10.0, amplitude=0.5, period=100.0)
        peak = arrivals.instantaneous_rate(25.0)  # sin peak
        trough = arrivals.instantaneous_rate(75.0)  # sin trough
        assert peak == pytest.approx(0.15)
        assert trough == pytest.approx(0.05)

    def test_mean_rate_preserved(self, rng):
        arrivals = DiurnalArrivals(10.0, amplitude=0.8, period=1000.0)
        times = list(arrivals.times(rng, horizon=100000.0))
        # Over many periods the average rate is the base rate.
        assert len(times) == pytest.approx(10000, rel=0.05)

    def test_bursts_concentrate_in_peak(self, rng):
        arrivals = DiurnalArrivals(10.0, amplitude=0.9, period=1000.0)
        times = list(arrivals.times(rng, horizon=100000.0))
        in_peak_half = sum(1 for t in times if (t % 1000.0) < 500.0)
        # The sin-positive half-period carries well over half the mass.
        assert in_peak_half / len(times) > 0.6

    def test_all_within_horizon(self, rng):
        arrivals = DiurnalArrivals(5.0)
        times = list(arrivals.times(rng, horizon=500.0))
        assert all(0.0 <= t < 500.0 for t in times)


class TestTraceArrivals:
    def test_replays_sorted_within_horizon(self):
        arrivals = TraceArrivals([30.0, 10.0, 90.0])
        assert list(arrivals.times(None, horizon=60.0)) == [10.0, 30.0]

    def test_rng_is_ignored(self, rng):
        arrivals = TraceArrivals([5.0, 15.0])
        assert list(arrivals.times(rng, 100.0)) == list(
            arrivals.times(None, 100.0)
        )

    def test_start_offset_shifts_times(self):
        arrivals = TraceArrivals([5.0, 15.0, 40.0])
        assert list(arrivals.times(None, horizon=20.0, start=100.0)) == [
            105.0,
            115.0,
        ]

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([-1.0])

    def test_empty_trace_yields_nothing(self):
        assert list(TraceArrivals([]).times(None, 100.0)) == []
