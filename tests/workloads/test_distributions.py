"""Tests for the workload sampling distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    BoundedPareto,
    Constant,
    Exponential,
    LogUniform,
    PowerOfTwoNodes,
    Uniform,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestConstant:
    def test_always_same(self, rng):
        dist = Constant(5.0)
        assert all(dist.sample(rng) == 5.0 for _ in range(10))
        assert dist.mean() == 5.0


class TestUniform:
    def test_in_range(self, rng):
        dist = Uniform(2.0, 4.0)
        samples = [dist.sample(rng) for _ in range(200)]
        assert all(2.0 <= s <= 4.0 for s in samples)

    def test_mean(self):
        assert Uniform(0.0, 10.0).mean() == 5.0

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            Uniform(4.0, 2.0)


class TestLogUniform:
    def test_in_range(self, rng):
        dist = LogUniform(1.0, 1000.0)
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(1.0 <= s <= 1000.0 for s in samples)

    def test_covers_decades(self, rng):
        dist = LogUniform(1.0, 1000.0)
        samples = [dist.sample(rng) for _ in range(2000)]
        below_10 = sum(1 for s in samples if s < 10.0)
        above_100 = sum(1 for s in samples if s > 100.0)
        # Log-uniform: each decade gets roughly a third of the mass.
        assert 0.2 < below_10 / len(samples) < 0.5
        assert 0.2 < above_100 / len(samples) < 0.5

    def test_closed_form_mean_matches_empirical(self, rng):
        dist = LogUniform(10.0, 100.0)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.05)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            LogUniform(0.0, 10.0)

    def test_degenerate_mean(self):
        assert LogUniform(5.0, 5.0).mean() == 5.0


class TestExponential:
    def test_mean_matches(self, rng):
        dist = Exponential(100.0)
        samples = [dist.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.05)

    def test_invalid_mean(self):
        with pytest.raises(ConfigurationError):
            Exponential(0.0)


class TestBoundedPareto:
    def test_in_range(self, rng):
        dist = BoundedPareto(1.0, 100.0, alpha=1.5)
        samples = [dist.sample(rng) for _ in range(1000)]
        assert all(1.0 <= s <= 100.0 for s in samples)

    def test_heavy_tail_shape(self, rng):
        dist = BoundedPareto(1.0, 1000.0, alpha=1.0)
        samples = [dist.sample(rng) for _ in range(5000)]
        # Most mass near the low end, but the tail is populated.
        assert np.median(samples) < 5.0
        assert max(samples) > 100.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedPareto(10.0, 5.0)
        with pytest.raises(ConfigurationError):
            BoundedPareto(1.0, 10.0, alpha=0.0)

    @given(
        low=st.floats(min_value=0.5, max_value=10.0),
        span=st.floats(min_value=1.5, max_value=100.0),
        alpha=st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_samples_always_within_bounds(self, low, span, alpha):
        dist = BoundedPareto(low, low * span, alpha=alpha)
        rng = np.random.default_rng(0)
        for _ in range(50):
            sample = dist.sample(rng)
            assert low <= sample <= low * span


class TestPowerOfTwoNodes:
    def test_only_powers_of_two(self, rng):
        dist = PowerOfTwoNodes(2, 32)
        samples = {int(dist.sample(rng)) for _ in range(500)}
        assert samples <= {2, 4, 8, 16, 32}

    def test_bounds_respected(self, rng):
        dist = PowerOfTwoNodes(3, 10)
        samples = {int(dist.sample(rng)) for _ in range(200)}
        assert samples <= {4, 8}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerOfTwoNodes(0, 4)

    def test_narrow_range_fallback(self, rng):
        dist = PowerOfTwoNodes(5, 7)
        assert int(dist.sample(rng)) == 5
