"""Tests for the hybrid-app generator and submission drivers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.quantum.technology import SUPERCONDUCTING
from repro.scheduler.job import JobState
from repro.strategies.application import PhaseKind
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.envs import make_environment
from repro.workloads.generator import CampaignDriver, submit_trace
from repro.workloads.hybrid import HybridAppConfig, HybridAppGenerator
from repro.workloads.swf import TraceJob, synthesise_trace


@pytest.fixture
def rng():
    return np.random.default_rng(9)


class TestHybridAppGenerator:
    def test_generates_valid_apps(self, rng):
        generator = HybridAppGenerator(rng)
        apps = generator.apps(10)
        assert len(apps) == 10
        for app in apps:
            assert app.phases[0].kind == PhaseKind.CLASSICAL
            assert app.quantum_phase_count >= 1
            assert 1 <= app.min_classical_nodes <= app.classical_nodes

    def test_iteration_bounds(self, rng):
        config = HybridAppConfig(iterations_low=3, iterations_high=3)
        generator = HybridAppGenerator(rng, config)
        for app in generator.apps(5):
            assert app.quantum_phase_count == 3

    def test_geometries_from_pool(self, rng):
        config = HybridAppConfig(geometry_pool=("only",))
        generator = HybridAppGenerator(rng, config)
        app = generator.next_app()
        geometries = {
            phase.circuit.geometry
            for phase in app.phases
            if phase.is_quantum
        }
        assert geometries == {"only"}

    def test_qubits_clamped_to_device(self, rng):
        generator = HybridAppGenerator(rng, max_qubits=5)
        for app in generator.apps(10):
            for phase in app.phases:
                if phase.is_quantum:
                    assert phase.circuit.num_qubits <= 5

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            HybridAppConfig(iterations_low=5, iterations_high=2)
        with pytest.raises(ConfigurationError):
            HybridAppConfig(geometry_pool=())
        with pytest.raises(ConfigurationError):
            HybridAppConfig(min_nodes_fraction=0.0)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            HybridAppGenerator(rng).apps(-1)

    def test_unique_names(self, rng):
        generator = HybridAppGenerator(rng)
        names = [app.name for app in generator.apps(20)]
        assert len(set(names)) == 20

    def test_fleet_clamps_to_largest_register(self, rng):
        from repro.quantum.fleet import QPUFleet
        from repro.quantum.qpu import QPU
        from repro.quantum.technology import TRAPPED_ION
        from repro.sim.kernel import Kernel

        kernel = Kernel()
        fleet = QPUFleet(
            [
                QPU(kernel, TRAPPED_ION, name="ti0"),  # 32 qubits
                QPU(kernel, SUPERCONDUCTING, name="sc0"),  # 127
            ]
        )
        generator = HybridAppGenerator(rng, fleet=fleet)
        assert generator.max_qubits == 127

    def test_explicit_max_qubits_beats_fleet(self, rng):
        from repro.quantum.fleet import QPUFleet
        from repro.quantum.qpu import QPU
        from repro.sim.kernel import Kernel

        kernel = Kernel()
        fleet = QPUFleet([QPU(kernel, SUPERCONDUCTING, name="sc0")])
        generator = HybridAppGenerator(rng, max_qubits=5, fleet=fleet)
        assert generator.max_qubits == 5


class TestTraceKernelPayload:
    def test_deterministic_and_seed_independent(self):
        from repro.workloads.hybrid import trace_kernel_payload

        first = trace_kernel_payload(42, max_qubits=127)
        second = trace_kernel_payload(42, max_qubits=127)
        assert first == second

    def test_distinct_jobs_get_distinct_payloads(self):
        from repro.workloads.hybrid import trace_kernel_payload

        payloads = {
            trace_kernel_payload(job_id, max_qubits=127)
            for job_id in range(20)
        }
        assert len(payloads) > 1

    def test_width_clamped_to_fleet_register(self):
        from repro.workloads.hybrid import trace_kernel_payload

        for job_id in range(30):
            circuit, shots = trace_kernel_payload(job_id, max_qubits=6)
            assert 1 <= circuit.num_qubits <= 6
            assert shots >= 1


class TestSubmitTrace:
    def test_jobs_submitted_at_trace_times(self):
        env = make_environment(classical_nodes=64, seed=0)
        trace = [
            TraceJob(1, 10.0, 20.0, 2, 100.0),
            TraceJob(2, 50.0, 20.0, 2, 100.0),
        ]
        jobs = submit_trace(env, trace)
        env.kernel.run(until=200.0)
        assert len(jobs) == 2
        assert jobs[0].submit_time == 10.0
        assert jobs[1].submit_time == 50.0
        assert all(job.state == JobState.COMPLETED for job in jobs)

    def test_synthetic_trace_replay_completes(self, rng):
        env = make_environment(classical_nodes=64, seed=0)
        trace = synthesise_trace(
            rng, job_count=20, mean_interarrival=50.0
        )
        jobs = submit_trace(env, trace)
        env.kernel.run()
        done = sum(1 for job in jobs if job.state == JobState.COMPLETED)
        assert done == 20


class TestCampaignDriver:
    def test_collects_all_records(self):
        from repro.quantum.circuit import Circuit
        from repro.strategies.application import vqe_like

        env = make_environment(classical_nodes=16, seed=0)
        driver = CampaignDriver(env, CoScheduleStrategy())
        apps = [
            vqe_like(2, 50.0, Circuit(5, 10), classical_nodes=2)
            for _ in range(3)
        ]
        driver.launch_all(apps)
        records = driver.collect()
        assert len(records) == 3
        assert all(record.end_time is not None for record in records)

    def test_staggered_submissions(self):
        from repro.quantum.circuit import Circuit
        from repro.strategies.application import vqe_like

        env = make_environment(classical_nodes=16, seed=0)
        driver = CampaignDriver(env, CoScheduleStrategy())
        apps = [
            vqe_like(1, 50.0, Circuit(5, 10), classical_nodes=2)
            for _ in range(2)
        ]
        driver.launch_all(apps, submit_times=[100.0, 200.0])
        records = driver.collect()
        assert records[0].submit_time == 100.0
        assert records[1].submit_time == 200.0

    def test_mismatched_submit_times_rejected(self):
        from repro.quantum.circuit import Circuit
        from repro.strategies.application import vqe_like

        env = make_environment(seed=0)
        driver = CampaignDriver(env, CoScheduleStrategy())
        with pytest.raises(ValueError):
            driver.launch_all(
                [vqe_like(1, 10.0, Circuit(4, 5))], submit_times=[1.0, 2.0]
            )
