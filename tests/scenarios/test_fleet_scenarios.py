"""Heterogeneous fleets through the scenario layer.

Covers the `FleetSpec.devices` extension end to end: spec validation
and canonicalisation, shorthand/devices build equivalence, the
`mixed-fleet` preset, fleet-routed hybrid trace jobs, per-device run
metrics, and the serial-vs-parallel byte-identity guarantee for
fleet-backed sweep points.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweep import canonical_bytes, run_sweep
from repro.quantum.fleet import ROUTING_POLICIES
from repro.scenarios import (
    DeviceSpec,
    FleetSpec,
    ScenarioSpec,
    build,
    fleet_device_rows,
    get_scenario,
    run_scenario,
    run_scenario_point,
    scenario_sweep_spec,
    with_overrides,
)


class TestDeviceSpecValidation:
    def test_unknown_technology_rejected(self):
        with pytest.raises(ConfigurationError, match="technology"):
            DeviceSpec(technology="abacus").validate()

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigurationError, match="count"):
            DeviceSpec(technology="photonic", count=0).validate()

    def test_zero_vqpus_rejected(self):
        with pytest.raises(ConfigurationError, match="vqpus"):
            DeviceSpec(
                technology="photonic", vqpus_per_qpu=0
            ).validate()

    def test_empty_name_prefix_rejected(self):
        with pytest.raises(ConfigurationError, match="prefix"):
            DeviceSpec(technology="photonic", name="").validate()


class TestFleetSpecValidation:
    def test_unknown_routing_rejected(self):
        with pytest.raises(ConfigurationError, match="routing"):
            FleetSpec(routing="psychic").validate()

    def test_routing_validated_against_fleet_policies(self):
        for policy in ROUTING_POLICIES:
            FleetSpec(routing=policy).validate()

    def test_devices_with_default_flat_fields_accepted(self):
        FleetSpec(devices=(DeviceSpec("trapped_ion"),)).validate()

    @pytest.mark.parametrize(
        "flat",
        [
            {"technology": "photonic"},
            {"qpu_count": 2},
            {"vqpus_per_qpu": 4},
        ],
    )
    def test_contradictory_flat_fields_rejected(self, flat):
        spec = FleetSpec(devices=(DeviceSpec("trapped_ion"),), **flat)
        with pytest.raises(
            ConfigurationError, match="mutually exclusive"
        ):
            spec.validate()

    def test_contradiction_error_names_the_flat_field(self):
        spec = FleetSpec(qpu_count=3, devices=(DeviceSpec("photonic"),))
        with pytest.raises(
            ConfigurationError, match="fleet.qpu_count=3"
        ):
            spec.validate()

    def test_nested_device_validation_runs(self):
        spec = FleetSpec(devices=(DeviceSpec("abacus"),))
        with pytest.raises(ConfigurationError, match="abacus"):
            spec.validate()


class TestCanonicalisation:
    def test_flat_shorthand_canonicalises_to_one_group(self):
        flat = FleetSpec(
            technology="trapped_ion", qpu_count=3, vqpus_per_qpu=2
        )
        (group,) = flat.canonical_devices()
        assert group == DeviceSpec(
            technology="trapped_ion", count=3, vqpus_per_qpu=2
        )

    def test_explicit_devices_pass_through(self):
        devices = (DeviceSpec("photonic"), DeviceSpec("annealer"))
        assert FleetSpec(devices=devices).canonical_devices() == devices

    def test_device_count_and_heterogeneity(self):
        flat = FleetSpec(qpu_count=4)
        assert flat.device_count() == 4
        assert not flat.is_heterogeneous()
        mixed = FleetSpec(
            devices=(
                DeviceSpec("superconducting", count=2),
                DeviceSpec("neutral_atom"),
            )
        )
        assert mixed.device_count() == 3
        assert mixed.is_heterogeneous()

    def test_shorthand_and_devices_forms_build_identically(self):
        flat = ScenarioSpec(
            fleet=FleetSpec(
                technology="trapped_ion", qpu_count=2, vqpus_per_qpu=2
            )
        )
        explicit = ScenarioSpec(
            fleet=FleetSpec(
                devices=(
                    DeviceSpec(
                        "trapped_ion", count=2, vqpus_per_qpu=2
                    ),
                )
            )
        )
        a, b = build(flat), build(explicit)
        assert [q.name for q in a.qpus] == [q.name for q in b.qpus]
        assert [p.qpu.name for p in a.vqpu_pools] == [
            p.qpu.name for p in b.vqpu_pools
        ]
        assert [
            n.name for n in a.cluster.partition("quantum").nodes
        ] == [n.name for n in b.cluster.partition("quantum").nodes]

    def test_run_metrics_identical_across_forms(self):
        flat = ScenarioSpec(
            name="forms",
            fleet=FleetSpec(qpu_count=2),
        )
        explicit = ScenarioSpec(
            name="forms",
            fleet=FleetSpec(
                devices=(DeviceSpec("superconducting", count=2),)
            ),
        )
        assert canonical_bytes(
            run_scenario(flat, horizon=900.0)
        ) == canonical_bytes(run_scenario(explicit, horizon=900.0))


class TestDeviceRows:
    def test_rows_match_build_order_and_names(self):
        fleet = FleetSpec(
            devices=(
                DeviceSpec("superconducting", count=2),
                DeviceSpec("superconducting", name="legacy"),
                DeviceSpec("neutral_atom", vqpus_per_qpu=4),
            )
        )
        rows = fleet_device_rows(fleet)
        assert [row["name"] for row in rows] == [
            "superconducting-0",
            "superconducting-1",
            "legacy-0",
            "neutral_atom-0",
        ]
        env = build(ScenarioSpec(fleet=fleet))
        assert [q.name for q in env.qpus] == [r["name"] for r in rows]
        assert rows[3]["vqpus"] == 4 and rows[3]["qubits"] == 256

    def test_shared_prefix_indices_continue_across_groups(self):
        fleet = FleetSpec(
            devices=(
                DeviceSpec("superconducting", count=2),
                DeviceSpec("superconducting", count=1),
            )
        )
        names = [row["name"] for row in fleet_device_rows(fleet)]
        assert names == [
            "superconducting-0",
            "superconducting-1",
            "superconducting-2",
        ]


class TestHeterogeneousBuild:
    def test_fleet_installed_on_environment(self):
        env = build(get_scenario("baseline-32"))
        assert env.fleet is not None
        assert env.fleet.policy == "fastest_completion"
        assert env.fleet.qpus == env.qpus

    def test_mixed_fleet_preset_builds_all_technologies(self):
        env = build(get_scenario("mixed-fleet"))
        assert [q.name for q in env.qpus] == [
            "superconducting-0",
            "superconducting-1",
            "trapped_ion-0",
            "neutral_atom-0",
        ]
        assert len(env.cluster.partition("quantum").nodes) == 4

    def test_per_group_virtualisation(self):
        env = build(
            ScenarioSpec(
                fleet=FleetSpec(
                    devices=(
                        DeviceSpec("superconducting", vqpus_per_qpu=4),
                        DeviceSpec("trapped_ion"),
                    )
                )
            )
        )
        assert len(env.vqpu_pools) == 1
        assert env.vqpu_pools[0].qpu.name == "superconducting-0"
        # 4 virtual units + 1 direct device = 5 gres-backed nodes.
        assert len(env.cluster.partition("quantum").nodes) == 5

    def test_routing_override_reaches_the_fleet(self):
        spec = with_overrides(
            get_scenario("mixed-fleet"), {"fleet.routing": "round_robin"}
        )
        assert build(spec).fleet.policy == "round_robin"

    def test_maintenance_targets_mixed_fleet_device_names(self):
        env = build(get_scenario("mixed-fleet"))
        sc1 = env.qpus[1]
        assert sc1.name == "superconducting-1"
        assert sc1.pending_maintenance == [(3600.0, 1800.0)]


class TestFleetRunMetrics:
    def test_mixed_fleet_run_reports_per_device_metrics(self):
        metrics = run_scenario(get_scenario("mixed-fleet"), horizon=3600.0)
        assert metrics["fleet_policy"] == "fastest_completion"
        for device in (
            "superconducting-0",
            "superconducting-1",
            "trapped_ion-0",
            "neutral_atom-0",
        ):
            assert f"device_{device}_routed" in metrics
            assert f"device_{device}_executed" in metrics
            assert f"device_{device}_utilisation" in metrics
        # The trace's qpu_fraction routes kernel payloads through the
        # fleet: something must actually have been dispatched.
        assert metrics["fleet_routed_total"] > 0
        assert metrics["fleet_routed_total"] == sum(
            metrics[f"device_{d}_routed"]
            for d in (
                "superconducting-0",
                "superconducting-1",
                "trapped_ion-0",
                "neutral_atom-0",
            )
        )

    def test_eft_routing_prefers_fast_devices(self):
        metrics = run_scenario(get_scenario("mixed-fleet"), horizon=3600.0)
        fast = (
            metrics["device_superconducting-0_routed"]
            + metrics["device_superconducting-1_routed"]
        )
        slow = metrics["device_neutral_atom-0_routed"]
        assert fast > slow

    def test_fleet_routed_kernels_busy_the_devices(self):
        metrics = run_scenario(get_scenario("mixed-fleet"), horizon=3600.0)
        executed = sum(
            value
            for key, value in metrics.items()
            if key.endswith("_executed")
        )
        assert executed > 0

    def test_homogeneous_presets_report_zero_routed(self):
        metrics = run_scenario(get_scenario("baseline-32"), horizon=900.0)
        assert metrics["fleet_routed_total"] == 0
        assert metrics["device_superconducting-0_routed"] == 0

    def test_vqpu_leases_keep_admission_control(self):
        """A trace job holding a *virtual* QPU lease dispatches its
        payload through the lease, not the fleet router, so the
        pool's V-1 admission bound survives trace replay."""
        from repro.scenarios import ScenarioSpec, TraceJobSpec
        from repro.scenarios.spec import (
            FleetSpec as FS,
            TraceSpec,
            WorkloadSpec,
        )

        spec = ScenarioSpec(
            name="vqpu-trace",
            fleet=FS(vqpus_per_qpu=4),
            workload=WorkloadSpec(
                horizon=3600.0,
                trace=TraceSpec(
                    jobs=(
                        TraceJobSpec(1, 0.0, 300.0, 1, 600.0),
                        TraceJobSpec(2, 60.0, 300.0, 1, 600.0),
                    ),
                    qpu_fraction=1.0,
                ),
            ),
        )
        env = build(spec)
        from repro.scenarios.build import install_trace

        jobs = install_trace(env, spec.workload, 3600.0)
        env.kernel.run(until=3600.0)
        assert len(jobs) == 2
        # Kernels went through the pool (device executed them), and
        # the fleet router was bypassed.
        assert env.fleet.total_routed == 0
        assert env.vqpu_pools[0].total_requests == 2
        assert env.qpus[0].jobs_executed == 2


class TestFleetSweeps:
    def test_routing_axis_serial_vs_parallel_byte_identical(self):
        """The acceptance guarantee: a fleet.routing sweep over the
        mixed-fleet preset is byte-identical serial vs parallel."""
        spec = scenario_sweep_spec(
            "mixed-fleet",
            {"fleet.routing": ["capability", "fastest_completion"]},
            run_horizon=1800.0,
        )
        serial = run_sweep(spec, run_scenario_point, workers=1)
        parallel = run_sweep(spec, run_scenario_point, workers=2)
        assert canonical_bytes(serial.values) == canonical_bytes(
            parallel.values
        )
        first, second = serial.values
        assert first["fleet_policy"] == "capability"
        assert second["fleet_policy"] == "fastest_completion"

    def test_device_group_axis_changes_the_facility(self):
        # Not [1, ...]: the preset books maintenance on
        # superconducting-1, so that device must keep existing.
        spec = scenario_sweep_spec(
            "mixed-fleet",
            {"fleet.devices.0.count": [2, 3]},
            run_horizon=600.0,
        )
        small, large = run_sweep(
            spec, run_scenario_point, workers=1
        ).values
        assert "device_superconducting-2_routed" in large
        assert "device_superconducting-2_routed" not in small

    def test_bad_device_index_rejected(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            with_overrides(
                get_scenario("mixed-fleet"),
                {"fleet.devices.9.count": 2},
            )

    def test_non_numeric_list_segment_names_the_mistake(self):
        with pytest.raises(
            ConfigurationError, match="expected a list index"
        ):
            with_overrides(
                get_scenario("mixed-fleet"),
                {"fleet.devices.first.count": 2},
            )
