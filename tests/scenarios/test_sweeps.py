"""Scenario sweeps: dotted-path axes through the parallel sweep engine."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweep import canonical_bytes, run_sweep
from repro.scenarios import (
    point_scenario,
    run_scenario_point,
    scenario_sweep_spec,
)


class TestPointScenario:
    def test_preset_plus_dotted_overrides(self):
        spec = point_scenario(
            {"preset": "baseline-32", "topology.classical_nodes": 64}
        )
        assert spec.name == "baseline-32"
        assert spec.topology.classical_nodes == 64

    def test_inline_scenario_dict(self):
        spec = point_scenario(
            {
                "scenario": {"name": "inline", "seed": 3},
                "fleet.vqpus_per_qpu": 2,
            }
        )
        assert spec.name == "inline"
        assert spec.fleet.vqpus_per_qpu == 2

    def test_defaults_without_preset(self):
        assert point_scenario({}).name == "custom"

    def test_run_horizon_key_is_not_an_override(self):
        spec = point_scenario({"preset": "baseline-32", "run_horizon": 60.0})
        assert spec.name == "baseline-32"

    def test_bad_path_propagates(self):
        with pytest.raises(ConfigurationError):
            point_scenario({"preset": "baseline-32", "topology.warp": 1})


class TestScenarioSweep:
    def test_axes_are_dotted_paths(self):
        spec = scenario_sweep_spec(
            "baseline-32",
            {"topology.classical_nodes": [16, 32, 64]},
            run_horizon=600.0,
        )
        assert len(spec) == 3
        points = spec.points()
        assert [
            p.params["topology.classical_nodes"] for p in points
        ] == [16, 32, 64]
        assert all(p.params["preset"] == "baseline-32" for p in points)

    def test_serial_vs_parallel_byte_identical(self):
        spec = scenario_sweep_spec(
            "baseline-32",
            {"topology.classical_nodes": [16, 64]},
            run_horizon=900.0,
        )
        serial = run_sweep(spec, run_scenario_point, workers=1)
        parallel = run_sweep(spec, run_scenario_point, workers=2)
        assert canonical_bytes(serial.values) == canonical_bytes(
            parallel.values
        )

    def test_trace_axis_serial_vs_parallel_byte_identical(self):
        """The acceptance guarantee: trace-backed sweep points are
        byte-identical serial vs parallel, and a dotted-path axis on a
        trace-rescale field really perturbs the replay."""
        spec = scenario_sweep_spec(
            "trace-replay",
            {"workload.trace.time_scale": [1.0, 0.5]},
            run_horizon=7200.0,
        )
        serial = run_sweep(spec, run_scenario_point, workers=1)
        parallel = run_sweep(spec, run_scenario_point, workers=2)
        assert canonical_bytes(serial.values) == canonical_bytes(
            parallel.values
        )
        slow, fast = serial.values
        # Compressing arrivals (0.5) packs the same work into half the
        # time: waits cannot get shorter.
        assert (
            fast["trace_mean_wait_s"] >= slow["trace_mean_wait_s"]
        )

    def test_axis_actually_changes_the_facility(self):
        spec = scenario_sweep_spec(
            "baseline-32",
            {"topology.classical_nodes": [16, 64]},
            run_horizon=900.0,
        )
        small, large = run_sweep(
            spec, run_scenario_point, workers=1
        ).values
        # Same offered absolute workload spec, kept-constant rho means
        # per-partition utilisation stays in a sane band but the node
        # state census reflects the axis.
        assert sum(small["node_states"].values()) == 16 + 1
        assert sum(large["node_states"].values()) == 64 + 1
