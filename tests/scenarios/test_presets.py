"""Every registered preset is serialisable, buildable and rebuildable."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ScenarioSpec,
    build,
    get_scenario,
    list_scenarios,
    register_scenario,
)

#: The presets ISSUEs 3 and 4 promise, at minimum.
_PROMISED = {
    "baseline-32",
    "multitenant-vqpu",
    "failure-storm",
    "bursty-campaign",
    "large-1k",
    "trace-replay",
}


class TestRegistry:
    def test_at_least_five_presets(self):
        assert len(list_scenarios()) >= 5

    def test_promised_presets_registered(self):
        assert _PROMISED <= set(list_scenarios())

    def test_every_preset_has_a_description(self):
        for name in list_scenarios():
            assert get_scenario(name).description

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scenario(get_scenario("baseline-32"))

    def test_replace_allows_re_registration(self):
        spec = get_scenario("baseline-32")
        assert register_scenario(spec, replace=True) == spec


class TestTraceReplayPreset:
    def test_backed_by_packaged_sample(self):
        from repro.scenarios import resolve_trace_path, run_scenario

        spec = get_scenario("trace-replay")
        assert spec.workload.trace is not None
        assert resolve_trace_path(spec.workload.trace.path).is_file()
        metrics = run_scenario(spec, horizon=1800.0)
        assert metrics["trace_jobs"] > 0


@pytest.mark.parametrize(
    "name", sorted(_PROMISED | {"neutral-atom-hours", "mixed-fleet"})
)
class TestPresetRoundTrip:
    def test_dict_and_json_round_trip(self, name):
        spec = get_scenario(name)
        via_dict = ScenarioSpec.from_dict(spec.to_dict())
        via_json = ScenarioSpec.from_json(
            json.dumps(json.loads(spec.to_json()))
        )
        assert via_dict == spec
        assert via_json == spec

    def test_round_tripped_spec_rebuilds_equivalent_environment(self, name):
        spec = get_scenario(name)
        original = build(spec)
        rebuilt = build(ScenarioSpec.from_json(spec.to_json()))
        # Same partitions...
        assert sorted(original.cluster.partitions) == sorted(
            rebuilt.cluster.partitions
        )
        for pname, partition in original.cluster.partitions.items():
            twin = rebuilt.cluster.partition(pname)
            assert partition.node_count == twin.node_count
            # ...same gres capacities...
            assert partition.gres_types() == twin.gres_types()
            for gres_type in partition.gres_types():
                assert partition.gres_capacity(
                    gres_type
                ) == twin.gres_capacity(gres_type)
            # ...same node names.
            assert [n.name for n in partition.nodes] == [
                n.name for n in twin.nodes
            ]
        # Same fleet (device names fix the jitter stream names).
        assert [q.name for q in original.qpus] == [
            q.name for q in rebuilt.qpus
        ]
        assert [q.technology.name for q in original.qpus] == [
            q.technology.name for q in rebuilt.qpus
        ]
        assert len(original.vqpu_pools) == len(rebuilt.vqpu_pools)
        # Same policy/scheduler shape and root random stream seed.
        assert type(original.scheduler.policy) is type(
            rebuilt.scheduler.policy
        )
        assert original.scheduler.cycle_time == rebuilt.scheduler.cycle_time
        assert original.streams.seed == rebuilt.streams.seed
