"""Tests for the build pipeline: environments, faults, workloads, runs."""

import pytest

from repro.cluster.node import NodeState
from repro.errors import ConfigurationError
from repro.quantum.technology import TRAPPED_ION
from repro.scenarios import (
    FaultSchedule,
    FleetSpec,
    NodeFault,
    QPUMaintenance,
    RandomFailures,
    ScenarioSpec,
    TopologySpec,
    TraceJobSpec,
    TraceSpec,
    WorkloadSpec,
    background_trace,
    build,
    compile_trace,
    install_trace,
    resolve_trace_path,
    run_scenario,
)
from repro.strategies.envs import environment_scenario, make_environment


class TestBuildEquivalence:
    """build(spec) and the legacy factory construct identical facilities."""

    def test_matches_make_environment(self):
        legacy = make_environment(
            classical_nodes=12,
            technology=TRAPPED_ION,
            vqpus_per_qpu=2,
            seed=4,
            scheduling_cycle=30.0,
        )
        scenario = build(
            environment_scenario(
                classical_nodes=12,
                technology=TRAPPED_ION,
                vqpus_per_qpu=2,
                seed=4,
                scheduling_cycle=30.0,
            )
        )
        assert sorted(legacy.cluster.partitions) == sorted(
            scenario.cluster.partitions
        )
        for name, partition in legacy.cluster.partitions.items():
            twin = scenario.cluster.partition(name)
            assert [n.name for n in partition.nodes] == [
                n.name for n in twin.nodes
            ]
        assert [q.name for q in legacy.qpus] == [
            q.name for q in scenario.qpus
        ]
        assert legacy.scheduler.cycle_time == scenario.scheduler.cycle_time
        assert legacy.streams.seed == scenario.streams.seed

    def test_seed_override_beats_spec_seed(self):
        env = build(ScenarioSpec(seed=3), seed=11)
        assert env.streams.seed == 11

    def test_invalid_spec_rejected_before_building(self):
        with pytest.raises(ConfigurationError):
            build(ScenarioSpec(fleet=FleetSpec(qpu_count=0)))

    def test_topology_knobs_propagate(self):
        env = build(
            ScenarioSpec(
                topology=TopologySpec(
                    classical_nodes=4,
                    cores_per_node=128,
                    classical_max_walltime=3600.0,
                )
            )
        )
        classical = env.cluster.partition("classical")
        assert classical.nodes[0].cores == 128
        assert classical.max_walltime == 3600.0

    def test_monitoring_history_opt_in(self):
        plain = build(ScenarioSpec())
        assert plain.cluster.busy_nodes["classical"].history is None
        traced = build(
            ScenarioSpec.from_dict(
                {"monitoring": {"record_history": True}}
            )
        )
        assert traced.cluster.busy_nodes["classical"].history is not None


class TestFaultInstallation:
    def test_unknown_node_rejected_at_build_time(self):
        spec = ScenarioSpec(
            faults=FaultSchedule(
                events=(
                    NodeFault(time=1.0, action="fail", node="cn9999"),
                )
            )
        )
        with pytest.raises(ConfigurationError):
            build(spec)

    def test_unknown_qpu_rejected_at_build_time(self):
        spec = ScenarioSpec(
            faults=FaultSchedule(
                maintenance=(
                    QPUMaintenance(qpu="nonesuch", start=10.0,
                                   duration=5.0),
                )
            )
        )
        with pytest.raises(ConfigurationError):
            build(spec)

    def test_maintenance_booked_on_named_device(self):
        env = build(
            ScenarioSpec(
                faults=FaultSchedule(
                    maintenance=(
                        QPUMaintenance(
                            qpu="superconducting-0",
                            start=10.0,
                            duration=5.0,
                        ),
                    )
                )
            )
        )
        from repro.quantum.circuit import Circuit

        qpu = env.primary_qpu()

        def client(kernel):
            yield kernel.timeout(20.0)  # arrive after the window opens
            yield qpu.run(Circuit(4, 10), 100)

        env.kernel.process(client(env.kernel))
        env.kernel.run()
        # The overdue window ran before the kernel was served.
        assert qpu.maintenance_performed == 1

    def test_random_failures_attach_injector(self):
        env = build(
            ScenarioSpec(
                faults=FaultSchedule(
                    random_failures=RandomFailures(
                        mtbf=50.0, mean_repair_time=5.0
                    )
                )
            )
        )
        assert len(env.fault_injectors) == 1
        env.kernel.run(until=2000.0)
        assert env.fault_injectors[0].failure_count > 0

    def test_empty_schedule_installs_nothing(self):
        env = build(ScenarioSpec())
        assert env.fault_injectors == []
        # Kernel quiesces immediately: nothing but the scheduler waits.
        env.kernel.run(until=10.0)
        assert env.kernel.now == 10.0

    def test_simultaneous_events_apply_in_declaration_order(self):
        spec = ScenarioSpec(
            topology=TopologySpec(classical_nodes=4),
            faults=FaultSchedule(
                events=(
                    NodeFault(time=5.0, action="fail", node="cn0000"),
                    NodeFault(time=5.0, action="repair", node="cn0000"),
                )
            ),
        )
        env = build(spec)
        env.kernel.run(until=6.0)
        node = env.cluster.partition("classical").nodes[0]
        assert node.state == NodeState.IDLE


class TestBackgroundTrace:
    def test_zero_rho_yields_empty_trace(self):
        env = build(ScenarioSpec())
        assert background_trace(env, WorkloadSpec()) == []

    def test_poisson_and_diurnal_differ_only_in_arrivals(self):
        poisson = background_trace(
            build(ScenarioSpec(seed=1)),
            WorkloadSpec(background_rho=0.5, horizon=7200.0),
        )
        diurnal = background_trace(
            build(ScenarioSpec(seed=1)),
            WorkloadSpec(
                background_rho=0.5,
                horizon=7200.0,
                arrivals="diurnal",
                burst_amplitude=0.9,
            ),
        )
        assert poisson and diurnal
        assert [j.submit_time for j in poisson] != [
            j.submit_time for j in diurnal
        ]

    def test_trace_is_deterministic_per_seed(self):
        workload = WorkloadSpec(background_rho=0.6, horizon=3600.0)
        first = background_trace(build(ScenarioSpec(seed=2)), workload)
        second = background_trace(build(ScenarioSpec(seed=2)), workload)
        assert [
            (j.submit_time, j.runtime, j.nodes) for j in first
        ] == [(j.submit_time, j.runtime, j.nodes) for j in second]


def _inline_trace(**kwargs) -> TraceSpec:
    defaults = dict(
        jobs=(
            TraceJobSpec(1, 0.0, 300.0, 4, 600.0),
            TraceJobSpec(2, 60.0, 600.0, 2, 1200.0),
            TraceJobSpec(3, 7200.0, 60.0, 1, 120.0),  # beyond horizon
        )
    )
    defaults.update(kwargs)
    return TraceSpec(**defaults)


class TestTraceReplay:
    def test_packaged_sample_resolves(self):
        path = resolve_trace_path("sample-32n.swf")
        assert path.is_file()

    def test_missing_trace_file_rejected_with_candidates(self):
        with pytest.raises(ConfigurationError, match="tried"):
            resolve_trace_path("no-such-trace.swf")

    def test_compile_clips_to_horizon(self):
        jobs = compile_trace(_inline_trace(), horizon=3600.0)
        assert [job.job_id for job in jobs] == [1, 2]

    def test_compile_loops_to_horizon(self):
        jobs = compile_trace(_inline_trace(loop=True), horizon=30000.0)
        assert len(jobs) > 3
        assert len({job.job_id for job in jobs}) == len(jobs)

    def test_compile_jitter_needs_rng(self):
        with pytest.raises(ConfigurationError):
            compile_trace(_inline_trace(jitter=10.0), horizon=3600.0)

    def test_trace_jobs_submitted_and_completed(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec(
                horizon=3600.0, trace=_inline_trace()
            )
        )
        metrics = run_scenario(spec)
        assert metrics["trace_jobs"] == 2
        assert metrics["trace_completed"] == 2
        assert metrics["trace_mean_wait_s"] >= 0.0
        assert metrics["trace_mean_slowdown"] >= 1.0

    def test_traceless_scenarios_report_zero(self):
        metrics = run_scenario(ScenarioSpec(), horizon=60.0)
        assert metrics["trace_jobs"] == 0
        assert metrics["trace_completed"] == 0

    def test_oversize_clamp_fits_partition(self):
        spec = ScenarioSpec(
            topology=TopologySpec(classical_nodes=2),
            workload=WorkloadSpec(
                horizon=3600.0,
                trace=TraceSpec(
                    jobs=(TraceJobSpec(1, 0.0, 60.0, 16, 120.0),)
                ),
            ),
        )
        metrics = run_scenario(spec)
        assert metrics["trace_completed"] == 1

    def test_oversize_drop_skips_job(self):
        spec = ScenarioSpec(
            topology=TopologySpec(classical_nodes=2),
            workload=WorkloadSpec(
                horizon=3600.0,
                trace=TraceSpec(
                    jobs=(
                        TraceJobSpec(1, 0.0, 60.0, 16, 120.0),
                        TraceJobSpec(2, 0.0, 60.0, 1, 120.0),
                    ),
                    oversize="drop",
                ),
            ),
        )
        metrics = run_scenario(spec)
        assert metrics["trace_jobs"] == 1

    def test_oversize_error_raises(self):
        spec = ScenarioSpec(
            topology=TopologySpec(classical_nodes=2),
            workload=WorkloadSpec(
                horizon=3600.0,
                trace=TraceSpec(
                    jobs=(TraceJobSpec(1, 0.0, 60.0, 16, 120.0),),
                    oversize="error",
                ),
            ),
        )
        with pytest.raises(ConfigurationError):
            run_scenario(spec)

    def test_qpu_fraction_routes_to_quantum_partition(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec(
                horizon=3600.0,
                trace=_inline_trace(qpu_fraction=1.0),
            )
        )
        metrics = run_scenario(spec)
        assert metrics["trace_completed"] == 2
        assert metrics["utilisation_quantum"] > 0.0
        assert metrics["utilisation_classical"] == 0.0

    def test_qpu_routing_is_seed_independent(self):
        trace = _inline_trace(qpu_fraction=0.5)
        env_a = build(ScenarioSpec(seed=1))
        env_b = build(ScenarioSpec(seed=99))
        jobs_a = install_trace(
            env_a,
            WorkloadSpec(horizon=3600.0, trace=trace),
            3600.0,
        )
        jobs_b = install_trace(
            env_b,
            WorkloadSpec(horizon=3600.0, trace=trace),
            3600.0,
        )
        env_a.kernel.run(until=3600.0)
        env_b.kernel.run(until=3600.0)
        assert [
            [c.partition for c in j.spec.components] for j in jobs_a
        ] == [[c.partition for c in j.spec.components] for j in jobs_b]

    def test_jitter_decorrelates_replications_deterministically(self):
        trace = _inline_trace(jitter=30.0)
        workload = WorkloadSpec(horizon=3600.0, trace=trace)

        def submits(seed):
            env = build(ScenarioSpec(seed=seed))
            rng = env.streams.stream("trace-jitter")
            return [
                job.submit_time
                for job in compile_trace(trace, 3600.0, rng=rng)
            ]

        assert submits(1) == submits(1)
        assert submits(1) != submits(2)

    def test_loop_with_explicit_horizon_only(self):
        """A horizonless workload loops to the run_scenario horizon."""
        spec = ScenarioSpec(
            workload=WorkloadSpec(trace=_inline_trace(loop=True))
        )
        metrics = run_scenario(spec, horizon=30000.0)
        assert metrics["trace_jobs"] > 3

    def test_trace_composes_with_background(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec(
                background_rho=0.8,
                horizon=3600.0,
                trace=_inline_trace(),
            )
        )
        metrics = run_scenario(spec)
        assert metrics["background_jobs"] > 0
        assert metrics["trace_jobs"] == 2


class TestRunScenario:
    def test_metrics_shape(self):
        metrics = run_scenario(
            ScenarioSpec(
                workload=WorkloadSpec(
                    background_rho=0.5, horizon=1800.0
                )
            )
        )
        for key in (
            "scenario",
            "seed",
            "horizon_s",
            "background_jobs",
            "utilisation_classical",
            "utilisation_quantum",
            "qpu0_utilisation",
            "node_states",
        ):
            assert key in metrics
        assert metrics["background_jobs"] > 0
        assert 0.0 <= metrics["utilisation_classical"] <= 1.0

    def test_default_horizon_used_without_workload(self):
        metrics = run_scenario(ScenarioSpec())
        assert metrics["horizon_s"] == 3600.0

    def test_explicit_horizon_wins(self):
        metrics = run_scenario(ScenarioSpec(), horizon=120.0)
        assert metrics["horizon_s"] == 120.0
