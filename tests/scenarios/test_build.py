"""Tests for the build pipeline: environments, faults, workloads, runs."""

import pytest

from repro.cluster.node import NodeState
from repro.errors import ConfigurationError
from repro.quantum.technology import TRAPPED_ION
from repro.scenarios import (
    FaultSchedule,
    FleetSpec,
    NodeFault,
    QPUMaintenance,
    RandomFailures,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    background_trace,
    build,
    run_scenario,
)
from repro.strategies.envs import environment_scenario, make_environment


class TestBuildEquivalence:
    """build(spec) and the legacy factory construct identical facilities."""

    def test_matches_make_environment(self):
        legacy = make_environment(
            classical_nodes=12,
            technology=TRAPPED_ION,
            vqpus_per_qpu=2,
            seed=4,
            scheduling_cycle=30.0,
        )
        scenario = build(
            environment_scenario(
                classical_nodes=12,
                technology=TRAPPED_ION,
                vqpus_per_qpu=2,
                seed=4,
                scheduling_cycle=30.0,
            )
        )
        assert sorted(legacy.cluster.partitions) == sorted(
            scenario.cluster.partitions
        )
        for name, partition in legacy.cluster.partitions.items():
            twin = scenario.cluster.partition(name)
            assert [n.name for n in partition.nodes] == [
                n.name for n in twin.nodes
            ]
        assert [q.name for q in legacy.qpus] == [
            q.name for q in scenario.qpus
        ]
        assert legacy.scheduler.cycle_time == scenario.scheduler.cycle_time
        assert legacy.streams.seed == scenario.streams.seed

    def test_seed_override_beats_spec_seed(self):
        env = build(ScenarioSpec(seed=3), seed=11)
        assert env.streams.seed == 11

    def test_invalid_spec_rejected_before_building(self):
        with pytest.raises(ConfigurationError):
            build(ScenarioSpec(fleet=FleetSpec(qpu_count=0)))

    def test_topology_knobs_propagate(self):
        env = build(
            ScenarioSpec(
                topology=TopologySpec(
                    classical_nodes=4,
                    cores_per_node=128,
                    classical_max_walltime=3600.0,
                )
            )
        )
        classical = env.cluster.partition("classical")
        assert classical.nodes[0].cores == 128
        assert classical.max_walltime == 3600.0

    def test_monitoring_history_opt_in(self):
        plain = build(ScenarioSpec())
        assert plain.cluster.busy_nodes["classical"].history is None
        traced = build(
            ScenarioSpec.from_dict(
                {"monitoring": {"record_history": True}}
            )
        )
        assert traced.cluster.busy_nodes["classical"].history is not None


class TestFaultInstallation:
    def test_unknown_node_rejected_at_build_time(self):
        spec = ScenarioSpec(
            faults=FaultSchedule(
                events=(
                    NodeFault(time=1.0, action="fail", node="cn9999"),
                )
            )
        )
        with pytest.raises(ConfigurationError):
            build(spec)

    def test_unknown_qpu_rejected_at_build_time(self):
        spec = ScenarioSpec(
            faults=FaultSchedule(
                maintenance=(
                    QPUMaintenance(qpu="nonesuch", start=10.0,
                                   duration=5.0),
                )
            )
        )
        with pytest.raises(ConfigurationError):
            build(spec)

    def test_maintenance_booked_on_named_device(self):
        env = build(
            ScenarioSpec(
                faults=FaultSchedule(
                    maintenance=(
                        QPUMaintenance(
                            qpu="superconducting-0",
                            start=10.0,
                            duration=5.0,
                        ),
                    )
                )
            )
        )
        from repro.quantum.circuit import Circuit

        qpu = env.primary_qpu()

        def client(kernel):
            yield kernel.timeout(20.0)  # arrive after the window opens
            yield qpu.run(Circuit(4, 10), 100)

        env.kernel.process(client(env.kernel))
        env.kernel.run()
        # The overdue window ran before the kernel was served.
        assert qpu.maintenance_performed == 1

    def test_random_failures_attach_injector(self):
        env = build(
            ScenarioSpec(
                faults=FaultSchedule(
                    random_failures=RandomFailures(
                        mtbf=50.0, mean_repair_time=5.0
                    )
                )
            )
        )
        assert len(env.fault_injectors) == 1
        env.kernel.run(until=2000.0)
        assert env.fault_injectors[0].failure_count > 0

    def test_empty_schedule_installs_nothing(self):
        env = build(ScenarioSpec())
        assert env.fault_injectors == []
        # Kernel quiesces immediately: nothing but the scheduler waits.
        env.kernel.run(until=10.0)
        assert env.kernel.now == 10.0

    def test_simultaneous_events_apply_in_declaration_order(self):
        spec = ScenarioSpec(
            topology=TopologySpec(classical_nodes=4),
            faults=FaultSchedule(
                events=(
                    NodeFault(time=5.0, action="fail", node="cn0000"),
                    NodeFault(time=5.0, action="repair", node="cn0000"),
                )
            ),
        )
        env = build(spec)
        env.kernel.run(until=6.0)
        node = env.cluster.partition("classical").nodes[0]
        assert node.state == NodeState.IDLE


class TestBackgroundTrace:
    def test_zero_rho_yields_empty_trace(self):
        env = build(ScenarioSpec())
        assert background_trace(env, WorkloadSpec()) == []

    def test_poisson_and_diurnal_differ_only_in_arrivals(self):
        poisson = background_trace(
            build(ScenarioSpec(seed=1)),
            WorkloadSpec(background_rho=0.5, horizon=7200.0),
        )
        diurnal = background_trace(
            build(ScenarioSpec(seed=1)),
            WorkloadSpec(
                background_rho=0.5,
                horizon=7200.0,
                arrivals="diurnal",
                burst_amplitude=0.9,
            ),
        )
        assert poisson and diurnal
        assert [j.submit_time for j in poisson] != [
            j.submit_time for j in diurnal
        ]

    def test_trace_is_deterministic_per_seed(self):
        workload = WorkloadSpec(background_rho=0.6, horizon=3600.0)
        first = background_trace(build(ScenarioSpec(seed=2)), workload)
        second = background_trace(build(ScenarioSpec(seed=2)), workload)
        assert [
            (j.submit_time, j.runtime, j.nodes) for j in first
        ] == [(j.submit_time, j.runtime, j.nodes) for j in second]


class TestRunScenario:
    def test_metrics_shape(self):
        metrics = run_scenario(
            ScenarioSpec(
                workload=WorkloadSpec(
                    background_rho=0.5, horizon=1800.0
                )
            )
        )
        for key in (
            "scenario",
            "seed",
            "horizon_s",
            "background_jobs",
            "utilisation_classical",
            "utilisation_quantum",
            "qpu0_utilisation",
            "node_states",
        ):
            assert key in metrics
        assert metrics["background_jobs"] > 0
        assert 0.0 <= metrics["utilisation_classical"] <= 1.0

    def test_default_horizon_used_without_workload(self):
        metrics = run_scenario(ScenarioSpec())
        assert metrics["horizon_s"] == 3600.0

    def test_explicit_horizon_wins(self):
        metrics = run_scenario(ScenarioSpec(), horizon=120.0)
        assert metrics["horizon_s"] == 120.0
