"""Tests for the ScenarioSpec dataclass tree and its serialisation."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    FaultSchedule,
    FleetSpec,
    NodeFault,
    PolicySpec,
    QPUMaintenance,
    RandomFailures,
    ScenarioSpec,
    TopologySpec,
    TraceJobSpec,
    TraceSpec,
    WorkloadSpec,
    with_overrides,
)


def _storm_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="spec-test",
        description="every section populated",
        topology=TopologySpec(classical_nodes=8, cores_per_node=32),
        fleet=FleetSpec(technology="trapped_ion", vqpus_per_qpu=2),
        workload=WorkloadSpec(
            background_rho=0.5, horizon=1800.0, max_nodes=8
        ),
        policy=PolicySpec(policy="conservative", scheduling_cycle=15.0),
        faults=FaultSchedule(
            events=(NodeFault(time=60.0, action="fail", node="cn0001"),),
            maintenance=(
                QPUMaintenance(qpu="trapped_ion-0", start=600.0,
                               duration=120.0),
            ),
            random_failures=RandomFailures(
                mtbf=3600.0, mean_repair_time=60.0
            ),
        ),
        seed=17,
    )


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        spec = _storm_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_is_lossless(self):
        spec = _storm_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_defaults_round_trip(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        data = ScenarioSpec().to_dict()
        data["warp_drive"] = True
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_unknown_nested_keys_rejected(self):
        data = ScenarioSpec().to_dict()
        data["topology"]["warp_nodes"] = 3
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_json("{not json")
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_json("[1, 2]")


class TestValidation:
    def test_valid_spec_validates(self):
        assert _storm_spec().validate() is not None

    @pytest.mark.parametrize(
        "mutation",
        [
            {"topology": TopologySpec(classical_nodes=-1)},
            {"topology": TopologySpec(cores_per_node=0)},
            {"fleet": FleetSpec(technology="abacus")},
            {"fleet": FleetSpec(qpu_count=0)},
            {"fleet": FleetSpec(vqpus_per_qpu=0)},
            {"workload": WorkloadSpec(background_rho=-0.5)},
            {"workload": WorkloadSpec(background_rho=0.5, horizon=0.0)},
            {"workload": WorkloadSpec(min_runtime=10.0, max_runtime=1.0)},
            {"workload": WorkloadSpec(arrivals="meteoric")},
            {"policy": PolicySpec(policy="wishful")},
            {"policy": PolicySpec(scheduling_cycle=-1.0)},
            {"policy": PolicySpec(priority_age=-1.0)},
            {"name": ""},
        ],
    )
    def test_bad_sections_rejected(self, mutation):
        spec = dataclasses.replace(ScenarioSpec(), **mutation)
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_background_bigger_than_partition_rejected(self):
        spec = ScenarioSpec(
            topology=TopologySpec(classical_nodes=8),
            workload=WorkloadSpec(
                background_rho=0.5, horizon=100.0, max_nodes=16
            ),
        )
        with pytest.raises(ConfigurationError):
            spec.validate()

    @pytest.mark.parametrize(
        "fault",
        [
            NodeFault(time=-1.0, action="fail", node="cn0"),
            NodeFault(time=0.0, action="explode", node="cn0"),
            NodeFault(time=0.0, action="fail", node=""),
        ],
    )
    def test_bad_fault_events_rejected(self, fault):
        spec = ScenarioSpec(faults=FaultSchedule(events=(fault,)))
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_bad_maintenance_rejected(self):
        spec = ScenarioSpec(
            faults=FaultSchedule(
                maintenance=(
                    QPUMaintenance(qpu="q", start=0.0, duration=0.0),
                )
            )
        )
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_bad_random_failures_rejected(self):
        spec = ScenarioSpec(
            faults=FaultSchedule(
                random_failures=RandomFailures(
                    mtbf=0.0, mean_repair_time=1.0
                )
            )
        )
        with pytest.raises(ConfigurationError):
            spec.validate()


class TestOverrides:
    def test_scalar_override(self):
        spec = with_overrides(
            ScenarioSpec(), {"topology.classical_nodes": 64}
        )
        assert spec.topology.classical_nodes == 64
        # Original untouched (specs are values).
        assert ScenarioSpec().topology.classical_nodes == 32

    def test_multiple_sections_in_one_call(self):
        spec = with_overrides(
            ScenarioSpec(),
            {
                "fleet.vqpus_per_qpu": 4,
                "policy.scheduling_cycle": 30.0,
                "seed": 9,
            },
        )
        assert spec.fleet.vqpus_per_qpu == 4
        assert spec.policy.scheduling_cycle == 30.0
        assert spec.seed == 9

    def test_structured_override_takes_plain_data(self):
        spec = with_overrides(
            ScenarioSpec(),
            {
                "faults.events": [
                    {"time": 5.0, "action": "fail", "node": "cn0000"}
                ]
            },
        )
        assert spec.faults.events == (
            NodeFault(time=5.0, action="fail", node="cn0000"),
        )

    def test_unknown_path_rejected(self):
        with pytest.raises(ConfigurationError):
            with_overrides(ScenarioSpec(), {"topology.warp_nodes": 1})
        with pytest.raises(ConfigurationError):
            with_overrides(ScenarioSpec(), {"nope.classical_nodes": 1})

    def test_override_result_is_validated(self):
        with pytest.raises(ConfigurationError):
            with_overrides(ScenarioSpec(), {"fleet.qpu_count": 0})

    def test_empty_overrides_return_same_spec(self):
        spec = ScenarioSpec()
        assert with_overrides(spec, {}) is spec


def _trace_spec(**kwargs) -> TraceSpec:
    defaults = dict(path="sample-32n.swf")
    defaults.update(kwargs)
    return TraceSpec(**defaults)


class TestTraceSpec:
    def test_file_backed_round_trip(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec(
                horizon=3600.0,
                trace=_trace_spec(
                    time_scale=0.5,
                    runtime_scale=2.0,
                    qpu_fraction=0.25,
                    limit=10,
                    loop=True,
                    jitter=15.0,
                ),
            )
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_inline_jobs_round_trip(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec(
                trace=TraceSpec(
                    jobs=(
                        TraceJobSpec(1, 0.0, 60.0, 2, 120.0),
                        TraceJobSpec(2, 30.0, 0.0, 1, 60.0,
                                     user="user3"),
                    )
                )
            )
        )
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert isinstance(rebuilt.workload.trace.jobs[0], TraceJobSpec)

    def test_valid_trace_validates(self):
        ScenarioSpec(
            workload=WorkloadSpec(trace=_trace_spec())
        ).validate()

    @pytest.mark.parametrize(
        "trace",
        [
            TraceSpec(),  # no source
            TraceSpec(path="x.swf", jobs=(
                TraceJobSpec(1, 0.0, 1.0, 1, 2.0),
            )),  # both sources
            _trace_spec(time_scale=0.0),
            _trace_spec(runtime_scale=-1.0),
            _trace_spec(partition=""),
            _trace_spec(max_nodes=0),
            _trace_spec(oversize="explode"),
            _trace_spec(qpu_fraction=1.5),
            _trace_spec(limit=0),
            _trace_spec(jitter=-1.0),
        ],
    )
    def test_bad_trace_rejected(self, trace):
        spec = ScenarioSpec(workload=WorkloadSpec(trace=trace))
        with pytest.raises(ConfigurationError):
            spec.validate()

    @pytest.mark.parametrize(
        "job",
        [
            TraceJobSpec(1, -1.0, 1.0, 1, 2.0),
            TraceJobSpec(1, 0.0, -1.0, 1, 2.0),
            TraceJobSpec(1, 0.0, 1.0, 0, 2.0),
            TraceJobSpec(1, 0.0, 1.0, 1, 0.0),
        ],
    )
    def test_bad_inline_jobs_rejected(self, job):
        spec = ScenarioSpec(
            workload=WorkloadSpec(trace=TraceSpec(jobs=(job,)))
        )
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_loop_without_workload_horizon_is_valid(self):
        """Looping targets the *run* horizon, which always resolves to
        a positive value — a horizonless workload must not be
        rejected."""
        ScenarioSpec(
            workload=WorkloadSpec(trace=_trace_spec(loop=True))
        ).validate()

    def test_dotted_override_targets_trace_fields(self):
        spec = ScenarioSpec(
            workload=WorkloadSpec(horizon=3600.0, trace=_trace_spec())
        )
        fast = with_overrides(
            spec, {"workload.trace.time_scale": 0.25}
        )
        assert fast.workload.trace.time_scale == 0.25
        # The original is a value; it never changes.
        assert spec.workload.trace.time_scale == 1.0

    def test_override_can_install_a_whole_trace(self):
        spec = with_overrides(
            ScenarioSpec(),
            {"workload.trace": {"path": "sample-32n.swf",
                                "limit": 5}},
        )
        assert spec.workload.trace == TraceSpec(
            path="sample-32n.swf", limit=5
        )
