"""Tests for the node model and gres instances."""

import pytest

from repro.cluster.node import GresInstance, Node, NodeState
from repro.errors import AllocationError, ConfigurationError


def make_qpu_node(name="qn0", units=2):
    gres = [GresInstance("qpu", index, device=f"dev{index}")
            for index in range(units)]
    return Node(name, cores=16, memory_gb=64, gres=gres)


class TestNodeConstruction:
    def test_defaults(self):
        node = Node("cn0")
        assert node.state == NodeState.IDLE
        assert node.is_available
        assert node.allocated_to is None

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            Node("bad", cores=0)

    def test_invalid_memory(self):
        with pytest.raises(ConfigurationError):
            Node("bad", memory_gb=-1)

    def test_gres_backref(self):
        node = make_qpu_node()
        for instance in node.all_gres("qpu"):
            assert instance.node is node


class TestAllocation:
    def test_allocate_marks_node(self):
        node = Node("cn0")
        node.allocate("job-1")
        assert node.state == NodeState.ALLOCATED
        assert node.allocated_to == "job-1"
        assert not node.is_available

    def test_double_allocate_rejected(self):
        node = Node("cn0")
        node.allocate("job-1")
        with pytest.raises(AllocationError):
            node.allocate("job-2")

    def test_release_restores_availability(self):
        node = Node("cn0")
        node.allocate("job-1")
        node.release("job-1")
        assert node.is_available

    def test_release_by_wrong_job_rejected(self):
        node = Node("cn0")
        node.allocate("job-1")
        with pytest.raises(AllocationError):
            node.release("job-2")

    def test_gres_granted_with_node(self):
        node = make_qpu_node(units=2)
        granted = node.allocate("job-1", {"qpu": 1})
        assert len(granted) == 1
        assert granted[0].allocated_to == "job-1"
        assert len(node.free_gres("qpu")) == 1

    def test_gres_over_request_rejected_and_node_untouched(self):
        node = make_qpu_node(units=1)
        with pytest.raises(AllocationError):
            node.allocate("job-1", {"qpu": 2})
        assert node.is_available

    def test_gres_released_with_node(self):
        node = make_qpu_node(units=2)
        node.allocate("job-1", {"qpu": 2})
        node.release("job-1")
        assert len(node.free_gres("qpu")) == 2

    def test_unknown_gres_type_counts_zero(self):
        node = Node("cn0")
        assert node.gres_count("fpga") == 0
        assert node.free_gres("fpga") == []


class TestFailure:
    def test_mark_down_evicts_job(self):
        node = make_qpu_node()
        node.allocate("job-1", {"qpu": 1})
        evicted = node.mark_down()
        assert evicted == "job-1"
        assert node.state == NodeState.DOWN
        assert not node.is_available
        assert len(node.free_gres("qpu")) == 2

    def test_mark_down_idle_node(self):
        node = Node("cn0")
        assert node.mark_down() is None

    def test_mark_up_restores(self):
        node = Node("cn0")
        node.mark_down()
        node.mark_up()
        assert node.is_available

    def test_drain_idle_node_blocks_allocation(self):
        node = Node("cn0")
        node.drain()
        assert node.state == NodeState.DRAINING
        assert not node.is_available
        with pytest.raises(AllocationError):
            node.allocate("job-1")


class TestGresInstance:
    def test_repr_shows_owner(self):
        instance = GresInstance("qpu", 0)
        assert "qpu:0" in repr(instance)
        instance.allocated_to = "job-9"
        assert "job-9" in repr(instance)

    def test_is_free(self):
        instance = GresInstance("qpu", 0)
        assert instance.is_free
        instance.allocated_to = "job-1"
        assert not instance.is_free
