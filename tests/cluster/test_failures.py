"""Tests for node failure injection and declarative fault schedules."""

import pytest

from repro.cluster.failures import FailureInjector
from repro.cluster.node import Node, NodeState
from repro.errors import ConfigurationError
from repro.experiments.sweep import SweepSpec, canonical_bytes, run_sweep
from repro.scenarios import (
    FaultSchedule,
    NodeFault,
    RandomFailures,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build,
    run_scenario,
)


class TestFailureInjector:
    def test_invalid_parameters(self, kernel, streams):
        nodes = [Node("cn0")]
        with pytest.raises(ConfigurationError):
            FailureInjector(kernel, nodes, mtbf=0, mean_repair_time=1,
                            streams=streams)
        with pytest.raises(ConfigurationError):
            FailureInjector(kernel, nodes, mtbf=1, mean_repair_time=-1,
                            streams=streams)

    def test_failures_and_repairs_happen(self, kernel, streams):
        nodes = [Node(f"cn{i}") for i in range(4)]
        injector = FailureInjector(
            kernel,
            nodes,
            mtbf=100.0,
            mean_repair_time=10.0,
            streams=streams,
        )
        kernel.run(until=2000.0)
        assert injector.failure_count > 0
        assert injector.repair_count > 0
        # Repairs trail failures by at most the in-flight ones.
        assert injector.repair_count <= injector.failure_count

    def test_callback_reports_evicted_job(self, kernel, streams):
        node = Node("cn0")
        node.allocate("job-7")
        evictions = []
        FailureInjector(
            kernel,
            [node],
            mtbf=50.0,
            mean_repair_time=5.0,
            streams=streams,
            on_failure=lambda n, job: evictions.append((n.name, job)),
        )
        kernel.run(until=1000.0)
        assert evictions
        assert evictions[0] == ("cn0", "job-7")

    def test_node_returns_to_service(self, kernel, streams):
        node = Node("cn0")
        FailureInjector(
            kernel, [node], mtbf=10.0, mean_repair_time=1.0, streams=streams
        )
        kernel.run(until=10000.0)
        # After many cycles the node must not be stuck DOWN forever;
        # state is either IDLE or DOWN mid-repair, and repairs happened.
        assert node.state in (NodeState.IDLE, NodeState.DOWN)

    def test_deterministic_given_seed(self, streams):
        from repro.sim.kernel import Kernel
        from repro.sim.rng import RandomStreams

        def run_once():
            kernel = Kernel()
            nodes = [Node(f"cn{i}") for i in range(3)]
            injector = FailureInjector(
                kernel,
                nodes,
                mtbf=100.0,
                mean_repair_time=10.0,
                streams=RandomStreams(42),
            )
            kernel.run(until=5000.0)
            return injector.failure_count, injector.repair_count

        assert run_once() == run_once()

    def test_repr(self, kernel, streams):
        injector = FailureInjector(
            kernel, [Node("cn0")], mtbf=1e9, mean_repair_time=1.0,
            streams=streams,
        )
        assert "FailureInjector" in repr(injector)


#: A stormy scenario: deterministic fail/repair/drain events plus
#: stochastic churn, under a busy background.
_STORM = ScenarioSpec(
    name="test-storm",
    topology=TopologySpec(classical_nodes=16),
    workload=WorkloadSpec(background_rho=0.8, horizon=3600.0),
    faults=FaultSchedule(
        events=(
            NodeFault(time=600.0, action="fail", node="cn0001"),
            NodeFault(time=600.0, action="fail", node="cn0002"),
            NodeFault(time=900.0, action="drain", node="cn0003"),
            NodeFault(time=1800.0, action="repair", node="cn0001"),
            NodeFault(time=2400.0, action="undrain", node="cn0003"),
        ),
        random_failures=RandomFailures(
            mtbf=1800.0, mean_repair_time=300.0
        ),
    ),
)


def _storm_point(params, seed):
    """Module-level sweep runner (pool workers resolve it by import)."""
    spec = ScenarioSpec.from_dict(params["scenario"])
    return run_scenario(spec, seed=seed, horizon=params["horizon"])


class TestDeterministicFaultInjection:
    def test_same_seed_same_schedule_same_metrics(self):
        first = run_scenario(_STORM, seed=9, horizon=3600.0)
        second = run_scenario(_STORM, seed=9, horizon=3600.0)
        assert canonical_bytes(first) == canonical_bytes(second)
        # The deterministic storm really happened.
        assert first["background_jobs"] > 0

    def test_serial_vs_parallel_sweep_byte_identical(self):
        spec = SweepSpec(
            experiment_id="fault-storm",
            axes={"seed_salt": [0, 1, 2]},
            constants={
                "scenario": _STORM.to_dict(),
                "horizon": 3600.0,
            },
            base_seed=5,
        )
        serial = run_sweep(spec, _storm_point, workers=1)
        parallel = run_sweep(spec, _storm_point, workers=2)
        assert canonical_bytes(serial.values) == canonical_bytes(
            parallel.values
        )

    def test_timed_events_change_node_states(self):
        quiet = ScenarioSpec(
            name="quiet",
            topology=TopologySpec(classical_nodes=16),
        )
        stormy = ScenarioSpec(
            name="stormy",
            topology=TopologySpec(classical_nodes=16),
            faults=FaultSchedule(
                events=(
                    NodeFault(time=10.0, action="fail", node="cn0001"),
                    NodeFault(time=20.0, action="drain", node="cn0002"),
                )
            ),
        )
        calm = run_scenario(quiet, horizon=100.0)
        hit = run_scenario(stormy, horizon=100.0)
        assert calm["node_states"] == {"idle": 17}
        assert hit["node_states"] == {"down": 1, "draining": 1, "idle": 15}


class TestDrainWhileAllocated:
    def test_drain_of_allocated_node_parks_in_draining_on_release(self):
        node = Node("cn0")
        node.allocate("job-1")
        node.drain()
        # The running job is undisturbed...
        assert node.state == NodeState.ALLOCATED
        assert node.allocated_to == "job-1"
        # ...and the node parks in DRAINING once the job releases it.
        node.release("job-1")
        assert node.state == NodeState.DRAINING
        assert not node.is_available
        node.mark_up()
        assert node.state == NodeState.IDLE

    def test_undrain_before_release_cancels_the_drain(self):
        node = Node("cn0")
        node.allocate("job-1")
        node.drain()
        node.mark_up()  # undrain while still allocated
        node.release("job-1")
        assert node.state == NodeState.IDLE
        assert node.is_available

    def test_failure_clears_pending_drain(self):
        node = Node("cn0")
        node.allocate("job-1")
        node.drain()
        assert node.mark_down() == "job-1"
        node.mark_up()
        assert node.state == NodeState.IDLE

    def test_drain_event_during_allocation_in_scenario(self, kernel):
        """End to end: a drained-while-allocated node finishes its job,
        then transitions through DRAINING."""
        env = build(
            ScenarioSpec(
                name="drain-live",
                topology=TopologySpec(classical_nodes=2),
                faults=FaultSchedule(
                    events=(
                        NodeFault(
                            time=50.0, action="drain", node="cn0000"
                        ),
                    )
                ),
            )
        )
        from repro.scheduler.job import JobComponent, JobSpec

        job = env.scheduler.submit(
            JobSpec(
                name="victim",
                components=[JobComponent("classical", 2, 300.0)],
                duration=200.0,
            )
        )
        node = env.cluster.partition("classical").nodes[0]
        env.kernel.run(until=100.0)
        # Drain fired mid-job: still allocated, not yet draining.
        assert node.state == NodeState.ALLOCATED
        env.kernel.run(until=job.finished)
        env.kernel.run(until=env.kernel.now + 1.0)
        assert node.state == NodeState.DRAINING
