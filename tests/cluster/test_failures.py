"""Tests for node failure injection."""

import pytest

from repro.cluster.failures import FailureInjector
from repro.cluster.node import Node, NodeState
from repro.errors import ConfigurationError


class TestFailureInjector:
    def test_invalid_parameters(self, kernel, streams):
        nodes = [Node("cn0")]
        with pytest.raises(ConfigurationError):
            FailureInjector(kernel, nodes, mtbf=0, mean_repair_time=1,
                            streams=streams)
        with pytest.raises(ConfigurationError):
            FailureInjector(kernel, nodes, mtbf=1, mean_repair_time=-1,
                            streams=streams)

    def test_failures_and_repairs_happen(self, kernel, streams):
        nodes = [Node(f"cn{i}") for i in range(4)]
        injector = FailureInjector(
            kernel,
            nodes,
            mtbf=100.0,
            mean_repair_time=10.0,
            streams=streams,
        )
        kernel.run(until=2000.0)
        assert injector.failure_count > 0
        assert injector.repair_count > 0
        # Repairs trail failures by at most the in-flight ones.
        assert injector.repair_count <= injector.failure_count

    def test_callback_reports_evicted_job(self, kernel, streams):
        node = Node("cn0")
        node.allocate("job-7")
        evictions = []
        FailureInjector(
            kernel,
            [node],
            mtbf=50.0,
            mean_repair_time=5.0,
            streams=streams,
            on_failure=lambda n, job: evictions.append((n.name, job)),
        )
        kernel.run(until=1000.0)
        assert evictions
        assert evictions[0] == ("cn0", "job-7")

    def test_node_returns_to_service(self, kernel, streams):
        node = Node("cn0")
        FailureInjector(
            kernel, [node], mtbf=10.0, mean_repair_time=1.0, streams=streams
        )
        kernel.run(until=10000.0)
        # After many cycles the node must not be stuck DOWN forever;
        # state is either IDLE or DOWN mid-repair, and repairs happened.
        assert node.state in (NodeState.IDLE, NodeState.DOWN)

    def test_deterministic_given_seed(self, streams):
        from repro.sim.kernel import Kernel
        from repro.sim.rng import RandomStreams

        def run_once():
            kernel = Kernel()
            nodes = [Node(f"cn{i}") for i in range(3)]
            injector = FailureInjector(
                kernel,
                nodes,
                mtbf=100.0,
                mean_repair_time=10.0,
                streams=RandomStreams(42),
            )
            kernel.run(until=5000.0)
            return injector.failure_count, injector.repair_count

        assert run_once() == run_once()

    def test_repr(self, kernel, streams):
        injector = FailureInjector(
            kernel, [Node("cn0")], mtbf=1e9, mean_repair_time=1.0,
            streams=streams,
        )
        assert "FailureInjector" in repr(injector)
