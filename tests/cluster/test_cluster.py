"""Tests for the cluster: allocation, release, shrink/grow, monitors."""

import pytest

from repro.cluster.builders import build_hpcqc_cluster
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.partition import Partition
from repro.errors import AllocationError, ConfigurationError
from repro.sim.kernel import Kernel


@pytest.fixture
def cluster(kernel):
    return build_hpcqc_cluster(
        kernel, classical_nodes=4, qpu_devices=["qpu-device-0"]
    )


class TestConstruction:
    def test_needs_partitions(self, kernel):
        with pytest.raises(ConfigurationError):
            Cluster(kernel, [])

    def test_duplicate_partition_names_rejected(self, kernel):
        partitions = [
            Partition("p", [Node("a")]),
            Partition("p", [Node("b")]),
        ]
        with pytest.raises(ConfigurationError):
            Cluster(kernel, partitions)

    def test_unknown_partition_lookup(self, cluster):
        with pytest.raises(ConfigurationError):
            cluster.partition("nope")

    def test_total_nodes(self, cluster):
        assert cluster.total_nodes() == 5  # 4 classical + 1 quantum front-end


class TestAllocateRelease:
    def test_basic_allocation(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 2, walltime=60)
        assert allocation.node_count == 2
        assert allocation.expected_end == 60.0
        assert len(cluster.active_allocations()) == 1

    def test_gres_allocation_binds_device(self, cluster):
        allocation = cluster.allocate(
            "job-1", "quantum", 1, gres_request={"qpu": 1}
        )
        assert allocation.gres_devices("qpu") == ["qpu-device-0"]
        assert allocation.gres_counts() == {"qpu": 1}

    def test_over_allocation_raises(self, cluster):
        cluster.allocate("job-1", "classical", 4)
        with pytest.raises(AllocationError):
            cluster.allocate("job-2", "classical", 1)

    def test_release_returns_nodes(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 4)
        cluster.release(allocation)
        assert cluster.can_allocate("classical", 4)
        assert allocation.released
        assert allocation.end_time == 0.0

    def test_double_release_rejected(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 1)
        cluster.release(allocation)
        with pytest.raises(AllocationError):
            cluster.release(allocation)

    def test_can_allocate(self, cluster):
        assert cluster.can_allocate("classical", 4)
        assert not cluster.can_allocate("classical", 5)
        assert cluster.can_allocate("quantum", 1, {"qpu": 1})
        assert not cluster.can_allocate("quantum", 1, {"qpu": 2})

    def test_no_walltime_means_infinite_expected_end(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 1)
        assert allocation.expected_end == float("inf")


class TestShrinkGrow:
    def test_shrink_releases_nodes(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 4)
        released = cluster.shrink(allocation, 3)
        assert len(released) == 3
        assert allocation.node_count == 1
        assert cluster.partition("classical").available_count() == 3

    def test_shrink_prefers_gres_free_nodes(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 2, ["dev0", "dev1"])
        # Two quantum front-end nodes; gres granted on one of them.
        allocation = cluster.allocate(
            "job-1", "quantum", 2, gres_request={"qpu": 1}
        )
        released = cluster.shrink(allocation, 1)
        # The node still holding the gres unit must be kept.
        gres_nodes = {g.node for g in allocation.gres}
        assert released[0] not in gres_nodes
        assert allocation.node_count == 1

    def test_shrink_out_of_range(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 2)
        with pytest.raises(AllocationError):
            cluster.shrink(allocation, 0)
        with pytest.raises(AllocationError):
            cluster.shrink(allocation, 3)

    def test_shrink_released_allocation_rejected(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 2)
        cluster.release(allocation)
        with pytest.raises(AllocationError):
            cluster.shrink(allocation, 1)

    def test_grow_attaches_nodes(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 1)
        added = cluster.grow(allocation, 2)
        assert len(added) == 2
        assert allocation.node_count == 3
        for node in added:
            assert node.allocated_to == "job-1"

    def test_grow_beyond_capacity_rejected(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 3)
        with pytest.raises(AllocationError):
            cluster.grow(allocation, 2)

    def test_shrink_then_release_is_consistent(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 4)
        cluster.shrink(allocation, 2)
        cluster.release(allocation)
        assert cluster.partition("classical").available_count() == 4


class TestUtilisationMonitors:
    def test_node_utilisation_half(self, kernel, cluster):
        allocation = cluster.allocate("job-1", "classical", 2, walltime=100)

        def proc(k):
            yield k.timeout(100.0)
            cluster.release(allocation)
            yield k.timeout(100.0)

        kernel.process(proc(kernel))
        kernel.run()
        # 2 of 4 nodes for half the window: 25% average.
        assert cluster.node_utilisation("classical") == pytest.approx(0.25)

    def test_gres_allocation_fraction(self, kernel, cluster):
        allocation = cluster.allocate(
            "job-1", "quantum", 1, gres_request={"qpu": 1}
        )

        def proc(k):
            yield k.timeout(50.0)
            cluster.release(allocation)
            yield k.timeout(50.0)

        kernel.process(proc(kernel))
        kernel.run()
        assert cluster.gres_allocation_fraction(
            "quantum", "qpu"
        ) == pytest.approx(0.5)

    def test_unknown_gres_fraction_is_zero(self, cluster):
        assert cluster.gres_allocation_fraction("classical", "qpu") == 0.0

    def test_repr(self, cluster):
        assert "classical" in repr(cluster)


class TestNodeStateVersion:
    """The O(1) capacity-change signal consumed by TimelineCache."""

    def test_starts_at_zero(self, cluster):
        assert cluster.node_state_version == 0

    def test_failure_and_repair_bump(self, cluster):
        node = cluster.partition("classical").nodes[0]
        node.mark_down()
        assert cluster.node_state_version == 1
        node.mark_up()
        assert cluster.node_state_version == 2

    def test_drain_bumps(self, cluster):
        cluster.partition("classical").nodes[0].drain()
        assert cluster.node_state_version == 1

    def test_allocate_release_do_not_bump(self, cluster):
        allocation = cluster.allocate("job-1", "classical", 2)
        cluster.release(allocation)
        # IDLE <-> ALLOCATED transitions leave capacity unchanged, so
        # the hot allocation path never touches the counter.
        assert cluster.node_state_version == 0

    def test_down_node_failing_again_does_not_bump(self, cluster):
        node = cluster.partition("classical").nodes[0]
        node.mark_down()
        version = cluster.node_state_version
        node.mark_down()  # already DOWN: capacity class unchanged
        assert cluster.node_state_version == version
