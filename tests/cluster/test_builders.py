"""Tests for the canonical cluster builders."""

from repro.cluster.builders import (
    CLASSICAL_PARTITION,
    QUANTUM_PARTITION,
    build_hpcqc_cluster,
    make_nodes,
    make_qpu_node,
)


class TestMakeNodes:
    def test_count_and_names(self):
        nodes = make_nodes("cn", 3)
        assert [node.name for node in nodes] == ["cn0000", "cn0001", "cn0002"]

    def test_custom_shape(self):
        nodes = make_nodes("x", 1, cores=8, memory_gb=32)
        assert nodes[0].cores == 8
        assert nodes[0].memory_gb == 32


class TestMakeQpuNode:
    def test_devices_bound_in_order(self):
        node = make_qpu_node("qn0", ["devA", "devB"])
        instances = node.all_gres("qpu")
        assert [g.device for g in instances] == ["devA", "devB"]
        assert [g.index for g in instances] == [0, 1]

    def test_custom_gres_type(self):
        node = make_qpu_node("qn0", ["d"], gres_type="vqpu")
        assert node.gres_count("vqpu") == 1


class TestBuildHpcqcCluster:
    def test_listing1_topology(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 10, ["qpu0"])
        assert cluster.partition(CLASSICAL_PARTITION).node_count == 10
        assert cluster.partition(QUANTUM_PARTITION).node_count == 1
        assert (
            cluster.partition(QUANTUM_PARTITION).gres_capacity("qpu") == 1
        )

    def test_multiple_devices_packed(self, kernel):
        cluster = build_hpcqc_cluster(
            kernel, 2, ["a", "b", "c", "d"], qpus_per_node=2
        )
        quantum = cluster.partition(QUANTUM_PARTITION)
        assert quantum.node_count == 2
        assert quantum.gres_capacity("qpu") == 4

    def test_one_device_per_node(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 2, ["a", "b", "c"])
        assert cluster.partition(QUANTUM_PARTITION).node_count == 3

    def test_walltime_limits_propagate(self, kernel):
        cluster = build_hpcqc_cluster(
            kernel,
            2,
            ["a"],
            classical_max_walltime=3600.0,
            quantum_max_walltime=600.0,
        )
        assert cluster.partition(CLASSICAL_PARTITION).max_walltime == 3600.0
        assert cluster.partition(QUANTUM_PARTITION).max_walltime == 600.0
