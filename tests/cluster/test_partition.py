"""Tests for partitions: capacity queries and node selection."""

import pytest

from repro.cluster.node import GresInstance, Node
from repro.cluster.partition import Partition
from repro.errors import ConfigurationError


def make_partition(node_count=4, qpu_nodes=0):
    nodes = [Node(f"cn{i}") for i in range(node_count)]
    for index in range(qpu_nodes):
        nodes.append(
            Node(
                f"qn{index}",
                gres=[GresInstance("qpu", 0, device=f"qpu-{index}")],
            )
        )
    return Partition("test", nodes)


class TestConstruction:
    def test_empty_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            Partition("empty", [])

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Partition("", [Node("cn0")])

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Partition("dup", [Node("cn0"), Node("cn0")])


class TestCapacityQueries:
    def test_counts(self):
        partition = make_partition(4)
        assert partition.node_count == 4
        assert partition.available_count() == 4
        assert partition.usable_node_count() == 4

    def test_allocated_nodes_still_usable_not_available(self):
        partition = make_partition(4)
        partition.nodes[0].allocate("job-1")
        assert partition.available_count() == 3
        assert partition.usable_node_count() == 4

    def test_down_nodes_not_usable(self):
        partition = make_partition(4)
        partition.nodes[0].mark_down()
        assert partition.usable_node_count() == 3

    def test_gres_capacity_skips_down_nodes(self):
        partition = make_partition(1, qpu_nodes=2)
        assert partition.gres_capacity("qpu") == 2
        partition.nodes[-1].mark_down()
        assert partition.gres_capacity("qpu") == 1

    def test_free_gres_count(self):
        partition = make_partition(0, qpu_nodes=2)
        assert partition.free_gres_count("qpu") == 2
        partition.nodes[0].allocate("job-1", {"qpu": 1})
        assert partition.free_gres_count("qpu") == 1


class TestFindNodes:
    def test_plain_selection_is_deterministic(self):
        partition = make_partition(4)
        chosen = partition.find_nodes(2)
        assert [node.name for node in chosen] == ["cn0", "cn1"]

    def test_insufficient_nodes_returns_none(self):
        partition = make_partition(2)
        assert partition.find_nodes(3) is None

    def test_gres_request_prefers_device_nodes(self):
        partition = make_partition(2, qpu_nodes=1)
        chosen = partition.find_nodes(1, {"qpu": 1})
        assert chosen is not None
        assert chosen[0].name == "qn0"

    def test_gres_request_unsatisfiable(self):
        partition = make_partition(2, qpu_nodes=1)
        assert partition.find_nodes(1, {"qpu": 2}) is None

    def test_gres_spread_across_nodes(self):
        partition = make_partition(0, qpu_nodes=3)
        chosen = partition.find_nodes(2, {"qpu": 2})
        assert chosen is not None
        total = sum(len(node.free_gres("qpu")) for node in chosen)
        assert total >= 2

    def test_busy_gres_not_counted(self):
        partition = make_partition(0, qpu_nodes=1)
        partition.nodes[0].allocate("job-1", {"qpu": 1})
        assert partition.find_nodes(1, {"qpu": 1}) is None

    def test_repr(self):
        assert "test" in repr(make_partition(1))
