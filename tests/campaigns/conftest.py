"""Shared fixtures and instrumented steps for the campaign suites.

The test steps register once at import (the global registry rejects
duplicates) and are deliberately file-instrumented: each execution
drops ``<state>/counts/<stage>.started`` / ``.completed`` marker lines
so crash/resume tests can assert *exact* execution counts without
trusting in-process state that a SIGKILL would lose.
"""

import os
from pathlib import Path

import pytest

from repro.campaigns import STEPS, CampaignSpec, StageSpec


def _counts_dir(ctx) -> Path:
    path = Path(ctx.state_dir) / "counts"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _mark(ctx, kind: str) -> None:
    path = _counts_dir(ctx) / f"{ctx.stage}.{kind}"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{os.getpid()}\n")
        handle.flush()
        os.fsync(handle.fileno())


def marker_count(state_dir, stage: str, kind: str) -> int:
    """How many times one stage started/completed, across processes."""
    path = Path(state_dir) / "counts" / f"{stage}.{kind}"
    try:
        return len(path.read_text(encoding="utf-8").splitlines())
    except OSError:
        return 0


if "t.add" not in STEPS:

    @STEPS.register("t.add")
    def _t_add(ctx):
        """Deterministic value: params x + sum of upstream values."""
        _mark(ctx, "started")
        value = ctx.param("x", 0) + sum(
            ctx.upstream[dep] for dep in sorted(ctx.upstream)
        )
        _mark(ctx, "completed")
        return value

    @STEPS.register("t.seeded")
    def _t_seeded(ctx):
        """Value derived from the stage seed (determinism probes)."""
        _mark(ctx, "started")
        value = {"stage": ctx.stage, "seed": ctx.seed % 1000}
        _mark(ctx, "completed")
        return value

    @STEPS.register("t.flaky")
    def _t_flaky(ctx):
        """Fails until ``fail_times`` prior attempts are on record."""
        _mark(ctx, "started")
        if marker_count(ctx.state_dir, ctx.stage, "started") <= int(
            ctx.param("fail_times", 0)
        ):
            raise RuntimeError(f"flaky {ctx.stage} not warmed up yet")
        _mark(ctx, "completed")
        return ctx.param("x", 0)

    @STEPS.register("t.fail")
    def _t_fail(ctx):
        """Always fails."""
        _mark(ctx, "started")
        raise RuntimeError(f"stage {ctx.stage} always fails")

    @STEPS.register("t.sleep")
    def _t_sleep(ctx):
        """Sleeps ``seconds`` (timeout probes)."""
        import time

        _mark(ctx, "started")
        time.sleep(float(ctx.param("seconds", 10.0)))
        _mark(ctx, "completed")
        return "slept"

    @STEPS.register("t.interrupt_once")
    def _t_interrupt_once(ctx):
        """Raises KeyboardInterrupt while a sentinel file exists.

        The sentinel is consumed first, so the resumed run sails
        through — an in-process stand-in for a kill at this stage.
        """
        _mark(ctx, "started")
        sentinel = Path(ctx.state_dir) / f"{ctx.stage}.sentinel"
        if sentinel.exists():
            sentinel.unlink()
            raise KeyboardInterrupt(f"simulated kill at {ctx.stage}")
        _mark(ctx, "completed")
        return ctx.param("x", 0)


def diamond_campaign(name="diamond", seed=3, **stage_overrides):
    """a -> (b, c) -> d with every stage on the instrumented adder.

    ``stage_overrides`` maps a stage name to extra StageSpec fields
    (e.g. ``b={"step": "t.fail", "on_error": "collect"}``).
    """
    base = {
        "a": dict(step="t.add", params={"x": 1}),
        "b": dict(step="t.add", params={"x": 2}, after=("a",)),
        "c": dict(step="t.add", params={"x": 3}, after=("a",)),
        "d": dict(step="t.add", params={"x": 4}, after=("b", "c")),
    }
    for stage, overrides in stage_overrides.items():
        base[stage].update(overrides)
    return CampaignSpec(
        name=name,
        seed=seed,
        stages=tuple(
            StageSpec(name=stage, **fields)
            for stage, fields in base.items()
        ),
    )


@pytest.fixture
def diamond():
    return diamond_campaign()
