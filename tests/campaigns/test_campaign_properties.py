"""Property-based campaign tests: random DAGs, random kill points.

Random DAGs are generated acyclic by construction (every stage may
only depend on earlier stages), then pushed through the engine to
check the invariants no example-based test can sweep:

- every stage executes exactly once on a clean run, in an order that
  respects the dependencies;
- the canonical result is a pure function of the spec (two fresh runs
  in different state dirs are byte-identical);
- an interrupt at a random stage, followed by ``resume``, never
  re-executes a stage that completed before the interrupt — and the
  resumed result is byte-identical to an uninterrupted run.
"""

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaigns import CampaignEngine, CampaignSpec, StageSpec

from tests.campaigns.conftest import marker_count

#: Compact settings: the engine is fast, but each example simulates a
#: whole campaign (sometimes two), so keep the sweep tight and the
#: per-example deadline off (first-example import costs would trip it).
PROPERTY_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@st.composite
def random_dags(draw, max_stages=6):
    """A random acyclic campaign over the instrumented adder step.

    Stage ``i`` may depend only on stages ``< i``, so every draw is a
    DAG by construction; dependency sets and per-stage params vary.
    """
    count = draw(st.integers(min_value=1, max_value=max_stages))
    stages = []
    for index in range(count):
        deps = (
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=index - 1),
                    max_size=min(index, 3),
                )
            )
            if index
            else set()
        )
        stages.append(
            StageSpec(
                name=f"s{index}",
                step="t.add",
                params={"x": draw(st.integers(0, 9))},
                after=tuple(f"s{dep}" for dep in sorted(deps)),
            )
        )
    seed = draw(st.integers(min_value=0, max_value=99))
    return CampaignSpec(name="prop", seed=seed, stages=tuple(stages))


class TestRandomDags:
    @settings(**PROPERTY_SETTINGS)
    @given(spec=random_dags())
    def test_every_stage_executes_exactly_once(self, spec, tmp_path):
        state = Path(tempfile.mkdtemp(dir=tmp_path))
        result = CampaignEngine(
            spec, state, code_version="pinned"
        ).run()
        assert result.ok
        for stage in spec.stages:
            assert marker_count(state, stage.name, "completed") == 1
        # The result order respects every dependency edge.
        position = {name: i for i, name in enumerate(result.order)}
        for stage in spec.stages:
            for dep in stage.after:
                assert position[dep] < position[stage.name]

    @settings(**PROPERTY_SETTINGS)
    @given(spec=random_dags())
    def test_canonical_result_is_a_pure_function_of_the_spec(
        self, spec, tmp_path
    ):
        digests = set()
        for run_index in range(2):
            state = Path(tempfile.mkdtemp(dir=tmp_path))
            result = CampaignEngine(
                spec, state, code_version="pinned"
            ).run()
            digests.add(result.canonical_digest())
        assert len(digests) == 1


class TestRandomKillPoints:
    @settings(**PROPERTY_SETTINGS)
    @given(data=st.data())
    def test_resume_never_reexecutes_a_completed_stage(
        self, data, tmp_path
    ):
        spec = data.draw(random_dags())
        # Replace one random stage with the self-interrupting step: it
        # consumes a sentinel and dies mid-"campaign" exactly once.
        victim = data.draw(
            st.sampled_from([stage.name for stage in spec.stages])
        )
        stages = tuple(
            StageSpec(
                name=stage.name,
                step="t.interrupt_once",
                params=dict(stage.params),
                after=stage.after,
            )
            if stage.name == victim
            else stage
            for stage in spec.stages
        )
        spec = CampaignSpec(
            name=spec.name, seed=spec.seed, stages=stages
        )
        state = Path(tempfile.mkdtemp(dir=tmp_path))
        Path(state / f"{victim}.sentinel").touch()

        engine = CampaignEngine(spec, state, code_version="pinned")
        try:
            engine.run()
            interrupted = False
        except KeyboardInterrupt:
            interrupted = True
        assert interrupted
        completed_before = {
            stage.name
            for stage in spec.stages
            if marker_count(state, stage.name, "completed") == 1
        }

        resumed = CampaignEngine(
            spec, state, code_version="pinned"
        ).run(resume=True)
        assert resumed.ok
        # Every stage completed exactly once across both runs, and
        # stages that completed before the kill were never re-entered.
        for stage in spec.stages:
            assert marker_count(state, stage.name, "completed") == 1
            expected_starts = 2 if stage.name == victim else 1
            if stage.name in completed_before:
                assert marker_count(state, stage.name, "started") == 1
            else:
                assert (
                    marker_count(state, stage.name, "started")
                    <= expected_starts
                )

        # Byte-identity with an uninterrupted run of the same spec.
        clean = Path(tempfile.mkdtemp(dir=tmp_path))
        baseline = CampaignEngine(
            spec, clean, code_version="pinned"
        ).run()
        assert (
            resumed.canonical_digest() == baseline.canonical_digest()
        )
