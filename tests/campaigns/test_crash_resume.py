"""Campaign crash-resume: SIGKILL at every stage boundary, both backends.

The acceptance contract of the campaign subsystem: chaos-driven
``die`` at *any* stage boundary (``os._exit`` in the orchestrator — a
SIGKILL-equivalent whole-campaign crash), followed by
``campaign --resume``, yields a final campaign result byte-identical
to an uninterrupted run with **zero completed stages re-executed** —
on the serial and the process-pool backend alike.  A second driver
kills the orchestrator *inside* a sweep stage to prove resume
re-enters half-done stages through the sweep's own point-level
journal.

Each scenario runs in a fresh interpreter via a driver script (the
crash must take down a real process, not a mocked one).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.resilience import CHAOS_EXIT_CODE

STAGES = ("a", "b", "c", "d")
BACKENDS = ("serial", "process")

#: Driver: a diamond campaign of file-instrumented trivial stages.
#: argv: workdir backend mode [kill_stage]
#: mode "kill" runs with chaos die at kill_stage's boundary and is
#: expected to hard-exit with CHAOS_EXIT_CODE; mode "resume" continues
#: chaos-free; mode "clean" is the uninterrupted baseline.
_DIAMOND_DRIVER = """
import json, os, sys
from pathlib import Path

from repro.campaigns import CampaignEngine, CampaignSpec, StageSpec, STEPS
from repro.experiments.resilience import ChaosSpec

workdir = Path(sys.argv[1])
backend = sys.argv[2]
mode = sys.argv[3]  # "kill", "resume", or "clean"
kill_stage = sys.argv[4] if len(sys.argv) > 4 else None


@STEPS.register("d.add")
def _add(ctx):
    counts = Path(ctx.state_dir) / "counts"
    counts.mkdir(exist_ok=True)
    with open(counts / f"{ctx.stage}.runs", "a") as handle:
        handle.write(f"{os.getpid()}\\n")
        handle.flush()
        os.fsync(handle.fileno())
    return ctx.param("x", 0) + sum(
        ctx.upstream[dep] for dep in sorted(ctx.upstream)
    ) + ctx.seed % 97


spec = CampaignSpec(name="crash-diamond", seed=5, stages=(
    StageSpec(name="a", step="d.add", params={"x": 1}),
    StageSpec(name="b", step="d.add", params={"x": 2}, after=("a",)),
    StageSpec(name="c", step="d.add", params={"x": 3}, after=("a",)),
    StageSpec(name="d", step="d.add", params={"x": 4}, after=("b", "c")),
))
chaos = (
    ChaosSpec(stage_plan={kill_stage: ("die",)}) if mode == "kill" else None
)
state = workdir / "state" if mode != "clean" else workdir / "clean"
engine = CampaignEngine(
    spec, state, backend=backend, workers=2, chaos=chaos,
    code_version="pinned",
)
result = engine.run(resume=(mode == "resume"))
(workdir / f"result-{mode}.json").write_text(json.dumps({
    "digest": result.canonical_digest(),
    "resumed": sorted(result.resumed_stages()),
    "statuses": {n: result.outcomes[n].status for n in result.order},
}))
"""


def _run_driver(driver, workdir, backend, mode, kill_stage=None):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    argv = [sys.executable, str(driver), str(workdir), backend, mode]
    if kill_stage is not None:
        argv.append(kill_stage)
    return subprocess.run(argv, env=env, timeout=120)


def _journaled_ok(workdir, state="state"):
    """Stage names the campaign journal records as completed ok."""
    journaled = set()
    for path in (Path(workdir) / state).glob("*.campaign.jsonl"):
        for line in path.read_text(encoding="utf-8").splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail from the kill
            if record.get("status") == "ok":
                journaled.add(record["stage"])
    return journaled


def _counts(workdir, state="state"):
    counts = {}
    directory = Path(workdir) / state / "counts"
    if directory.is_dir():
        for path in directory.glob("*.runs"):
            counts[path.name.split(".")[0]] = len(
                path.read_text().splitlines()
            )
    return counts


class TestDieAtEveryStageBoundary:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kill_stage", STAGES)
    def test_resume_after_stage_boundary_kill(
        self, tmp_path, backend, kill_stage
    ):
        driver = tmp_path / "driver.py"
        driver.write_text(_DIAMOND_DRIVER)

        killed = _run_driver(
            driver, tmp_path, backend, "kill", kill_stage
        )
        # The chaos die is an os._exit at the stage boundary — the
        # whole campaign dies with the chaos exit code, no result.
        assert killed.returncode == CHAOS_EXIT_CODE
        assert not (tmp_path / "result-kill.json").exists()
        runs_before = _counts(tmp_path)
        assert runs_before.get(kill_stage, 0) == 0
        # What the journal promised before the kill is the resume
        # contract: *completed* (journaled ok) stages never re-run.
        # A stage merely in flight when the orchestrator died (pool
        # backend) legitimately re-executes.
        journaled = _journaled_ok(tmp_path)
        assert kill_stage not in journaled

        resumed = _run_driver(driver, tmp_path, backend, "resume")
        assert resumed.returncode == 0
        report = json.loads(
            (tmp_path / "result-resume.json").read_text()
        )
        assert all(
            status == "ok" for status in report["statuses"].values()
        )
        runs_after = _counts(tmp_path)
        for stage in journaled:
            assert runs_after[stage] == runs_before[stage] == 1
        assert set(report["resumed"]) == journaled

        clean = _run_driver(driver, tmp_path, backend, "clean")
        assert clean.returncode == 0
        baseline = json.loads(
            (tmp_path / "result-clean.json").read_text()
        )
        assert report["digest"] == baseline["digest"]

    def test_backends_agree_byte_for_byte(self, tmp_path):
        driver = tmp_path / "driver.py"
        driver.write_text(_DIAMOND_DRIVER)
        digests = set()
        for backend in BACKENDS:
            workdir = tmp_path / backend
            workdir.mkdir()
            assert (
                _run_driver(driver, workdir, backend, "clean").returncode
                == 0
            )
            digests.add(
                json.loads(
                    (workdir / "result-clean.json").read_text()
                )["digest"]
            )
        assert len(digests) == 1


#: Driver for the mid-sweep kill: the campaign's middle stage is a
#: real journaled sweep whose runner SIGKILLs its own process at one
#: point (sentinel-gated), taking the serial orchestrator down mid-
#: stage.  Resume must re-enter the sweep through its point journal.
_MIDSWEEP_DRIVER = """
import json, os, signal, sys
from pathlib import Path

from repro.campaigns import CampaignEngine, CampaignSpec, StageSpec, STEPS
from repro.experiments.resilience import FailurePolicy
from repro.experiments.sweep import SweepCache, SweepSpec, run_sweep

workdir = Path(sys.argv[1])
mode = sys.argv[3]  # "kill" or "resume" (argv[2] = backend, unused)


def runner(params, seed):
    marks = workdir / "points"
    marks.mkdir(exist_ok=True)
    with open(marks / f"p{params['i']}.runs", "a") as handle:
        handle.write(f"{os.getpid()}\\n")
        handle.flush()
        os.fsync(handle.fileno())
    sentinel = workdir / "kill.sentinel"
    if params["i"] == 3 and sentinel.exists():
        sentinel.unlink()
        os.kill(os.getpid(), signal.SIGKILL)
    return params["i"] * 10 + seed % 7


@STEPS.register("d.sweep")
def _sweep(ctx):
    sweep_dir = Path(ctx.state_dir) / "sweeps" / ctx.stage
    result = run_sweep(
        SweepSpec("mid-sweep", axes={"i": list(range(6))}),
        runner,
        workers=1,
        cache=SweepCache(sweep_dir, code_version="pinned"),
        policy=FailurePolicy(on_error="collect"),
        journal=sweep_dir,
        resume=True,
    )
    return {"values": result.values,
            "resumed": [o.resumed for o in result.outcomes]}


@STEPS.register("d.const")
def _const(ctx):
    counts = Path(ctx.state_dir) / "counts"
    counts.mkdir(exist_ok=True)
    with open(counts / f"{ctx.stage}.runs", "a") as handle:
        handle.write("x\\n")
    return ctx.param("x", 0)


spec = CampaignSpec(name="mid-sweep", seed=2, stages=(
    StageSpec(name="pre", step="d.const", params={"x": 7}),
    StageSpec(name="grid", step="d.sweep", after=("pre",)),
    StageSpec(name="post", step="d.const", params={"x": 9},
              after=("grid",)),
))
if mode == "kill":
    (workdir / "kill.sentinel").touch()
engine = CampaignEngine(
    spec, workdir / "state", code_version="pinned"
)
result = engine.run(resume=(mode == "resume"))
(workdir / f"result-{mode}.json").write_text(json.dumps({
    "digest": result.canonical_digest(),
    "resumed": sorted(result.resumed_stages()),
    "grid": result.values["grid"],
}))
"""


class TestMidSweepKill:
    def test_resume_reenters_sweep_at_point_granularity(self, tmp_path):
        driver = tmp_path / "driver.py"
        driver.write_text(_MIDSWEEP_DRIVER)

        killed = _run_driver(driver, tmp_path, "serial", "kill")
        assert killed.returncode == -9 or killed.returncode == 137
        assert not (tmp_path / "result-kill.json").exists()
        points_dir = tmp_path / "points"
        runs_before = {
            path.name: len(path.read_text().splitlines())
            for path in points_dir.glob("*.runs")
        }
        # Points 0..3 started before the kill at point 3.
        assert runs_before.get("p3.runs") == 1
        assert runs_before.get("p0.runs") == 1

        resumed = _run_driver(driver, tmp_path, "serial", "resume")
        assert resumed.returncode == 0
        report = json.loads(
            (tmp_path / "result-resume.json").read_text()
        )
        runs_after = {
            path.name: len(path.read_text().splitlines())
            for path in points_dir.glob("*.runs")
        }
        # Pre-kill points re-entered through the sweep's own journal:
        # completed points 0-2 never re-ran; only the killed point 3
        # and the never-started tail executed on resume.
        for name in ("p0.runs", "p1.runs", "p2.runs"):
            assert runs_after[name] == 1
        assert runs_after["p3.runs"] == 2
        # The completed sweep stage carries every point's value, and
        # the completed `pre` stage was replayed, not re-executed.
        assert report["grid"]["values"] == [
            i * 10 + _point_seed("mid-sweep", i) % 7 for i in range(6)
        ]
        assert "pre" in report["resumed"]
        pre_runs = (
            (tmp_path / "state" / "counts" / "pre.runs")
            .read_text()
            .splitlines()
        )
        assert len(pre_runs) == 1


def _point_seed(experiment_id: str, i: int) -> int:
    from repro.experiments.sweep import SweepSpec

    spec = SweepSpec(experiment_id, axes={"i": list(range(6))})
    points = spec.points()
    return spec.seed_for(points[i].params, points[i].replication)
