"""Campaign spec and DAG validation tests."""

import pytest

from repro.campaigns import (
    CampaignDAG,
    CampaignSpec,
    StageSpec,
    list_campaigns,
    load_campaign,
)
from repro.errors import ConfigurationError


class TestStageSpec:
    def test_policy_translation(self):
        stage = StageSpec(
            name="s",
            step="t.add",
            retries=2,
            timeout_seconds=5.0,
            on_error="collect",
            backoff_seconds=0.5,
        )
        policy = stage.policy()
        assert policy.max_attempts == 3
        assert policy.timeout_seconds == 5.0
        assert policy.collects
        assert policy.backoff_seconds == 0.5

    def test_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            StageSpec(name="", step="t.add")
        with pytest.raises(ConfigurationError):
            StageSpec(name="a/b", step="t.add")
        with pytest.raises(ConfigurationError):
            StageSpec(name="s", step="")
        with pytest.raises(ConfigurationError):
            StageSpec(name="s", step="t.add", retries=-1)
        with pytest.raises(ConfigurationError):
            StageSpec(name="s", step="t.add", on_error="explode")

    def test_round_trip(self):
        stage = StageSpec(
            name="s",
            step="t.add",
            params={"x": 3},
            after=("a", "b"),
            retries=1,
        )
        assert StageSpec.from_dict(stage.to_dict()) == stage

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            StageSpec.from_dict({"name": "s", "step": "t.add", "nope": 1})


class TestCampaignSpec:
    def test_round_trips_dict_json_toml(self, diamond):
        assert CampaignSpec.from_dict(diamond.to_dict()) == diamond
        assert CampaignSpec.from_json(diamond.to_json()) == diamond

    def test_toml_parsing(self):
        spec = CampaignSpec.from_toml(
            """
            name = "demo"
            seed = 11

            [[stages]]
            name = "first"
            step = "t.add"
            [stages.params]
            x = 1

            [[stages]]
            name = "second"
            step = "t.add"
            after = ["first"]
            retries = 2
            """
        )
        assert spec.seed == 11
        assert [s.name for s in spec.stages] == ["first", "second"]
        assert spec.stage("second").retries == 2

    def test_invalid_toml_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_toml("name = [unclosed")

    def test_needs_stages_and_name(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="empty", stages=())
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                name="", stages=(StageSpec(name="a", step="t.add"),)
            )

    def test_unknown_stage_lookup_rejected(self, diamond):
        with pytest.raises(ConfigurationError):
            diamond.stage("nope")


class TestCampaignDAG:
    def test_deterministic_topological_order(self, diamond):
        assert diamond.dag().order == ["a", "b", "c", "d"]

    def test_declaration_order_breaks_ties(self):
        spec = CampaignSpec(
            name="ties",
            stages=(
                StageSpec(name="z", step="t.add"),
                StageSpec(name="a", step="t.add"),
                StageSpec(name="m", step="t.add", after=("z", "a")),
            ),
        )
        assert spec.dag().order == ["z", "a", "m"]

    def test_downstream_cone(self, diamond):
        dag = diamond.dag()
        assert dag.downstream_cone("a") == {"b", "c", "d"}
        assert dag.downstream_cone("b") == {"d"}
        assert dag.downstream_cone("d") == set()

    def test_cycle_rejected(self):
        with pytest.raises(ConfigurationError, match="cycle"):
            CampaignDAG(
                (
                    StageSpec(name="a", step="t.add", after=("b",)),
                    StageSpec(name="b", step="t.add", after=("a",)),
                )
            )

    def test_self_dependency_rejected(self):
        with pytest.raises(ConfigurationError, match="itself"):
            CampaignDAG(
                (StageSpec(name="a", step="t.add", after=("a",)),)
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            CampaignDAG(
                (StageSpec(name="a", step="t.add", after=("ghost",)),)
            )

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            CampaignDAG(
                (
                    StageSpec(name="a", step="t.add"),
                    StageSpec(name="a", step="t.add"),
                )
            )


class TestLoadCampaign:
    def test_packaged_specs_load_and_validate(self):
        names = list_campaigns()
        assert "e3-workflow" in names
        for name in names:
            spec = load_campaign(name)
            assert spec.name == name
            assert spec.dag().order

    def test_load_from_toml_path(self, tmp_path, diamond):
        # TOML round trip goes through the dict form.
        path = tmp_path / "campaign.json"
        path.write_text(diamond.to_json())
        assert load_campaign(path) == diamond

    def test_load_from_mapping_and_identity(self, diamond):
        assert load_campaign(diamond) is diamond
        assert load_campaign(diamond.to_dict()) == diamond

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="packaged"):
            load_campaign("no-such-campaign")
