"""Campaign engine tests: execution, retries, cone-skips, resume."""

import pytest

from repro.campaigns import (
    CampaignEngine,
    CampaignSpec,
    StageSpec,
    create_backend,
    stage_seed,
)
from repro.campaigns.journal import STATUS_SKIPPED
from repro.errors import CampaignError, ConfigurationError, JournalLockedError
from repro.experiments.resilience import ChaosSpec

from tests.campaigns.conftest import diamond_campaign, marker_count


def run(spec, tmp_path, resume=False, **kwargs):
    kwargs.setdefault("code_version", "pinned")
    return CampaignEngine(spec, tmp_path, **kwargs).run(resume=resume)


class TestExecution:
    def test_values_flow_through_the_dag(self, diamond, tmp_path):
        result = run(diamond, tmp_path)
        assert result.ok
        # a=1, b=1+2, c=1+3, d=3+4+4
        assert result.values == {"a": 1, "b": 3, "c": 4, "d": 11}
        assert result.order == ["a", "b", "c", "d"]

    def test_each_stage_executes_exactly_once(self, diamond, tmp_path):
        run(diamond, tmp_path)
        for stage in "abcd":
            assert marker_count(tmp_path, stage, "completed") == 1

    def test_stage_seeds_are_stable_and_distinct(self):
        seeds = {
            stage: stage_seed(3, "diamond", stage) for stage in "abcd"
        }
        assert len(set(seeds.values())) == 4
        assert seeds["a"] == stage_seed(3, "diamond", "a")
        assert stage_seed(4, "diamond", "a") != seeds["a"]

    def test_unknown_step_fails_the_stage(self, tmp_path):
        spec = CampaignSpec(
            name="bad-step",
            stages=(StageSpec(name="a", step="no.such.step"),),
        )
        with pytest.raises(CampaignError):
            run(spec, tmp_path)

    def test_unknown_backend_rejected(self, diamond, tmp_path):
        with pytest.raises(ConfigurationError, match="backend"):
            CampaignEngine(diamond, tmp_path, backend="gpu-farm")


class TestRetries:
    def test_flaky_stage_retries_to_success(self, tmp_path):
        spec = diamond_campaign(
            b={"step": "t.flaky", "params": {"fail_times": 2, "x": 9},
               "after": ("a",), "retries": 3},
        )
        result = run(spec, tmp_path)
        assert result.ok
        assert result.outcomes["b"].attempts == 3
        assert result.values["b"] == 9

    def test_exhausted_policy_raises_by_default(self, tmp_path):
        spec = diamond_campaign(b={"step": "t.fail", "after": ("a",)})
        with pytest.raises(CampaignError) as info:
            run(spec, tmp_path)
        assert info.value.outcome.stage == "b"
        assert "always fails" in (info.value.outcome.error or "")

    def test_collect_skips_only_the_downstream_cone(self, tmp_path):
        spec = diamond_campaign(
            b={"step": "t.fail", "after": ("a",), "on_error": "collect"},
        )
        result = run(spec, tmp_path)
        assert not result.ok
        assert result.outcomes["b"].status == "failed"
        assert result.outcomes["d"].status == STATUS_SKIPPED
        # The independent branch kept running.
        assert result.outcomes["c"].ok
        assert result.values["c"] == 4
        assert marker_count(tmp_path, "c", "completed") == 1
        assert marker_count(tmp_path, "d", "started") == 0

    def test_timeout_counts_as_terminal_timed_out(self, tmp_path):
        spec = diamond_campaign(
            b={
                "step": "t.sleep",
                "params": {"seconds": 30.0},
                "after": ("a",),
                "timeout_seconds": 0.5,
                "on_error": "collect",
            },
        )
        result = run(spec, tmp_path)
        assert result.outcomes["b"].status == "timed_out"
        assert result.outcomes["d"].status == STATUS_SKIPPED
        assert result.outcomes["c"].ok


class TestChaos:
    def test_stage_chaos_raise_is_retried(self, diamond, tmp_path):
        spec = diamond_campaign(b={"after": ("a",), "retries": 1})
        chaos = ChaosSpec(stage_plan={"b": ("raise", "ok")})
        result = run(spec, tmp_path, chaos=chaos)
        assert result.ok
        assert result.outcomes["b"].attempts == 2
        # Chaos is injected before dispatch: the failed attempt never
        # reached the step.
        assert marker_count(tmp_path, "b", "started") == 1

    def test_stage_chaos_exhausts_policy(self, tmp_path):
        spec = diamond_campaign(
            b={"after": ("a",), "on_error": "collect"},
        )
        chaos = ChaosSpec(stage_plan={"b": ("raise",)})
        result = run(spec, tmp_path, chaos=chaos)
        assert result.outcomes["b"].status == "failed"
        assert "chaos" in result.outcomes["b"].error
        assert marker_count(tmp_path, "b", "started") == 0

    def test_chaos_does_not_perturb_values(self, tmp_path):
        clean = run(diamond_campaign(), tmp_path / "clean")
        spec = diamond_campaign(b={"after": ("a",), "retries": 2})
        chaos = ChaosSpec(stage_plan={"b": ("raise", "raise", "ok")})
        chaotic = run(spec, tmp_path / "chaotic", chaos=chaos)
        assert clean.canonical_digest() == chaotic.canonical_digest()


class TestResume:
    def test_resume_reexecutes_zero_completed_stages(
        self, diamond, tmp_path
    ):
        first = run(diamond, tmp_path)
        second = run(diamond, tmp_path, resume=True)
        assert second.ok
        assert second.resumed_stages() == ["a", "b", "c", "d"]
        assert second.canonical_digest() == first.canonical_digest()
        for stage in "abcd":
            assert marker_count(tmp_path, stage, "started") == 1

    def test_fresh_run_truncates_the_journal(self, diamond, tmp_path):
        run(diamond, tmp_path)
        result = run(diamond, tmp_path, resume=False)
        assert result.resumed_stages() == []
        for stage in "abcd":
            assert marker_count(tmp_path, stage, "started") == 2

    def test_interrupted_run_resumes_from_the_boundary(self, tmp_path):
        spec = diamond_campaign(
            c={"step": "t.interrupt_once", "params": {"x": 3},
               "after": ("a",)},
        )
        (tmp_path / "c.sentinel").parent.mkdir(exist_ok=True)
        (tmp_path / "c.sentinel").touch()
        with pytest.raises(KeyboardInterrupt):
            run(spec, tmp_path)
        # a and b journaled before the interrupt; c never completed.
        resumed = run(spec, tmp_path, resume=True)
        assert resumed.ok
        assert set(resumed.resumed_stages()) >= {"a"}
        assert marker_count(tmp_path, "a", "started") == 1
        assert marker_count(tmp_path, "c", "completed") == 1
        # Byte-identity vs the same spec run uninterrupted (no
        # sentinel, so the interrupting stage completes first try).
        baseline = run(spec, tmp_path / "clean")
        assert resumed.canonical_digest() == baseline.canonical_digest()

    def test_resumed_failure_replays_without_reexecution(self, tmp_path):
        spec = diamond_campaign(
            b={"step": "t.fail", "after": ("a",), "on_error": "collect"},
        )
        run(spec, tmp_path)
        assert marker_count(tmp_path, "b", "started") == 1
        result = run(spec, tmp_path, resume=True)
        assert result.outcomes["b"].status == "failed"
        assert result.outcomes["b"].resumed
        assert result.outcomes["d"].status == STATUS_SKIPPED
        assert marker_count(tmp_path, "b", "started") == 1

    def test_missing_result_pickle_forces_reexecution(
        self, diamond, tmp_path
    ):
        first = run(diamond, tmp_path)
        engine = CampaignEngine(diamond, tmp_path, code_version="pinned")
        engine._result_path("b").unlink()
        second = engine.run(resume=True)
        assert second.ok
        assert "b" not in second.resumed_stages()
        assert marker_count(tmp_path, "b", "started") == 2
        assert second.canonical_digest() == first.canonical_digest()

    def test_code_version_change_starts_fresh(self, diamond, tmp_path):
        run(diamond, tmp_path, code_version="v1")
        result = run(
            diamond, tmp_path, resume=True, code_version="v2"
        )
        assert result.resumed_stages() == []
        for stage in "abcd":
            assert marker_count(tmp_path, stage, "started") == 2


class TestBackends:
    def test_process_backend_matches_serial_byte_for_byte(
        self, tmp_path
    ):
        spec = diamond_campaign(
            b={"step": "t.seeded", "after": ("a",)},
            c={"step": "t.seeded", "after": ("a",)},
            d={"step": "t.seeded", "after": ("b", "c")},
        )
        serial = run(spec, tmp_path / "serial", backend="serial")
        pooled = run(
            spec, tmp_path / "pool", backend="process", workers=2
        )
        assert serial.ok and pooled.ok
        assert serial.canonical_digest() == pooled.canonical_digest()
        assert pooled.backend == "process"

    def test_process_backend_resumes_serial_state(self, tmp_path):
        spec = diamond_campaign()
        first = run(spec, tmp_path, backend="serial")
        second = run(
            spec, tmp_path, resume=True, backend="process", workers=2
        )
        assert second.resumed_stages() == ["a", "b", "c", "d"]
        assert second.canonical_digest() == first.canonical_digest()

    def test_backend_instances_are_accepted(self, diamond, tmp_path):
        backend = create_backend("serial")
        result = run(diamond, tmp_path, backend=backend)
        assert result.ok


class TestJournalGuard:
    def test_second_writer_is_locked_out(self, diamond, tmp_path):
        engine = CampaignEngine(diamond, tmp_path, code_version="pinned")
        journal = engine.journal()
        journal.acquire()
        try:
            rival = CampaignEngine(
                diamond, tmp_path, code_version="pinned"
            )
            with pytest.raises(JournalLockedError):
                rival.run()
        finally:
            journal.close()

    def test_status_reads_without_locking(self, diamond, tmp_path):
        engine = CampaignEngine(diamond, tmp_path, code_version="pinned")
        before = engine.status()
        assert before["completed"] == 0
        assert set(before["stages"]) == {"a", "b", "c", "d"}
        engine.run()
        after = engine.status()
        assert after["completed"] == 4
        assert all(
            entry["status"] == "ok" for entry in after["stages"].values()
        )
