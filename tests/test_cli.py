"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("E1", "E4", "E7"):
            assert experiment_id in output


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "E1"]) == 0
        output = capsys.readouterr().out
        assert "Fig 1" in output
        assert "[PASS]" in output

    def test_run_markdown(self, capsys):
        assert main(["run", "E1", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert "### E1" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"])

    def test_custom_seed(self, capsys):
        assert main(["run", "E1", "--seed", "5"]) == 0


class TestSweep:
    def test_sweep_single_experiment(self, capsys):
        assert main(["sweep", "E4"]) == 0
        output = capsys.readouterr().out
        assert "Virtual QPUs" in output
        assert "[PASS]" in output
        assert "[sweep] E4" in output

    def test_sweep_with_workers_and_cache(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert (
            main(
                [
                    "sweep",
                    "E7",
                    "--workers",
                    "2",
                    "--cache-dir",
                    str(cache_dir),
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert list(cache_dir.glob("*.pkl"))
        # Warm re-run: every point served from the cache, same output.
        assert (
            main(["sweep", "E7", "--cache-dir", str(cache_dir)]) == 0
        )
        second = capsys.readouterr().out

        def tables(text):
            return [
                line
                for line in text.splitlines()
                if not line.startswith("[sweep]")
            ]

        assert tables(first) == tables(second)

    def test_sweep_rejects_non_sweepable(self):
        with pytest.raises(SystemExit):
            main(["sweep", "E1"])

    def test_sweep_retries_absorb_first_attempt_chaos(self, capsys):
        # Every point's first attempt raises; --retries 1 recovers all
        # of them, so the run is indistinguishable from a clean one.
        assert (
            main(
                [
                    "sweep",
                    "E7",
                    "--retries",
                    "1",
                    "--chaos",
                    '{"seed": 7, "raise_rate": 1.0}',
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "[PASS]" in output
        assert "sweep failures" not in output

    def test_sweep_collect_prints_failure_table_and_fails(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "E7",
                    "--on-error",
                    "collect",
                    "--chaos",
                    '{"plan": {"0": ["raise"]}}',
                ]
            )
            == 1
        )
        output = capsys.readouterr().out
        assert "sweep failures (1 of 6 points)" in output
        assert "ChaosError" in output
        assert "[FAIL] all sweep points completed" in output

    def test_sweep_raise_mode_reports_and_exits_nonzero(self, capsys):
        assert (
            main(
                ["sweep", "E7", "--chaos", '{"plan": {"0": ["raise"]}}']
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "error: E7:" in err
        assert "--on-error collect" in err

    def test_sweep_resume_requires_cache_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "E7", "--resume"])
        assert excinfo.value.code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_sweep_rejects_negative_retries(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "E7", "--retries", "-1"])
        assert excinfo.value.code == 2

    def test_sweep_rejects_malformed_chaos(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "E7", "--chaos", '{"rais_rate": 1.0}'])
        assert excinfo.value.code == 2
        assert "--chaos" in capsys.readouterr().err

    def test_sweep_resume_skips_journaled_points(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        args = ["sweep", "E7", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        capsys.readouterr()
        assert list(cache_dir.glob("*.journal.jsonl"))
        assert main(args + ["--resume"]) == 0
        output = capsys.readouterr().out
        assert "[PASS]" in output


class TestScenario:
    def test_list_shows_presets(self, capsys):
        assert main(["scenario", "list"]) == 0
        output = capsys.readouterr().out
        for name in (
            "baseline-32",
            "multitenant-vqpu",
            "failure-storm",
            "bursty-campaign",
            "large-1k",
        ):
            assert name in output

    def test_describe_prints_pure_json_with_table_on_stderr(
        self, capsys
    ):
        import json

        assert main(["scenario", "describe", "failure-storm"]) == 0
        captured = capsys.readouterr()
        data = json.loads(captured.out)  # stdout must stay parseable
        assert data["name"] == "failure-storm"
        assert data["faults"]["events"]
        assert "superconducting-0" in captured.err
        assert "routing=fastest_completion" in captured.err

    def test_describe_mixed_fleet_lists_every_device(self, capsys):
        assert main(["scenario", "describe", "mixed-fleet"]) == 0
        table = capsys.readouterr().err
        for device in (
            "superconducting-0",
            "superconducting-1",
            "trapped_ion-0",
            "neutral_atom-0",
        ):
            assert device in table

    def test_describe_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "describe", "no-such-preset"])


class TestFleet:
    def test_policies_lists_all_routing_policies(self, capsys):
        from repro.quantum.fleet import ROUTING_POLICIES

        assert main(["fleet", "policies"]) == 0
        output = capsys.readouterr().out
        for policy in ROUTING_POLICIES:
            assert policy in output

    def test_devices_renders_preset_fleet(self, capsys):
        assert main(["fleet", "devices", "large-1k"]) == 0
        output = capsys.readouterr().out
        assert "superconducting-3" in output
        assert "vqpus" in output

    def test_devices_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "devices", "no-such-preset"])

    def test_fleet_without_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main(["fleet"])

    def test_run_preset(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "--preset",
                    "baseline-32",
                    "--horizon",
                    "600",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert '"utilisation_classical"' in output
        assert "[scenario] baseline-32" in output

    def test_run_json_file(self, capsys, tmp_path):
        from repro.scenarios import get_scenario

        path = tmp_path / "facility.json"
        path.write_text(get_scenario("baseline-32").to_json())
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "--json",
                    str(path),
                    "--horizon",
                    "600",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        assert '"seed": 3' in capsys.readouterr().out

    def test_run_missing_file_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run", "--json", "/no/such/file.json"])

    def test_run_needs_a_source(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run"])


class TestTrace:
    def test_info_summarises_packaged_sample(self, capsys):
        import json

        assert main(["trace", "info", "sample-32n.swf"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["jobs"] == 64
        assert data["nodes_max"] == 8
        assert data["offered_load_32_nodes"] > 0.5
        assert 1 <= data["busiest_hour_jobs"] <= 64

    def test_info_missing_file_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "info", "no-such.swf"])

    def test_replay_packaged_sample(self, capsys):
        import json

        assert (
            main(
                [
                    "trace",
                    "replay",
                    "sample-32n.swf",
                    "--horizon",
                    "1800",
                    "--limit",
                    "10",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        data = json.loads(output[: output.rindex("}") + 1])
        assert data["trace_jobs"] > 0
        assert "[trace] sample-32n.swf" in output

    def test_replay_scales_and_routes(self, capsys):
        import json

        assert (
            main(
                [
                    "trace",
                    "replay",
                    "sample-32n.swf",
                    "--time-scale",
                    "0.5",
                    "--qpu-fraction",
                    "1.0",
                    "--horizon",
                    "1800",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        data = json.loads(output[: output.rindex("}") + 1])
        assert data["utilisation_quantum"] > 0.0

    def test_replay_preserves_preset_replay_rules(self, capsys):
        """Flags left unset keep the preset trace's own settings."""
        import json

        from repro.scenarios import (
            ScenarioSpec,
            TopologySpec,
            TraceSpec,
            WorkloadSpec,
            register_scenario,
        )

        from repro.scenarios import registry

        register_scenario(
            ScenarioSpec(
                name="cli-trace-merge",
                description="preset with its own replay rules",
                topology=TopologySpec(classical_nodes=4),
                workload=WorkloadSpec(
                    horizon=3600.0,
                    trace=TraceSpec(path="sample-32n.swf", limit=5),
                ),
            ),
            replace=True,
        )
        try:
            assert (
                main(
                    [
                        "trace",
                        "replay",
                        "sample-32n.swf",
                        "--preset",
                        "cli-trace-merge",
                        "--horizon",
                        "1800",
                    ]
                )
                == 0
            )
            output = capsys.readouterr().out
            data = json.loads(output[: output.rindex("}") + 1])
            # The preset's limit=5 survives because --limit was not
            # given (the sample has 8 arrivals inside 1800 s without
            # it).
            assert data["trace_jobs"] == 5
        finally:
            registry._REGISTRY.pop("cli-trace-merge", None)

    def test_replay_needs_known_preset(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "trace",
                    "replay",
                    "sample-32n.swf",
                    "--preset",
                    "no-such-preset",
                ]
            )

    def test_trace_needs_subcommand(self):
        with pytest.raises(SystemExit):
            main(["trace"])


#: A minimal two-stage campaign over simulation-free built-in steps —
#: fast enough for CLI round trips, real enough to journal and resume.
_TINY_CAMPAIGN = """
name = "cli-tiny"
description = "facility summary plus report"
seed = 3

[[stages]]
name = "shape"
step = "workload.summary"
[stages.params]
preset = "baseline-32"

[[stages]]
name = "report"
step = "report.render"
after = ["shape"]
"""


class TestCampaign:
    @pytest.fixture
    def tiny_spec(self, tmp_path):
        path = tmp_path / "tiny.toml"
        path.write_text(_TINY_CAMPAIGN)
        return path

    def test_list_names_packaged_campaigns(self, capsys):
        assert main(["campaign", "list"]) == 0
        assert "e3-workflow" in capsys.readouterr().out

    def test_describe_prints_spec_json_and_order(self, capsys, tiny_spec):
        assert main(["campaign", "describe", str(tiny_spec)]) == 0
        captured = capsys.readouterr()
        import json

        spec = json.loads(captured.out)
        assert spec["name"] == "cli-tiny"
        assert "shape -> report" in captured.err

    def test_run_renders_table_and_digest(self, capsys, tmp_path, tiny_spec):
        state = tmp_path / "state"
        assert (
            main(
                [
                    "campaign",
                    "run",
                    str(tiny_spec),
                    "--state-dir",
                    str(state),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "campaign 'cli-tiny'" in output
        assert "shape" in output and "report" in output
        assert "ok=2" in output
        assert "digest" in output

    def test_run_json_prints_canonical_result(
        self, capsys, tmp_path, tiny_spec
    ):
        import json

        assert (
            main(
                [
                    "campaign",
                    "run",
                    str(tiny_spec),
                    "--state-dir",
                    str(tmp_path / "state"),
                    "--json",
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        payload = json.loads(stdout[: stdout.rindex("}") + 1])
        assert payload["campaign"] == "cli-tiny"
        assert payload["stages"]["shape"]["status"] == "ok"

    def test_resume_replays_completed_stages(
        self, capsys, tmp_path, tiny_spec
    ):
        state = tmp_path / "state"
        argv = ["campaign", "run", str(tiny_spec), "--state-dir", str(state)]
        assert main(argv) == 0
        capsys.readouterr()
        argv[1] = "resume"
        assert main(argv) == 0
        output = capsys.readouterr().out
        # Both stages come back from the journal, not re-execution.
        assert output.count("yes") == 2

    def test_status_reports_progress_json(self, capsys, tmp_path, tiny_spec):
        import json

        state = tmp_path / "state"
        argv = [
            "campaign",
            "status",
            str(tiny_spec),
            "--state-dir",
            str(state),
        ]
        assert main(argv) == 0
        before = json.loads(capsys.readouterr().out)
        assert before["completed"] == 0 and before["total"] == 2
        assert (
            main(
                [
                    "campaign",
                    "run",
                    str(tiny_spec),
                    "--state-dir",
                    str(state),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(argv) == 0
        after = json.loads(capsys.readouterr().out)
        assert after["completed"] == 2

    def test_seed_override_changes_the_digest(
        self, capsys, tmp_path, tiny_spec
    ):
        digests = []
        for seed in ("3", "4"):
            argv = [
                "campaign",
                "run",
                str(tiny_spec),
                "--state-dir",
                str(tmp_path / f"state-{seed}"),
                "--seed",
                seed,
            ]
            assert main(argv) == 0
            output = capsys.readouterr().out
            digests.append(output.rsplit("digest", 1)[1])
        assert digests[0] != digests[1]

    def test_failing_campaign_exits_nonzero(self, capsys, tmp_path):
        spec = tmp_path / "bad.toml"
        spec.write_text(
            'name = "bad"\n[[stages]]\nname = "a"\nstep = "no.such.step"\n'
        )
        assert (
            main(
                [
                    "campaign",
                    "run",
                    str(spec),
                    "--state-dir",
                    str(tmp_path / "state"),
                ]
            )
            == 1
        )
        assert "campaign failed" in capsys.readouterr().err

    def test_malformed_chaos_rejected(self, tmp_path, tiny_spec):
        with pytest.raises(SystemExit):
            main(
                [
                    "campaign",
                    "run",
                    str(tiny_spec),
                    "--state-dir",
                    str(tmp_path / "state"),
                    "--chaos",
                    "{not json",
                ]
            )

    def test_unknown_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "campaign",
                    "describe",
                    "no-such-campaign",
                ]
            )

    def test_campaign_needs_subcommand(self):
        with pytest.raises(SystemExit):
            main(["campaign"])


class TestMisc:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
