"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("E1", "E4", "E7"):
            assert experiment_id in output


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "E1"]) == 0
        output = capsys.readouterr().out
        assert "Fig 1" in output
        assert "[PASS]" in output

    def test_run_markdown(self, capsys):
        assert main(["run", "E1", "--markdown"]) == 0
        output = capsys.readouterr().out
        assert "### E1" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "E99"])

    def test_custom_seed(self, capsys):
        assert main(["run", "E1", "--seed", "5"]) == 0


class TestMisc:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
