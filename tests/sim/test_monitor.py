"""Tests for time-weighted values and sample series."""

import pytest

from repro.errors import SimulationError
from repro.sim.monitor import SampleSeries, TimeWeightedValue


class TestTimeWeightedValue:
    def test_integral_of_constant(self, kernel):
        value = TimeWeightedValue(kernel, initial=2.0)
        kernel.timeout(10.0)
        kernel.run()
        assert value.integral() == pytest.approx(20.0)

    def test_step_changes(self, kernel):
        value = TimeWeightedValue(kernel, initial=0.0)

        def proc(k):
            yield k.timeout(5.0)
            value.set(3.0)
            yield k.timeout(5.0)
            value.set(0.0)
            yield k.timeout(5.0)

        kernel.process(proc(kernel))
        kernel.run()
        assert value.integral() == pytest.approx(15.0)
        assert value.time_average() == pytest.approx(1.0)

    def test_add_increments(self, kernel):
        value = TimeWeightedValue(kernel)
        value.add(2.0)
        value.add(3.0)
        assert value.value == 5.0

    def test_history_records_steps_when_opted_in(self, kernel):
        value = TimeWeightedValue(kernel, initial=1.0, record_history=True)

        def proc(k):
            yield k.timeout(2.0)
            value.set(4.0)

        kernel.process(proc(kernel))
        kernel.run()
        assert value.history == [(0.0, 1.0), (2.0, 4.0)]

    def test_history_off_by_default(self, kernel):
        value = TimeWeightedValue(kernel, initial=1.0)
        value.set(2.0)
        assert value.history is None
        # The integral path is unaffected by the missing history.
        kernel.timeout(1.0)
        kernel.run()
        assert value.integral() == pytest.approx(2.0)

    def test_time_average_with_zero_window(self, kernel):
        value = TimeWeightedValue(kernel, initial=7.0)
        assert value.time_average() == 7.0

    def test_integral_before_last_change_rejected(self, kernel):
        value = TimeWeightedValue(kernel)
        kernel.timeout(5.0)
        kernel.run()
        value.set(1.0)
        with pytest.raises(SimulationError):
            value.integral(until=1.0)


class TestSampleSeries:
    def test_empty_series(self):
        series = SampleSeries("empty")
        assert series.count == 0
        assert series.mean == 0.0
        assert series.maximum == 0.0
        assert series.minimum == 0.0
        assert series.percentile(50) == 0.0
        assert series.stdev == 0.0

    def test_mean_and_total(self):
        series = SampleSeries()
        for value in (1.0, 2.0, 3.0):
            series.record(value)
        assert series.count == 3
        assert series.total == pytest.approx(6.0)
        assert series.mean == pytest.approx(2.0)

    def test_extremes(self):
        series = SampleSeries()
        for value in (5.0, -1.0, 3.0):
            series.record(value)
        assert series.maximum == 5.0
        assert series.minimum == -1.0

    def test_percentiles(self):
        series = SampleSeries()
        for value in range(1, 101):
            series.record(float(value))
        assert series.percentile(0) == 1.0
        assert series.percentile(100) == 100.0
        assert series.percentile(50) == pytest.approx(50.5)

    def test_percentile_single_sample(self):
        series = SampleSeries()
        series.record(42.0)
        assert series.percentile(99) == 42.0

    def test_percentile_out_of_range(self):
        series = SampleSeries()
        series.record(1.0)
        with pytest.raises(SimulationError):
            series.percentile(101)

    def test_stdev(self):
        series = SampleSeries()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            series.record(value)
        assert series.stdev == pytest.approx(2.0)

    def test_repr_contains_name(self):
        series = SampleSeries("waits")
        series.record(1.0)
        assert "waits" in repr(series)
