"""Tests for deterministic named random streams."""

from repro.sim.rng import RandomStreams, _derive_seed


class TestDerivation:
    def test_same_inputs_same_seed(self):
        assert _derive_seed(1, "a") == _derive_seed(1, "a")

    def test_different_names_different_seeds(self):
        assert _derive_seed(1, "a") != _derive_seed(1, "b")

    def test_different_roots_different_seeds(self):
        assert _derive_seed(1, "a") != _derive_seed(2, "a")


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_distinct_names_are_independent(self):
        streams = RandomStreams(0)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_instances(self):
        first = RandomStreams(7).stream("arrivals").random(10).tolist()
        second = RandomStreams(7).stream("arrivals").random(10).tolist()
        assert first == second

    def test_adding_stream_does_not_perturb_existing(self):
        solo = RandomStreams(3)
        solo_draws = solo.stream("target").random(5).tolist()

        mixed = RandomStreams(3)
        mixed.stream("other").random(100)  # consume a different stream
        mixed_draws = mixed.stream("target").random(5).tolist()
        assert solo_draws == mixed_draws

    def test_spawn_creates_independent_child(self):
        parent = RandomStreams(5)
        child = parent.spawn("replica-1")
        assert child.seed != parent.seed
        parent_draws = parent.stream("s").random(3).tolist()
        child_draws = child.stream("s").random(3).tolist()
        assert parent_draws != child_draws

    def test_spawn_is_deterministic(self):
        a = RandomStreams(5).spawn("r").stream("s").random(3).tolist()
        b = RandomStreams(5).spawn("r").stream("s").random(3).tolist()
        assert a == b

    def test_repr(self):
        assert "seed=9" in repr(RandomStreams(9))
