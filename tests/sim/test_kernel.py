"""Tests for the simulation kernel: clock, run modes, determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import EmptySchedule, Kernel


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Kernel().now == 0.0

    def test_custom_epoch(self):
        assert Kernel(initial_time=1000.0).now == 1000.0

    def test_time_advances_with_events(self, kernel):
        kernel.timeout(7.5)
        kernel.run()
        assert kernel.now == 7.5

    def test_peek_reports_next_event_time(self, kernel):
        kernel.timeout(3.0)
        kernel.timeout(1.0)
        assert kernel.peek() == 1.0

    def test_peek_on_empty_heap_is_inf(self, kernel):
        assert kernel.peek() == float("inf")


class TestRunModes:
    def test_run_until_empty(self, kernel):
        kernel.timeout(1.0)
        kernel.timeout(2.0)
        kernel.run()
        assert kernel.queued_event_count == 0
        assert kernel.now == 2.0

    def test_run_until_time_sets_clock_exactly(self, kernel):
        kernel.timeout(1.0)
        kernel.run(until=10.0)
        assert kernel.now == 10.0

    def test_run_until_time_processes_due_events_only(self, kernel):
        fired = []

        def proc(k, delay):
            yield k.timeout(delay)
            fired.append(delay)

        kernel.process(proc(kernel, 1.0))
        kernel.process(proc(kernel, 5.0))
        kernel.run(until=3.0)
        assert fired == [1.0]

    def test_run_until_past_time_rejected(self, kernel):
        kernel.run(until=5.0)
        with pytest.raises(SimulationError):
            kernel.run(until=1.0)

    def test_run_until_event_returns_its_value(self, kernel):
        def proc(k):
            yield k.timeout(2.0)
            return "done"

        process = kernel.process(proc(kernel))
        assert kernel.run(until=process) == "done"
        assert kernel.now == 2.0

    def test_run_until_already_processed_event(self, kernel):
        timeout = kernel.timeout(1.0, value="v")
        kernel.run()
        assert kernel.run(until=timeout) == "v"

    def test_run_until_failed_event_raises(self, kernel):
        def proc(k):
            yield k.timeout(1.0)
            raise ValueError("proc failed")

        process = kernel.process(proc(kernel))
        with pytest.raises(ValueError, match="proc failed"):
            kernel.run(until=process)

    def test_run_until_event_that_never_fires_raises(self, kernel):
        pending = kernel.event()
        kernel.timeout(1.0)
        with pytest.raises(SimulationError):
            kernel.run(until=pending)

    def test_step_on_empty_heap_raises(self, kernel):
        with pytest.raises(EmptySchedule):
            kernel.step()

    def test_schedule_into_the_past_rejected(self, kernel):
        event = kernel.event()
        with pytest.raises(SimulationError):
            kernel.schedule(event, delay=-1.0)


class TestDeterminism:
    def _run_workload(self):
        kernel = Kernel()
        log = []

        def worker(k, name, delay, repeats):
            for _ in range(repeats):
                yield k.timeout(delay)
                log.append((k.now, name))

        kernel.process(worker(kernel, "a", 1.5, 4))
        kernel.process(worker(kernel, "b", 2.0, 3))
        kernel.process(worker(kernel, "c", 0.5, 10))
        kernel.run()
        return log

    def test_identical_runs_produce_identical_logs(self):
        assert self._run_workload() == self._run_workload()


class TestFactories:
    def test_process_rejects_non_generator(self, kernel):
        with pytest.raises(SimulationError):
            kernel.process(lambda: None)

    def test_repr_mentions_time(self, kernel):
        kernel.timeout(1.0)
        text = repr(kernel)
        assert "t=" in text and "queued=1" in text


class TestCancellation:
    """Lazy deletion: cancelled entries stay on the heap but are
    skipped, never run callbacks and never advance the clock."""

    def test_cancelled_timeout_does_not_fire(self, kernel):
        fired = []
        timeout = kernel.timeout(5.0)
        timeout.callbacks.append(lambda event: fired.append(event))
        timeout.cancel()
        kernel.run()
        assert fired == []

    def test_cancelled_event_never_advances_clock(self, kernel):
        kernel.timeout(5.0).cancel()
        kernel.run()
        assert kernel.now == 0.0

    def test_queued_event_count_ignores_cancelled(self, kernel):
        keep = kernel.timeout(1.0)
        kernel.timeout(2.0).cancel()
        assert kernel.queued_event_count == 1
        kernel.run()
        assert keep.processed
        assert kernel.queued_event_count == 0

    def test_peek_skips_cancelled_prefix(self, kernel):
        kernel.timeout(1.0).cancel()
        kernel.timeout(2.0).cancel()
        kernel.timeout(3.0)
        assert kernel.peek() == 3.0

    def test_peek_all_cancelled_is_inf(self, kernel):
        kernel.timeout(1.0).cancel()
        assert kernel.peek() == float("inf")

    def test_step_skips_cancelled_entries(self, kernel):
        kernel.timeout(1.0).cancel()
        kernel.timeout(2.0)
        kernel.step()
        assert kernel.now == 2.0

    def test_cancel_twice_is_noop(self, kernel):
        timeout = kernel.timeout(1.0)
        timeout.cancel()
        timeout.cancel()
        assert timeout.cancelled

    def test_cancel_processed_event_rejected(self, kernel):
        timeout = kernel.timeout(1.0)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.cancel(timeout)

    def test_cancel_untriggered_event_rejected(self, kernel):
        event = kernel.event()
        with pytest.raises(SimulationError):
            kernel.cancel(event)

    def test_cancelled_entries_skipped_mid_run(self, kernel):
        order = []

        def canceller(k, victim):
            yield k.timeout(1.0)
            victim.cancel()
            order.append("cancelled")

        def waiter(k):
            yield k.timeout(3.0)
            order.append("survivor")

        victim = kernel.timeout(2.0)
        victim.callbacks.append(lambda event: order.append("victim"))
        kernel.process(canceller(kernel, victim))
        kernel.process(waiter(kernel))
        kernel.run()
        assert order == ["cancelled", "survivor"]
        assert kernel.now == 3.0
