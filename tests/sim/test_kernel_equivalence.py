"""Equivalence suite: fast-path kernel vs the naive seed stepper.

The kernel hot path was rebuilt around packed heap keys, fused
trigger-and-schedule, batched same-timestamp cascade draining and
free-list pooling of internal events.  These tests pin the rebuild to
the original semantics:

- :class:`ReferenceKernel` ports the seed kernel's run discipline —
  one :meth:`~repro.sim.kernel.Kernel.step` per iteration, the time
  bound checked per event, pooling off — and serves as the executable
  specification.  Both kernels drain the *same* heap representation,
  so any divergence in callback order, clock values or process results
  is a real semantic difference, not a representation artefact.
- Property tests drive both kernels with randomized workloads
  (timeouts, process chains, conditions, resources, stores,
  interrupts) and require the full observable traces to be identical.
- Free-list recycling properties prove pooled instances can never leak
  state: a recycled object is only reused after the kernel's refcount
  check showed no user code could still observe it, and reuse resets
  callbacks and values completely.
"""

import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import POOL_CAP, Timeout
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.resources import Resource
from repro.sim.store import Store

# -- naive reference (port of the seed run discipline) -----------------------


class ReferenceKernel(Kernel):
    """Seed-port stepper: one event per iteration, no batching/pooling.

    The seed kernel had no ``cancel``/pooling and ran via repeated
    ``step()`` with the ``until`` bound re-checked per event; this
    class reproduces exactly that control flow on top of the shared
    event structures.
    """

    __slots__ = ()

    def __init__(self, initial_time: float = 0.0) -> None:
        super().__init__(initial_time, pooling=False)

    def run(self, until=None):
        from repro.errors import SimulationError
        from repro.sim.events import Event

        if until is None:
            while self.queued_event_count:
                self.step()
            return None
        if isinstance(until, Event):
            if until.callbacks is None:
                if not until._ok and not until._defused:
                    raise until._value
                return until._value
            fired = []
            until.callbacks.append(fired.append)
            while self.queued_event_count and not fired:
                self.step()
            if not fired:
                raise SimulationError(
                    "simulation ran out of events before the until-event "
                    "fired"
                )
            if not until._ok:
                until._defused = True
                raise until._value
            return until._value
        until = float(until)
        if until < self._now:
            raise SimulationError(
                f"until={until!r} lies in the past (now={self._now!r})"
            )
        while self.peek() <= until:
            self.step()
        self._now = until
        return None


# -- randomized workloads run on both kernels --------------------------------


def _trace_timeout_tree(kernel, trace, delays):
    def spawner(k, remaining, label):
        for index, delay in enumerate(remaining):
            yield k.timeout(delay)
            trace.append(("tick", label, index, k.now))
        trace.append(("done", label, k.now))

    half = len(delays) // 2
    kernel.process(spawner(kernel, delays[:half], "a"))
    kernel.process(spawner(kernel, delays[half:], "b"))


def _trace_conditions(kernel, trace, delays):
    def worker(k):
        timeouts = [k.timeout(delay, value=index)
                    for index, delay in enumerate(delays)]
        result = yield k.all_of(timeouts)
        trace.append(("all", [result[t] for t in timeouts], k.now))
        more = [k.timeout(delay / 2) for delay in delays]
        first = yield k.any_of(more)
        trace.append(("any", len(first), k.now))

    kernel.process(worker(kernel))


def _trace_resources(kernel, trace, delays):
    resource = Resource(kernel, capacity=2)

    def user(k, label, delay):
        with resource.request() as request:
            yield request
            trace.append(("acquired", label, k.now))
            yield k.timeout(delay)
        trace.append(("released", label, k.now))

    for index, delay in enumerate(delays):
        kernel.process(user(kernel, index, delay))


def _trace_store(kernel, trace, delays):
    store = Store(kernel, capacity=2)

    def producer(k):
        for index, delay in enumerate(delays):
            yield k.timeout(delay)
            yield store.put(index)

    def consumer(k):
        for _ in delays:
            item = yield store.get()
            trace.append(("got", item, k.now))

    kernel.process(producer(kernel))
    kernel.process(consumer(kernel))


def _trace_interrupts(kernel, trace, delays):
    from repro.sim.events import Interrupt

    def sleeper(k, label):
        try:
            yield k.timeout(1e9)
            trace.append(("overslept", label, k.now))
        except Interrupt as interrupt:
            trace.append(("interrupted", label, interrupt.cause, k.now))

    def waker(k, victims):
        for index, delay in enumerate(delays):
            yield k.timeout(delay)
            if index < len(victims):
                victims[index].interrupt(cause=index)

    victims = [kernel.process(sleeper(kernel, index))
               for index in range(min(3, len(delays)))]
    kernel.process(waker(kernel, victims))


_WORKLOADS = [
    _trace_timeout_tree,
    _trace_conditions,
    _trace_resources,
    _trace_store,
    _trace_interrupts,
]

_DELAYS = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)


@given(
    workload_index=st.integers(min_value=0, max_value=len(_WORKLOADS) - 1),
    delays=_DELAYS,
    until=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=150.0)
    ),
)
@settings(max_examples=120, deadline=None)
def test_fast_kernel_matches_reference_stepper(workload_index, delays, until):
    """Identical observable traces, clocks and queue counts under any
    workload and run mode, batching/pooling on or off."""
    workload = _WORKLOADS[workload_index]
    traces = []
    clocks = []
    for kernel_class in (Kernel, ReferenceKernel):
        kernel = kernel_class()
        trace = []
        workload(kernel, trace, list(delays))
        kernel.run(until=until)
        traces.append(trace)
        clocks.append((kernel.now, kernel.queued_event_count))
    assert traces[0] == traces[1]
    assert clocks[0] == clocks[1]


@given(delays=_DELAYS, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_pooling_on_and_off_are_byte_identical(delays, seed):
    """The same workload with pooling enabled and disabled yields the
    same trace — recycling is semantically invisible."""
    import random

    traces = []
    for pooling in (True, False):
        kernel = Kernel(pooling=pooling)
        trace = []
        rng = random.Random(seed)

        def worker(k, label):
            for delay in delays:
                yield k.timeout(delay * rng.random())
                trace.append((label, k.now))

        for label in range(3):
            kernel.process(worker(kernel, label))
        kernel.run()
        traces.append(trace)
    assert traces[0] == traces[1]


# -- free-list recycling safety ---------------------------------------------


def _drain_timeouts(kernel, count):
    def ticker(k):
        for _ in range(count):
            yield k.timeout(1.0)

    kernel.process(ticker(kernel))
    kernel.run()


class TestPoolReuse:
    def test_recycled_timeouts_are_reused(self):
        kernel = Kernel(pooling=True)
        _drain_timeouts(kernel, 50)
        pool = kernel._pools.get(Timeout)
        assert pool, "timeout churn should have populated the free list"
        recycled = pool[-1]
        fresh = kernel.timeout(3.0, value="v")
        assert fresh is recycled
        # Reuse fully re-initialises the instance: live callbacks list,
        # the new value, not cancelled.
        assert fresh.callbacks == []
        assert fresh._value == "v"
        assert not fresh.cancelled
        assert kernel.peek() == kernel.now + 3.0

    def test_pool_never_exceeds_cap(self):
        kernel = Kernel(pooling=True)
        _drain_timeouts(kernel, POOL_CAP + 500)
        for pool in kernel._pools.values():
            assert len(pool) <= POOL_CAP

    def test_referenced_events_are_never_recycled(self):
        kernel = Kernel(pooling=True)
        held = []

        def holder(k):
            for index in range(30):
                timeout = k.timeout(1.0, value=index)
                held.append(timeout)
                yield timeout

        kernel.process(holder(kernel))
        kernel.run()
        pool = kernel._pools.get(Timeout, [])
        assert not any(timeout in pool for timeout in held)
        # The held instances keep their identities and final values.
        assert [timeout._value for timeout in held] == list(range(30))

    def test_recycled_process_shells_are_reused(self):
        kernel = Kernel(pooling=True)

        def short(k):
            yield k.timeout(1.0)

        def spawner(k):
            for _ in range(40):
                yield k.process(short(k))

        kernel.process(spawner(kernel))
        kernel.run()
        pool = kernel._pools.get(Process)
        assert pool, "short-lived processes should have been recycled"
        shell = pool[-1]
        # A cleared shell holds no references that could pin memory or
        # leak state into its next incarnation.
        assert shell._generator is None
        assert shell._target is None
        assert shell._value is None
        revived = kernel.process(short(kernel))
        assert revived is shell
        assert revived.is_alive
        kernel.run()
        assert revived.processed

    @given(count=st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_no_stale_callbacks_across_recycling(self, count):
        """A callback attached to one timeout incarnation never fires
        for a later incarnation of the recycled instance."""
        kernel = Kernel(pooling=True)
        fired = []

        def ticker(k):
            for index in range(count):
                timeout = k.timeout(1.0, value=index)
                timeout.callbacks.append(
                    lambda event, index=index: fired.append(
                        (index, event._value)
                    )
                )
                yield timeout

        kernel.process(ticker(kernel))
        kernel.run()
        assert fired == [(index, index) for index in range(count)]

    def test_pooling_disabled_pools_nothing(self):
        kernel = Kernel(pooling=False)
        _drain_timeouts(kernel, 50)
        assert kernel._pools == {}

    def test_refcount_probe_matches_cpython_semantics(self):
        """The recycling gate relies on getrefcount(x) == 2 meaning
        'only the probe frame and the caller's local refer to x'."""
        probe = object()
        assert sys.getrefcount(probe) == 2
