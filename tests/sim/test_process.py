"""Tests for generator-based processes: joins, interrupts, failures."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Interrupt
from repro.sim.kernel import Kernel


class TestBasicExecution:
    def test_return_value_becomes_event_value(self, kernel):
        def proc(k):
            yield k.timeout(1.0)
            return 99

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == 99

    def test_process_without_return_yields_none(self, kernel):
        def proc(k):
            yield k.timeout(1.0)

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value is None

    def test_is_alive_transitions(self, kernel):
        def proc(k):
            yield k.timeout(5.0)

        process = kernel.process(proc(kernel))
        assert process.is_alive
        kernel.run()
        assert not process.is_alive

    def test_yielding_a_process_joins_it(self, kernel):
        def child(k):
            yield k.timeout(3.0)
            return "child-result"

        def parent(k):
            result = yield kernel.process(child(k))
            return ("joined", result, k.now)

        process = kernel.process(parent(kernel))
        kernel.run()
        assert process.value == ("joined", "child-result", 3.0)

    def test_yielding_already_processed_event_continues_immediately(
        self, kernel
    ):
        timeout = kernel.timeout(1.0, value="early")
        kernel.run()

        def proc(k):
            value = yield timeout
            return (value, k.now)

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == ("early", 1.0)

    def test_yielding_non_event_fails_the_process(self, kernel):
        def proc(k):
            yield "not an event"

        process = kernel.process(proc(kernel))
        process.callbacks.append(lambda ev: ev.defuse())
        kernel.run()
        assert not process.ok
        assert isinstance(process.value, SimulationError)

    def test_named_process(self, kernel):
        def proc(k):
            yield k.timeout(1.0)

        process = kernel.process(proc(kernel), name="my-proc")
        assert process.name == "my-proc"
        assert "my-proc" in repr(process)


class TestFailurePropagation:
    def test_uncaught_exception_fails_waiters(self, kernel):
        def child(k):
            yield k.timeout(1.0)
            raise ValueError("child blew up")

        def parent(k):
            try:
                yield kernel.process(child(k))
            except ValueError as error:
                return f"caught: {error}"

        process = kernel.process(parent(kernel))
        kernel.run()
        assert process.value == "caught: child blew up"

    def test_unwatched_crash_propagates_to_run(self, kernel):
        def proc(k):
            yield k.timeout(1.0)
            raise RuntimeError("nobody watches me")

        kernel.process(proc(kernel))
        with pytest.raises(RuntimeError, match="nobody watches me"):
            kernel.run()

    def test_failed_event_throws_into_waiter(self, kernel):
        event = kernel.event()

        def proc(k):
            try:
                yield event
            except KeyError:
                return "caught KeyError"

        def failer(k):
            yield k.timeout(1.0)
            event.fail(KeyError("k"))

        process = kernel.process(proc(kernel))
        kernel.process(failer(kernel))
        kernel.run()
        assert process.value == "caught KeyError"


class TestInterrupts:
    def test_interrupt_delivers_cause(self, kernel):
        def sleeper(k):
            try:
                yield k.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, k.now)

        def interrupter(k, victim):
            yield k.timeout(2.0)
            victim.interrupt("wake up")

        victim = kernel.process(sleeper(kernel))
        kernel.process(interrupter(kernel, victim))
        kernel.run()
        assert victim.value == ("interrupted", "wake up", 2.0)

    def test_interrupted_process_can_continue(self, kernel):
        def sleeper(k):
            try:
                yield k.timeout(100.0)
            except Interrupt:
                pass
            yield k.timeout(1.0)
            return k.now

        def interrupter(k, victim):
            yield k.timeout(2.0)
            victim.interrupt()

        victim = kernel.process(sleeper(kernel))
        kernel.process(interrupter(kernel, victim))
        kernel.run()
        assert victim.value == 3.0

    def test_interrupting_terminated_process_is_an_error(self, kernel):
        def quick(k):
            yield k.timeout(1.0)

        def late_interrupter(k, victim):
            yield k.timeout(5.0)
            victim.interrupt()

        victim = kernel.process(quick(kernel))
        kernel.run(until=2.0)
        with pytest.raises(SimulationError):
            victim.interrupt()

    def test_self_interrupt_is_an_error(self, kernel):
        def proc(k):
            current = k.active_process
            current.interrupt()
            yield k.timeout(1.0)

        process = kernel.process(proc(kernel))
        process.callbacks.append(lambda ev: ev.defuse())
        kernel.run()
        assert not process.ok

    def test_uncaught_interrupt_fails_the_process(self, kernel):
        def sleeper(k):
            yield k.timeout(100.0)

        def interrupter(k, victim):
            yield k.timeout(1.0)
            victim.interrupt("fatal")

        victim = kernel.process(sleeper(kernel))
        victim.callbacks.append(lambda ev: ev.defuse())
        kernel.process(interrupter(kernel, victim))
        kernel.run()
        assert not victim.ok
        assert isinstance(victim.value, Interrupt)

    def test_interrupt_does_not_leak_old_target(self, kernel):
        """After an interrupt, the old target firing must not resume
        the process a second time."""
        resumed = []

        def sleeper(k):
            try:
                yield k.timeout(10.0)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield k.timeout(20.0)
            resumed.append("second")

        def interrupter(k, victim):
            yield k.timeout(5.0)
            victim.interrupt()

        victim = kernel.process(sleeper(kernel))
        kernel.process(interrupter(kernel, victim))
        kernel.run()
        assert resumed == ["interrupt", "second"]
        assert kernel.now == 25.0


class TestActiveProcess:
    def test_active_process_is_set_inside_resume(self, kernel):
        observed = []

        def proc(k):
            observed.append(k.active_process)
            yield k.timeout(1.0)

        process = kernel.process(proc(kernel))
        kernel.run()
        assert observed == [process]

    def test_active_process_is_none_outside(self, kernel):
        kernel.run()
        assert kernel.active_process is None
