"""Tests for capacity resources: FIFO, priority, preemption."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Interrupt
from repro.sim.kernel import Kernel
from repro.sim.resources import (
    Preempted,
    PreemptiveResource,
    PriorityResource,
    Resource,
)


def hold(kernel, resource, duration, log, tag, **request_kwargs):
    """Helper process: acquire, hold for ``duration``, release."""
    with resource.request(**request_kwargs) as request:
        yield request
        log.append(("acquire", tag, kernel.now))
        yield kernel.timeout(duration)
    log.append(("release", tag, kernel.now))


class TestResource:
    def test_capacity_must_be_positive(self, kernel):
        with pytest.raises(SimulationError):
            Resource(kernel, capacity=0)

    def test_grants_up_to_capacity(self, kernel):
        resource = Resource(kernel, capacity=2)
        log = []
        for tag in ("a", "b", "c"):
            kernel.process(hold(kernel, resource, 5.0, log, tag))
        kernel.run()
        acquires = [entry for entry in log if entry[0] == "acquire"]
        assert acquires == [
            ("acquire", "a", 0.0),
            ("acquire", "b", 0.0),
            ("acquire", "c", 5.0),
        ]

    def test_fifo_service_order(self, kernel):
        resource = Resource(kernel, capacity=1)
        log = []
        for tag in ("first", "second", "third"):
            kernel.process(hold(kernel, resource, 1.0, log, tag))
        kernel.run()
        order = [tag for op, tag, _ in log if op == "acquire"]
        assert order == ["first", "second", "third"]

    def test_counts(self, kernel):
        resource = Resource(kernel, capacity=3)
        log = []
        kernel.process(hold(kernel, resource, 10.0, log, "x"))
        kernel.run(until=1.0)
        assert resource.count == 1
        assert resource.available == 2
        assert resource.capacity == 3

    def test_release_of_non_user_raises(self, kernel):
        resource = Resource(kernel, capacity=1)
        foreign = Resource(kernel, capacity=1)

        def proc(k):
            request = foreign.request()
            yield request
            resource.release(request)

        kernel.process(proc(kernel))
        with pytest.raises(SimulationError):
            kernel.run()

    def test_cancel_dequeues_waiting_request(self, kernel):
        resource = Resource(kernel, capacity=1)
        log = []

        def canceller(k):
            request = resource.request()  # queued behind the holder
            yield k.timeout(1.0)
            request.cancel()
            log.append(("cancelled", k.now))

        kernel.process(hold(kernel, resource, 5.0, log, "holder"))
        kernel.process(canceller(kernel))
        kernel.run()
        assert ("cancelled", 1.0) in log
        assert not resource.queue

    def test_context_manager_releases_on_exception(self, kernel):
        resource = Resource(kernel, capacity=1)

        def failer(k):
            with resource.request() as request:
                yield request
                raise ValueError("inside")

        process = kernel.process(failer(kernel))
        process.callbacks.append(lambda ev: ev.defuse())
        kernel.run()
        assert resource.count == 0


class TestPriorityResource:
    def test_lower_priority_value_served_first(self, kernel):
        resource = PriorityResource(kernel, capacity=1)
        log = []
        kernel.process(hold(kernel, resource, 5.0, log, "holder"))

        def submit_later(k):
            yield k.timeout(1.0)
            kernel.process(
                hold(kernel, resource, 1.0, log, "low", priority=10)
            )
            kernel.process(
                hold(kernel, resource, 1.0, log, "high", priority=1)
            )

        kernel.process(submit_later(kernel))
        kernel.run()
        order = [tag for op, tag, _ in log if op == "acquire"]
        assert order == ["holder", "high", "low"]

    def test_fifo_among_equal_priorities(self, kernel):
        resource = PriorityResource(kernel, capacity=1)
        log = []
        kernel.process(hold(kernel, resource, 2.0, log, "holder"))

        def submit_later(k):
            yield k.timeout(0.5)
            for tag in ("e1", "e2", "e3"):
                kernel.process(
                    hold(kernel, resource, 0.5, log, tag, priority=5)
                )

        kernel.process(submit_later(kernel))
        kernel.run()
        order = [tag for op, tag, _ in log if op == "acquire"]
        assert order == ["holder", "e1", "e2", "e3"]

    def test_queue_view_in_service_order(self, kernel):
        resource = PriorityResource(kernel, capacity=1)
        log = []
        kernel.process(hold(kernel, resource, 10.0, log, "holder"))

        def submit_later(k):
            yield k.timeout(0.5)
            kernel.process(hold(kernel, resource, 1.0, log, "b", priority=2))
            kernel.process(hold(kernel, resource, 1.0, log, "a", priority=1))

        kernel.process(submit_later(kernel))
        kernel.run(until=1.0)
        assert [req.priority for req in resource.queue] == [1, 2]


class TestPreemptiveResource:
    def test_preempts_lower_priority_user(self, kernel):
        resource = PreemptiveResource(kernel, capacity=1)
        events = []

        def low(k):
            try:
                with resource.request(priority=10) as request:
                    yield request
                    events.append(("low-acquired", k.now))
                    yield k.timeout(50.0)
                    events.append(("low-finished", k.now))
            except Interrupt as interrupt:
                cause = interrupt.cause
                assert isinstance(cause, Preempted)
                events.append(("low-preempted", k.now, cause.usage_since))

        def high(k):
            yield k.timeout(5.0)
            with resource.request(priority=1, preempt=True) as request:
                yield request
                events.append(("high-acquired", k.now))
                yield k.timeout(1.0)

        kernel.process(low(kernel))
        kernel.process(high(kernel))
        kernel.run()
        assert ("low-preempted", 5.0, 0.0) in events
        assert ("high-acquired", 5.0) in events

    def test_no_preemption_without_flag(self, kernel):
        resource = PreemptiveResource(kernel, capacity=1)
        log = []
        kernel.process(hold(kernel, resource, 10.0, log, "low", priority=10))

        def high(k):
            yield k.timeout(1.0)
            kernel.process(
                hold(kernel, resource, 1.0, log, "high", priority=1)
            )

        kernel.process(high(kernel))
        kernel.run()
        acquires = [(tag, t) for op, tag, t in log if op == "acquire"]
        assert ("high", 10.0) in acquires

    def test_no_preemption_of_equal_priority(self, kernel):
        resource = PreemptiveResource(kernel, capacity=1)
        log = []
        kernel.process(hold(kernel, resource, 10.0, log, "a", priority=5))

        def later(k):
            yield k.timeout(1.0)
            kernel.process(
                hold(
                    kernel, resource, 1.0, log, "b", priority=5, preempt=True
                )
            )

        kernel.process(later(kernel))
        kernel.run()
        acquires = [(tag, t) for op, tag, t in log if op == "acquire"]
        assert ("b", 10.0) in acquires

    def test_victim_is_worst_priority_most_recent(self, kernel):
        resource = PreemptiveResource(kernel, capacity=2)
        preempted = []

        def worker(k, tag, priority, start_delay):
            yield k.timeout(start_delay)
            try:
                with resource.request(priority=priority) as request:
                    yield request
                    yield k.timeout(100.0)
            except Interrupt:
                preempted.append(tag)

        def vip(k):
            yield k.timeout(5.0)
            with resource.request(priority=0, preempt=True) as request:
                yield request
                yield k.timeout(1.0)

        kernel.process(worker(kernel, "older-low", 9, 0.0))
        kernel.process(worker(kernel, "newer-low", 9, 1.0))
        kernel.process(vip(kernel))
        kernel.run()
        assert preempted == ["newer-low"]
