"""Tests for AllOf/AnyOf condition events."""

import pytest

from repro.errors import SimulationError
from repro.sim.conditions import ConditionValue
from repro.sim.kernel import Kernel


class TestAllOf:
    def test_fires_when_all_processed(self, kernel):
        def proc(k):
            t1 = k.timeout(3.0, "x")
            t2 = k.timeout(5.0, "y")
            result = yield k.all_of([t1, t2])
            return (k.now, result[t1], result[t2])

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == (5.0, "x", "y")

    def test_does_not_fire_on_triggered_but_unprocessed(self, kernel):
        """Timeouts are triggered at creation; AllOf must wait for them
        to be *processed*."""

        def proc(k):
            events = [k.timeout(d) for d in (1.0, 2.0, 3.0)]
            yield k.all_of(events)
            return k.now

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == 3.0

    def test_empty_all_of_fires_immediately(self, kernel):
        def proc(k):
            yield k.all_of([])
            return k.now

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == 0.0

    def test_includes_already_processed_events(self, kernel):
        early = kernel.timeout(1.0, "early")
        kernel.run()

        def proc(k):
            late = k.timeout(2.0, "late")
            result = yield k.all_of([early, late])
            return (result[early], result[late])

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == ("early", "late")

    def test_failure_propagates(self, kernel):
        event = kernel.event()

        def proc(k):
            try:
                yield k.all_of([k.timeout(5.0), event])
            except ValueError:
                return ("failed", k.now)

        def failer(k):
            yield k.timeout(1.0)
            event.fail(ValueError("member failed"))

        process = kernel.process(proc(kernel))
        kernel.process(failer(kernel))
        kernel.run()
        assert process.value == ("failed", 1.0)

    def test_mixed_kernel_events_rejected(self, kernel):
        other = Kernel()
        with pytest.raises(SimulationError):
            kernel.all_of([kernel.event(), other.event()])


class TestAnyOf:
    def test_fires_on_first(self, kernel):
        def proc(k):
            t1 = k.timeout(3.0, "fast")
            t2 = k.timeout(9.0, "slow")
            result = yield k.any_of([t1, t2])
            return (k.now, t1 in result, t2 in result)

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == (3.0, True, False)

    def test_empty_any_of_fires_immediately(self, kernel):
        def proc(k):
            yield k.any_of([])
            return k.now

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == 0.0

    def test_later_events_still_fire_harmlessly(self, kernel):
        def proc(k):
            t1 = k.timeout(1.0)
            t2 = k.timeout(2.0)
            yield k.any_of([t1, t2])
            yield k.timeout(5.0)  # outlive t2's firing
            return k.now

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == 6.0

    def test_simultaneous_events_both_counted(self, kernel):
        def proc(k):
            t1 = k.timeout(2.0, "a")
            t2 = k.timeout(2.0, "b")
            result = yield k.any_of([t1, t2])
            return len(result)

        process = kernel.process(proc(kernel))
        kernel.run()
        # Only the first processed event is in the value (the condition
        # fires before the second same-instant event processes).
        assert process.value == 1


class TestConditionValue:
    def test_mapping_interface(self, kernel):
        def proc(k):
            t1 = k.timeout(1.0, "v1")
            result = yield k.all_of([t1])
            assert t1 in result
            assert result[t1] == "v1"
            assert len(result) == 1
            assert list(result) == [t1]
            assert result.todict() == {t1: "v1"}
            return True

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value is True

    def test_missing_key_raises(self):
        value = ConditionValue()
        with pytest.raises(KeyError):
            _ = value["nope"]

    def test_repr(self, kernel):
        value = ConditionValue()
        assert "ConditionValue" in repr(value)


class TestNesting:
    def test_condition_of_conditions(self, kernel):
        def proc(k):
            inner1 = k.all_of([k.timeout(1.0), k.timeout(2.0)])
            inner2 = k.any_of([k.timeout(10.0), k.timeout(4.0)])
            yield k.all_of([inner1, inner2])
            return k.now

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == 4.0
