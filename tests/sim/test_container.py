"""Tests for the continuous-level Container."""

import pytest

from repro.errors import SimulationError
from repro.sim.container import Container


class TestContainerBasics:
    def test_initial_level(self, kernel):
        assert Container(kernel, init=5.0).level == 5.0

    def test_put_raises_level(self, kernel):
        container = Container(kernel)

        def proc(k):
            yield container.put(3.5)

        kernel.process(proc(kernel))
        kernel.run()
        assert container.level == 3.5

    def test_get_lowers_level(self, kernel):
        container = Container(kernel, init=10.0)

        def proc(k):
            yield container.get(4.0)

        kernel.process(proc(kernel))
        kernel.run()
        assert container.level == 6.0

    def test_get_blocks_until_level_sufficient(self, kernel):
        container = Container(kernel)
        log = []

        def consumer(k):
            yield container.get(5.0)
            log.append(k.now)

        def producer(k):
            for _ in range(5):
                yield k.timeout(1.0)
                yield container.put(1.0)

        kernel.process(consumer(kernel))
        kernel.process(producer(kernel))
        kernel.run()
        assert log == [5.0]

    def test_put_blocks_at_capacity(self, kernel):
        container = Container(kernel, capacity=10.0, init=8.0)
        log = []

        def producer(k):
            yield container.put(5.0)
            log.append(k.now)

        def consumer(k):
            yield k.timeout(2.0)
            yield container.get(4.0)

        kernel.process(producer(kernel))
        kernel.process(consumer(kernel))
        kernel.run()
        assert log == [2.0]
        assert container.level == 9.0


class TestContainerValidation:
    def test_zero_put_rejected(self, kernel):
        container = Container(kernel)
        with pytest.raises(SimulationError):
            container.put(0.0)

    def test_negative_get_rejected(self, kernel):
        container = Container(kernel)
        with pytest.raises(SimulationError):
            container.get(-1.0)

    def test_bad_capacity(self, kernel):
        with pytest.raises(SimulationError):
            Container(kernel, capacity=-5.0)

    def test_init_above_capacity(self, kernel):
        with pytest.raises(SimulationError):
            Container(kernel, capacity=5.0, init=6.0)

    def test_negative_init(self, kernel):
        with pytest.raises(SimulationError):
            Container(kernel, init=-1.0)

    def test_repr(self, kernel):
        assert "level" in repr(Container(kernel, init=2.0))
