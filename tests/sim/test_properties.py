"""Property-based tests on the simulation kernel's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Kernel
from repro.sim.monitor import SampleSeries, TimeWeightedValue
from repro.sim.resources import Resource
from repro.sim.store import Store


@given(
    delays=st.lists(
        st.floats(
            min_value=0.0,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_time_is_monotone_for_any_timeout_set(delays):
    """Processing any set of timeouts never moves the clock backwards
    and ends at the maximum delay."""
    kernel = Kernel()
    observed = []

    def watcher(k, delay):
        yield k.timeout(delay)
        observed.append(k.now)

    for delay in delays:
        kernel.process(watcher(kernel, delay))
    kernel.run()
    assert observed == sorted(observed)
    assert kernel.now == max(delays)


@given(
    holds=st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=25,
    ),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity(holds, capacity):
    """Concurrent users never exceed capacity; everyone eventually runs."""
    kernel = Kernel()
    resource = Resource(kernel, capacity=capacity)
    active = TimeWeightedValue(kernel)
    served = []
    peak = [0]

    def user(k, duration, tag):
        with resource.request() as request:
            yield request
            active.add(1)
            peak[0] = max(peak[0], int(active.value))
            yield k.timeout(duration)
            active.add(-1)
        served.append(tag)

    for index, duration in enumerate(holds):
        kernel.process(user(kernel, duration, index))
    kernel.run()
    assert peak[0] <= capacity
    assert sorted(served) == list(range(len(holds)))


@given(
    items=st.lists(st.integers(), min_size=0, max_size=50),
)
@settings(max_examples=60, deadline=None)
def test_store_conserves_items(items):
    """Everything put into a store comes out exactly once, in order."""
    kernel = Kernel()
    store = Store(kernel)
    received = []

    def producer(k):
        for item in items:
            yield store.put(item)

    def consumer(k):
        for _ in range(len(items)):
            value = yield store.get()
            received.append(value)

    kernel.process(producer(kernel))
    kernel.process(consumer(kernel))
    kernel.run()
    assert received == items
    assert store.size == 0


@given(
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_time_weighted_integral_matches_manual_sum(steps):
    """The monitored integral equals the hand-computed rectangle sum."""
    kernel = Kernel()
    monitor = TimeWeightedValue(kernel, initial=0.0)
    expected = 0.0
    current = 0.0
    now = 0.0

    def proc(k):
        for delay, value in steps:
            yield k.timeout(delay)
            monitor.set(value)

    kernel.process(proc(kernel))
    kernel.run()
    for delay, value in steps:
        expected += current * delay
        current = value
        now += delay
    assert abs(monitor.integral() - expected) <= 1e-6 * max(
        1.0, abs(expected)
    )


@given(
    samples=st.lists(
        st.floats(
            min_value=-1e6,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=100,
    ),
    q=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=80, deadline=None)
def test_percentile_within_sample_range(samples, q):
    """Percentiles always lie inside [min, max] and are monotone in q."""
    series = SampleSeries()
    for sample in samples:
        series.record(sample)
    value = series.percentile(q)
    assert min(samples) <= value <= max(samples)
    assert series.percentile(0) == min(samples)
    assert series.percentile(100) == max(samples)
