"""Tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event, Interrupt, Timeout
from repro.sim.kernel import Kernel


class TestEventLifecycle:
    def test_new_event_is_pending(self, kernel):
        event = kernel.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_while_pending(self, kernel):
        event = kernel.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_succeed_attaches_value(self, kernel):
        event = kernel.event()
        event.succeed("payload")
        assert event.triggered
        assert event.ok
        assert event.value == "payload"

    def test_succeed_twice_is_an_error(self, kernel):
        event = kernel.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, kernel):
        event = kernel.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_then_succeed_is_an_error(self, kernel):
        event = kernel.event()
        event.fail(ValueError("boom"))
        event.defuse()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_processed_after_run(self, kernel):
        event = kernel.event()
        event.succeed(42)
        kernel.run()
        assert event.processed

    def test_callbacks_receive_the_event(self, kernel):
        event = kernel.event()
        seen = []
        event.callbacks.append(lambda ev: seen.append(ev.value))
        event.succeed("x")
        kernel.run()
        assert seen == ["x"]

    def test_repr_shows_state(self, kernel):
        event = kernel.event()
        assert "pending" in repr(event)
        event.succeed()
        assert "triggered" in repr(event)
        kernel.run()
        assert "processed" in repr(event)


class TestEventChaining:
    def test_trigger_copies_outcome(self, kernel):
        source = kernel.event()
        target = kernel.event()
        source.succeed("data")
        target.trigger(source)
        assert target.value == "data"
        assert target.ok

    def test_trigger_from_pending_event_is_an_error(self, kernel):
        source = kernel.event()
        target = kernel.event()
        with pytest.raises(SimulationError):
            target.trigger(source)


class TestUnhandledFailure:
    def test_unconsumed_failure_crashes_the_run(self, kernel):
        event = kernel.event()
        event.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            kernel.run()

    def test_defused_failure_passes_silently(self, kernel):
        event = kernel.event()
        event.fail(RuntimeError("handled"))
        event.defuse()
        kernel.run()  # must not raise
        assert event.processed


class TestTimeout:
    def test_fires_after_delay(self, kernel):
        fired = []

        def proc(k):
            yield k.timeout(5.0)
            fired.append(k.now)

        kernel.process(proc(kernel))
        kernel.run()
        assert fired == [5.0]

    def test_zero_delay_fires_at_now(self, kernel):
        fired = []

        def proc(k):
            yield k.timeout(0.0)
            fired.append(k.now)

        kernel.process(proc(kernel))
        kernel.run()
        assert fired == [0.0]

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.timeout(-1.0)

    def test_carries_a_value(self, kernel):
        def proc(k):
            value = yield k.timeout(1.0, value="tick")
            return value

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == "tick"

    def test_timeouts_order_by_delay(self, kernel):
        order = []

        def waiter(k, delay, tag):
            yield k.timeout(delay)
            order.append(tag)

        kernel.process(waiter(kernel, 3.0, "c"))
        kernel.process(waiter(kernel, 1.0, "a"))
        kernel.process(waiter(kernel, 2.0, "b"))
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_equal_time_fifo_by_creation(self, kernel):
        order = []

        def waiter(k, tag):
            yield k.timeout(1.0)
            order.append(tag)

        for tag in ("first", "second", "third"):
            kernel.process(waiter(kernel, tag))
        kernel.run()
        assert order == ["first", "second", "third"]


class TestInterruptException:
    def test_cause_accessor(self):
        interrupt = Interrupt("reason")
        assert interrupt.cause == "reason"
        assert "reason" in str(interrupt)

    def test_none_cause(self):
        assert Interrupt(None).cause is None
