"""Tests for Store / FilterStore / PriorityStore."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.sim.store import FilterStore, PriorityItem, PriorityStore, Store


class TestStore:
    def test_put_then_get(self, kernel):
        store = Store(kernel)

        def proc(k):
            yield store.put("item")
            value = yield store.get()
            return value

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == "item"

    def test_get_blocks_until_put(self, kernel):
        store = Store(kernel)
        log = []

        def consumer(k):
            value = yield store.get()
            log.append((value, k.now))

        def producer(k):
            yield k.timeout(4.0)
            yield store.put("late")

        kernel.process(consumer(kernel))
        kernel.process(producer(kernel))
        kernel.run()
        assert log == [("late", 4.0)]

    def test_fifo_order(self, kernel):
        store = Store(kernel)
        received = []

        def producer(k):
            for item in (1, 2, 3):
                yield store.put(item)

        def consumer(k):
            for _ in range(3):
                value = yield store.get()
                received.append(value)

        kernel.process(producer(kernel))
        kernel.process(consumer(kernel))
        kernel.run()
        assert received == [1, 2, 3]

    def test_capacity_blocks_put(self, kernel):
        store = Store(kernel, capacity=1)
        log = []

        def producer(k):
            yield store.put("a")
            log.append(("a-stored", k.now))
            yield store.put("b")
            log.append(("b-stored", k.now))

        def consumer(k):
            yield k.timeout(5.0)
            yield store.get()

        kernel.process(producer(kernel))
        kernel.process(consumer(kernel))
        kernel.run()
        assert log == [("a-stored", 0.0), ("b-stored", 5.0)]

    def test_invalid_capacity(self, kernel):
        with pytest.raises(SimulationError):
            Store(kernel, capacity=0)

    def test_size_property(self, kernel):
        store = Store(kernel)
        store.put("x")
        store.put("y")
        kernel.run()
        assert store.size == 2

    def test_cancel_get(self, kernel):
        store = Store(kernel)
        get_event = store.get()
        get_event.cancel()
        store.put("item")
        kernel.run()
        assert store.size == 1  # nobody consumed it

    def test_cancel_put(self, kernel):
        store = Store(kernel, capacity=1)
        store.put("a")
        blocked = store.put("b")
        blocked.cancel()

        def consumer(k):
            value = yield store.get()
            return value

        process = kernel.process(consumer(kernel))
        kernel.run()
        assert process.value == "a"
        assert store.size == 0


class TestFilterStore:
    def test_get_matching_item(self, kernel):
        store = FilterStore(kernel)

        def proc(k):
            yield store.put(1)
            yield store.put(2)
            yield store.put(3)
            value = yield store.get(lambda item: item % 2 == 0)
            return value

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == 2

    def test_nonmatching_get_waits(self, kernel):
        store = FilterStore(kernel)
        log = []

        def consumer(k):
            value = yield store.get(lambda item: item == "special")
            log.append((value, k.now))

        def producer(k):
            yield store.put("ordinary")
            yield k.timeout(3.0)
            yield store.put("special")

        kernel.process(consumer(kernel))
        kernel.process(producer(kernel))
        kernel.run()
        assert log == [("special", 3.0)]
        assert store.items == ["ordinary"]

    def test_default_predicate_accepts_anything(self, kernel):
        store = FilterStore(kernel)

        def proc(k):
            yield store.put("thing")
            value = yield store.get()
            return value

        process = kernel.process(proc(kernel))
        kernel.run()
        assert process.value == "thing"


class TestPriorityStore:
    def test_serves_smallest_first(self, kernel):
        store = PriorityStore(kernel)
        received = []

        def producer(k):
            for value in (5, 1, 3):
                yield store.put(value)

        def consumer(k):
            yield k.timeout(1.0)
            for _ in range(3):
                value = yield store.get()
                received.append(value)

        kernel.process(producer(kernel))
        kernel.process(consumer(kernel))
        kernel.run()
        assert received == [1, 3, 5]

    def test_priority_item_wrapper(self, kernel):
        store = PriorityStore(kernel)
        received = []

        def producer(k):
            yield store.put(PriorityItem(2, {"name": "second"}))
            yield store.put(PriorityItem(1, {"name": "first"}))

        def consumer(k):
            yield k.timeout(1.0)
            for _ in range(2):
                wrapped = yield store.get()
                received.append(wrapped.item["name"])

        kernel.process(producer(kernel))
        kernel.process(consumer(kernel))
        kernel.run()
        assert received == ["first", "second"]

    def test_priority_item_ordering(self):
        assert PriorityItem(1, "a") < PriorityItem(2, "b")
        assert "PriorityItem" in repr(PriorityItem(1, "a"))
