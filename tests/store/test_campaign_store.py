"""Store-backed campaigns: equivalence with the pickle engine and
crash-resume at every stage commit boundary.

``CampaignEngine(store=...)`` swaps the JSONL stage journal and the
pickled stage-value files for the store's ``stages``/``stage_values``
tables.  The result must be byte-identical (``canonical_digest``) to
the plain engine, resume must replay completed stages without
re-executing them, and a kill at any stage fault site must leave a
store that resumes to the clean-run digest.
"""

import json

import pytest

from repro.campaigns import CampaignEngine
from repro.experiments.resilience import CHAOS_EXIT_CODE

from tests.campaigns.conftest import diamond_campaign, marker_count
from tests.store.conftest import run_driver


class TestEngineEquivalence:
    def test_store_engine_matches_pickle_engine_digest(self, tmp_path):
        spec = diamond_campaign(name="store-diamond")
        plain = CampaignEngine(
            spec, tmp_path / "plain", code_version="pinned"
        ).run()
        stored = CampaignEngine(
            spec, tmp_path / "stored", code_version="pinned",
            store=tmp_path / "stored" / "store",
        ).run()
        assert stored.canonical_digest() == plain.canonical_digest()
        assert stored.values == plain.values

    def test_resume_replays_all_stages_without_reexecution(self, tmp_path):
        spec = diamond_campaign(name="store-resume")
        state = tmp_path / "state"
        engine_kwargs = dict(
            code_version="pinned", store=state / "store"
        )
        first = CampaignEngine(spec, state, **engine_kwargs).run()
        second = CampaignEngine(spec, state, **engine_kwargs).run(
            resume=True
        )
        assert second.canonical_digest() == first.canonical_digest()
        assert sorted(second.resumed_stages()) == ["a", "b", "c", "d"]
        for stage in ("a", "b", "c", "d"):
            assert marker_count(state, stage, "started") == 1

    def test_status_is_read_only(self, tmp_path):
        spec = diamond_campaign(name="store-status")
        state = tmp_path / "state"
        store_dir = state / "store"
        # Status on a campaign that never ran: no store side effects.
        engine = CampaignEngine(
            spec, state, code_version="pinned", store=store_dir
        )
        status = engine.status()
        assert status["completed"] == 0
        assert not (store_dir / "store.sqlite3.lock").exists() or (
            (store_dir / "store.sqlite3.lock").read_text() == ""
        )
        CampaignEngine(
            spec, state, code_version="pinned", store=store_dir
        ).run()
        after = CampaignEngine(
            spec, state, code_version="pinned", store=store_dir
        ).status()
        assert after["completed"] == 4
        assert all(
            record["status"] == "ok" for record in after["stages"].values()
        )


#: Stage-boundary kill driver: diamond campaign on the store journal,
#: killed by REPRO_STORE_FAULT (set by the parent), resumed clean.
#: argv: workdir mode   (mode: "run" | "resume" | "clean")
_CAMPAIGN_DRIVER = """
import json, os, sys
from pathlib import Path

from repro.campaigns import CampaignEngine, CampaignSpec, StageSpec, STEPS

workdir = Path(sys.argv[1])
mode = sys.argv[2]


@STEPS.register("s.add")
def _add(ctx):
    counts = Path(ctx.state_dir) / "counts"
    counts.mkdir(parents=True, exist_ok=True)
    with open(counts / f"{ctx.stage}.runs", "a") as handle:
        handle.write(f"{os.getpid()}\\n")
        handle.flush()
        os.fsync(handle.fileno())
    return ctx.param("x", 0) + sum(
        ctx.upstream[dep] for dep in sorted(ctx.upstream)
    ) + ctx.seed % 97


spec = CampaignSpec(name="store-crash", seed=11, stages=(
    StageSpec(name="a", step="s.add", params={"x": 1}),
    StageSpec(name="b", step="s.add", params={"x": 2}, after=("a",)),
    StageSpec(name="c", step="s.add", params={"x": 3}, after=("a",)),
    StageSpec(name="d", step="s.add", params={"x": 4}, after=("b", "c")),
))
state = workdir / ("clean" if mode == "clean" else "state")
engine = CampaignEngine(
    spec, state, code_version="pinned", store=state / "store",
)
result = engine.run(resume=(mode == "resume"))
(workdir / f"result-{mode}.json").write_text(json.dumps({
    "digest": result.canonical_digest(),
    "resumed": sorted(result.resumed_stages()),
    "statuses": {n: result.outcomes[n].status for n in result.order},
}))
"""

STAGE_SITES = [
    ("stage-value-pre-commit", 2),
    ("stage-value-post-commit", 2),
    ("stage-pre-commit", 2),
    ("stage-post-commit", 2),
]


def _stage_runs(workdir, state="state"):
    counts = {}
    directory = workdir / state / "counts"
    if directory.is_dir():
        for path in directory.glob("*.runs"):
            counts[path.name.split(".")[0]] = len(
                path.read_text().splitlines()
            )
    return counts


class TestKillAtStageBoundaries:
    @pytest.mark.parametrize("site,hit", STAGE_SITES)
    def test_resume_to_clean_digest_without_reexecuting_committed(
        self, tmp_path, site, hit
    ):
        killed = run_driver(
            _CAMPAIGN_DRIVER, tmp_path, "run",
            env={"REPRO_STORE_FAULT": f"{site}:{hit}"},
        )
        assert killed.returncode == CHAOS_EXIT_CODE, killed.stderr
        assert not (tmp_path / "result-run.json").exists()
        runs_before = _stage_runs(tmp_path)

        resumed = run_driver(_CAMPAIGN_DRIVER, tmp_path, "resume")
        assert resumed.returncode == 0, resumed.stderr
        report = json.loads((tmp_path / "result-resume.json").read_text())
        assert all(s == "ok" for s in report["statuses"].values())
        runs_after = _stage_runs(tmp_path)
        # Stages the store committed before the kill replay, never
        # re-run; the interrupted stage legitimately runs again.
        for stage in report["resumed"]:
            assert runs_after[stage] == runs_before[stage] == 1

        clean = run_driver(_CAMPAIGN_DRIVER, tmp_path, "clean")
        assert clean.returncode == 0, clean.stderr
        baseline = json.loads((tmp_path / "result-clean.json").read_text())
        assert report["digest"] == baseline["digest"]

    def test_value_commits_before_outcome(self, tmp_path):
        """Killed between the stage value and its outcome: resume must
        re-execute the stage, never trust a value without an outcome
        row — and the reverse order (outcome without value) must be
        impossible by construction."""
        killed = run_driver(
            _CAMPAIGN_DRIVER, tmp_path, "run",
            env={"REPRO_STORE_FAULT": "stage-pre-commit:1"},
        )
        assert killed.returncode == CHAOS_EXIT_CODE
        import sqlite3

        conn = sqlite3.connect(
            tmp_path / "state" / "store" / "store.sqlite3"
        )
        try:
            values = conn.execute(
                "SELECT count(*) FROM stage_values"
            ).fetchone()[0]
            outcomes = conn.execute(
                "SELECT count(*) FROM stages WHERE status = 'ok'"
            ).fetchone()[0]
        finally:
            conn.close()
        # The first stage's value committed; its outcome did not.
        assert values == 1 and outcomes == 0

        resumed = run_driver(_CAMPAIGN_DRIVER, tmp_path, "resume")
        assert resumed.returncode == 0, resumed.stderr
        report = json.loads((tmp_path / "result-resume.json").read_text())
        # No outcome row -> nothing counts as completed -> nothing
        # replays as resumed; the stage re-executed.
        assert report["resumed"] == []
        assert _stage_runs(tmp_path)["a"] == 2
