"""Schema lifecycle: creation, migration, quarantine, future versions.

The open-time contract of :class:`~repro.store.db.StoreDB`: a fresh
directory gets the current schema; an older store is migrated in one
transaction; a *newer* store raises without being touched; a garbage
file is quarantined to ``*.corrupt`` and the next open starts clean.
"""

import sqlite3

import pytest

from repro.errors import StoreCorruptError, StoreSchemaError
from repro.store import ResultStore, SCHEMA_VERSION, StoreDB
from repro.store.schema import (
    create_schema,
    migrate,
    read_schema_version,
)


class TestFreshAndMigration:
    def test_fresh_store_writes_current_version(self, tmp_path):
        db = StoreDB(tmp_path)
        assert read_schema_version(db.connection()) == SCHEMA_VERSION
        db.close()

    def test_v1_store_migrates_to_current_preserving_rows(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        conn = sqlite3.connect(path)
        create_schema(conn, version=1)
        conn.execute(
            "INSERT INTO points (experiment_id, runner, code_version,"
            " point_key, kind, payload, created_at, updated_at)"
            " VALUES ('e', 'r', 'v', 'k', 'json', ?, 0, 0)",
            (b'{"y": 1.5}',),
        )
        conn.commit()
        conn.close()

        db = StoreDB(tmp_path)
        conn = db.connection()
        assert read_schema_version(conn) == SCHEMA_VERSION
        # v1 rows survive, v2 columns and tables exist.
        assert conn.execute("SELECT count(*) FROM points").fetchone() == (1,)
        conn.execute("SELECT last_read_at FROM sweeps")
        conn.execute("SELECT version, first_seen FROM code_versions")
        db.close()

    def test_migrated_store_round_trips_through_the_api(self, tmp_path):
        conn = sqlite3.connect(tmp_path / "store.sqlite3")
        create_schema(conn, version=1)
        conn.close()
        with ResultStore(tmp_path, code_version="pinned") as store:
            assert store.verify()["ok"]

    def test_migration_steps_reported_in_order(self, tmp_path):
        conn = sqlite3.connect(tmp_path / "store.sqlite3")
        create_schema(conn, version=1)
        seen = []
        applied = migrate(conn, 1, on_step=seen.append)
        assert applied == SCHEMA_VERSION - 1
        assert seen == list(range(2, SCHEMA_VERSION + 1))
        assert read_schema_version(conn) == SCHEMA_VERSION
        conn.close()

    def test_migrate_is_noop_at_current_version(self, tmp_path):
        db = StoreDB(tmp_path)
        conn = db.connection()
        assert migrate(conn, SCHEMA_VERSION) == 0
        db.close()

    def test_unknown_create_version_rejected(self, tmp_path):
        conn = sqlite3.connect(tmp_path / "x.sqlite3")
        with pytest.raises(ValueError):
            create_schema(conn, version=0)
        with pytest.raises(ValueError):
            create_schema(conn, version=SCHEMA_VERSION + 1)
        conn.close()


class TestFutureVersion:
    def test_newer_schema_raises_without_quarantine(self, tmp_path):
        db = StoreDB(tmp_path)
        conn = db.connection()
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 5),),
        )
        db.close()

        reopened = StoreDB(tmp_path)
        with pytest.raises(StoreSchemaError, match="newer"):
            reopened.connection()
        # The data was NOT quarantined: nothing moved, nothing deleted.
        assert (tmp_path / "store.sqlite3").exists()
        assert not list(tmp_path.glob("*.corrupt"))
        reopened.close()


class TestGarbageQuarantine:
    def test_garbage_file_quarantined_then_fresh_open(self, tmp_path):
        (tmp_path / "store.sqlite3").write_bytes(b"this is not sqlite\0\1\2")
        db = StoreDB(tmp_path)
        with pytest.raises(StoreCorruptError, match="quarantined"):
            db.connection()
        corrupt = list(tmp_path.glob("store.sqlite3.*.corrupt"))
        assert len(corrupt) == 1
        assert corrupt[0].read_bytes().startswith(b"this is not sqlite")

        # The same handle reopens a brand-new, valid store.
        assert read_schema_version(db.connection()) == SCHEMA_VERSION
        db.close()

    def test_valid_sqlite_without_version_row_quarantined(self, tmp_path):
        conn = sqlite3.connect(tmp_path / "store.sqlite3")
        conn.execute("CREATE TABLE unrelated (x)")
        conn.commit()
        conn.close()
        db = StoreDB(tmp_path)
        with pytest.raises(StoreCorruptError):
            db.connection()
        assert list(tmp_path.glob("*.corrupt"))
        db.close()
