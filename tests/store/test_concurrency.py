"""Writer exclusion, fork safety, and reader snapshot isolation.

One live writer per store — a second writer gets a clean
:class:`~repro.errors.StoreLockedError` naming the holder, from the
same process or another one.  Readers never block and never observe
uncommitted state: WAL snapshot isolation, pinned here both
deterministically (reads inside an open write transaction) and under
hypothesis-randomised write/read interleavings.
"""

import json
import os
import sqlite3
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JournalLockedError, StoreLockedError
from repro.store import ResultStore

from tests.store.conftest import grid_spec, run_driver, scalar_runner


class TestWriterExclusion:
    def test_second_writer_same_process_fails_fast(self, store):
        store.acquire()
        second = ResultStore(store.directory)
        with pytest.raises(StoreLockedError, match=str(os.getpid())):
            second.acquire()
        second.close()

    def test_lock_error_is_a_journal_locked_error(self, store):
        """Callers catching the journal's lock error keep working."""
        store.acquire()
        second = ResultStore(store.directory)
        with pytest.raises(JournalLockedError):
            second.acquire()
        second.close()

    def test_release_lets_the_next_writer_in(self, store):
        store.acquire()
        store.release()
        second = ResultStore(store.directory)
        second.acquire()
        second.close()

    def test_acquire_is_idempotent(self, store):
        store.acquire()
        store.acquire()
        store.release()

    def test_second_writer_across_processes(self, tmp_path):
        import threading

        script = (
            "import sys, time\n"
            "from pathlib import Path\n"
            "from repro.store import ResultStore\n"
            "workdir = Path(sys.argv[1])\n"
            "store = ResultStore(workdir / 'store')\n"
            "store.acquire()\n"
            "(workdir / 'held').touch()\n"
            "while not (workdir / 'stop').exists():\n"
            "    time.sleep(0.05)\n"
        )
        thread = threading.Thread(
            target=run_driver, args=(script, tmp_path),
            kwargs={"timeout": 60},
        )
        thread.start()
        try:
            deadline = time.time() + 30
            while not (tmp_path / "held").exists():
                assert time.time() < deadline, "holder never started"
                time.sleep(0.02)
            contender = ResultStore(tmp_path / "store")
            with pytest.raises(StoreLockedError, match="locked by another"):
                contender.acquire()
            contender.close()
        finally:
            (tmp_path / "stop").touch()
            thread.join(timeout=60)

    def test_dead_holder_releases_the_lock(self, tmp_path):
        """flock dies with its process: a SIGKILL'd writer leaves no
        stale lock for the next run to trip over."""
        script = (
            "import os, sys\n"
            "from pathlib import Path\n"
            "from repro.store import ResultStore\n"
            "store = ResultStore(Path(sys.argv[1]) / 'store')\n"
            "store.acquire()\n"
            "os._exit(9)\n"  # no release, no cleanup
        )
        proc = run_driver(script, tmp_path)
        assert proc.returncode == 9
        fresh = ResultStore(tmp_path / "store")
        fresh.acquire()  # must not raise
        fresh.close()


_FORK_DRIVER = """
import json, os, sys
from pathlib import Path

from repro.errors import StoreLockedError
from repro.store import ResultStore

workdir = Path(sys.argv[1])
store = ResultStore(workdir / "store", code_version="pinned")
store.open()
store.acquire()

pid = os.fork()
if pid == 0:
    # Forked child: the fork guard dropped the inherited handles, so
    # this process neither holds nor can steal the parent's lock.
    report = {
        "child_holds": store.db.holds_writer_lock,
        "child_conn_forgotten": store.db._conn is None,
    }
    try:
        ResultStore(workdir / "store").acquire()
        report["child_reacquire"] = "acquired"
    except StoreLockedError:
        report["child_reacquire"] = "locked"
    (workdir / "child.json").write_text(json.dumps(report))
    os._exit(0)

os.waitpid(pid, 0)
# The parent kept the flock across the child's exit (the lock lives
# on the parent's still-open file description).
try:
    ResultStore(workdir / "store").acquire()
    parent_probe = "acquired"
except StoreLockedError:
    parent_probe = "locked"
(workdir / "parent.json").write_text(json.dumps({
    "parent_holds": store.db.holds_writer_lock,
    "probe_while_held": parent_probe,
}))
store.close()
"""


class TestForkSafety:
    def test_forked_child_drops_handles_parent_keeps_lock(self, tmp_path):
        proc = run_driver(_FORK_DRIVER, tmp_path)
        assert proc.returncode == 0, proc.stderr
        child = json.loads((tmp_path / "child.json").read_text())
        parent = json.loads((tmp_path / "parent.json").read_text())
        assert child == {
            "child_holds": False,
            "child_conn_forgotten": True,
            "child_reacquire": "locked",
        }
        assert parent["parent_holds"] is True
        assert parent["probe_while_held"] == "locked"


class TestSnapshotIsolation:
    def _reader(self, store_dir):
        conn = sqlite3.connect(store_dir / "store.sqlite3", timeout=30.0)
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    def test_reader_never_sees_uncommitted_rows(self, store):
        spec = grid_spec(3, "iso")
        points = spec.points()
        store.acquire()
        reader = self._reader(store.directory)
        try:
            store.store_point(spec, "r", points[0], {"y": 0.0})
            with store.db.transaction() as conn:
                conn.execute(
                    "INSERT INTO points (experiment_id, runner,"
                    " code_version, point_key, kind, payload,"
                    " created_at, updated_at)"
                    " VALUES ('iso', 'r', 'pinned', 'in-flight',"
                    " 'json', ?, 0, 0)",
                    (b"{}",),
                )
                # Mid-transaction: the committed snapshot has 1 row.
                assert reader.execute(
                    "SELECT count(*) FROM points"
                ).fetchone() == (1,)
            assert reader.execute(
                "SELECT count(*) FROM points"
            ).fetchone() == (2,)
        finally:
            reader.close()

    @given(
        interleave=st.lists(
            st.sampled_from(["write", "read", "read-mid"]),
            min_size=4, max_size=24,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_randomised_interleavings_read_only_committed(
        self, tmp_path_factory, interleave
    ):
        base = tmp_path_factory.mktemp("iso")
        with ResultStore(base / "store", code_version="pinned") as store:
            store.acquire()
            store.open()
            spec = grid_spec(64, "iso-rand")
            points = spec.points()
            reader = self._reader(store.directory)
            committed = 0
            try:
                for op in interleave:
                    if committed >= len(points):
                        break
                    if op == "write":
                        store.store_point(
                            spec, "r", points[committed],
                            {"y": float(committed)},
                        )
                        committed += 1
                    elif op == "read":
                        assert reader.execute(
                            "SELECT count(*) FROM points"
                        ).fetchone() == (committed,)
                    else:  # read inside an open write transaction
                        with store.db.transaction() as conn:
                            conn.execute(
                                "UPDATE points SET updated_at ="
                                " updated_at + 1"
                            )
                            assert reader.execute(
                                "SELECT count(*),"
                                " coalesce(sum(updated_at), -1)"
                                " FROM points"
                            ).fetchone()[0] == committed
                assert reader.execute(
                    "SELECT count(*) FROM points"
                ).fetchone() == (committed,)
            finally:
                reader.close()


class TestConcurrentReaderProcess:
    def test_reader_process_sees_monotonic_committed_counts(
        self, tmp_path
    ):
        """A second *process* polling during an active write session
        observes only committed, never-decreasing point counts."""
        script = (
            "import json, sqlite3, sys, time\n"
            "from pathlib import Path\n"
            "workdir = Path(sys.argv[1])\n"
            "target = int(sys.argv[2])\n"
            "conn = sqlite3.connect(workdir / 'store' / 'store.sqlite3',"
            " timeout=30.0)\n"
            "seen = []\n"
            "deadline = time.time() + 60\n"
            "while time.time() < deadline:\n"
            "    (count,) = conn.execute("
            "'SELECT count(*) FROM points').fetchone()\n"
            "    seen.append(count)\n"
            "    if count >= target:\n"
            "        break\n"
            "    time.sleep(0.001)\n"
            "(workdir / 'seen.json').write_text(json.dumps(seen))\n"
        )
        n = 40
        with ResultStore(tmp_path / "store", code_version="pinned") as store:
            store.open()
            spec = grid_spec(n, "mono")
            points = spec.points()
            # Write the first point so the reader has a database file.
            store.store_point(spec, "r", points[0], {"y": 0.0})
            driver = tmp_path / "reader.py"
            driver.write_text(script, encoding="utf-8")
            env = dict(os.environ)
            src = str(
                __import__("pathlib").Path(__file__).resolve().parents[2]
                / "src"
            )
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src, env.get("PYTHONPATH")) if p
            )
            proc = subprocess.Popen(
                [sys.executable, str(driver), str(tmp_path), str(n)],
                env=env,
            )
            try:
                for i in range(1, n):
                    store.store_point(spec, "r", points[i], {"y": float(i)})
                    time.sleep(0.001)
            finally:
                assert proc.wait(timeout=60) == 0
        seen = json.loads((tmp_path / "seen.json").read_text())
        assert seen, "reader never sampled"
        assert seen == sorted(seen), "committed counts went backwards"
        assert seen[-1] == n
        assert all(0 <= count <= n for count in seen)
