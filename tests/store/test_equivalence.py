"""Store-backed sweeps are byte-identical to the pickle path.

The replacement contract: swapping ``SweepCache`` + JSONL journal for
the store must change *nothing* observable — same ``SweepResult``
values and outcomes, same ``canonical_bytes``, serial or parallel,
cold or warm, before or after finalization into columnar shards.
"""

import pickle

import pytest

from repro.experiments.sweep import (
    STORE_ENV_VAR,
    SweepCache,
    SweepSpec,
    canonical_bytes,
    run_sweep,
    runner_name,
    sweep_cache,
)
from repro.store import ResultStore, StoreSweepCache

from tests.store.conftest import (
    grid_spec,
    mixed_runner,
    opaque_runner,
    scalar_runner,
)


RUNNERS = [scalar_runner, mixed_runner, opaque_runner]


def _run(spec, runner, cache, workers=1, journal=None, resume=False):
    return run_sweep(
        spec, runner, workers=workers, cache=cache,
        journal=journal, resume=resume,
    )


def _signature(result):
    return (
        canonical_bytes(result.values),
        [
            (o.key, o.index, o.status, o.attempts, o.error)
            for o in result.outcomes
        ],
    )


class TestByteIdentity:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_store_matches_pickle_cache_cold_and_warm(
        self, tmp_path, runner
    ):
        spec = grid_spec(6)
        pickle_cache = SweepCache(tmp_path / "pkl", code_version="pinned")
        with ResultStore(tmp_path / "store", code_version="pinned") as st:
            store_cache = st.sweep_cache()
            for cold in (True, False):
                a = _run(spec, runner, pickle_cache)
                b = _run(spec, runner, store_cache)
                assert _signature(a) == _signature(b)
                assert a.values == b.values

    @pytest.mark.parametrize("runner", [scalar_runner, mixed_runner])
    def test_serial_matches_parallel_through_store(self, tmp_path, runner):
        spec = grid_spec(6)
        with ResultStore(tmp_path / "s1", code_version="pinned") as s1:
            serial = _run(spec, runner, s1.sweep_cache(), workers=1)
        with ResultStore(tmp_path / "s2", code_version="pinned") as s2:
            parallel = _run(spec, runner, s2.sweep_cache(), workers=2)
        assert _signature(serial) == _signature(parallel)

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_finalized_columnar_replay_still_identical(
        self, tmp_path, runner
    ):
        spec = grid_spec(7)
        name = runner_name(runner)
        pickle_cache = SweepCache(tmp_path / "pkl", code_version="pinned")
        _run(spec, runner, pickle_cache)
        pickle_warm = _run(spec, runner, pickle_cache)
        with ResultStore(tmp_path / "store", code_version="pinned") as st:
            cold = _run(spec, runner, st.sweep_cache())
            st.finalize_sweep(spec, name, shard_points=3)
            warm = _run(spec, runner, st.sweep_cache())
            assert cold.values == warm.values
            assert canonical_bytes(warm.values) == canonical_bytes(
                pickle_warm.values
            )
            assert _signature(warm) == _signature(pickle_warm)
            assert all(o.cached for o in warm.outcomes)
            # Replays after finalization must come from the columns,
            # not from pickled blobs.
            if runner is not opaque_runner:
                assert st.stats["column_point"] == len(spec)

    def test_warm_replay_value_types_are_exact(self, tmp_path):
        spec = grid_spec(5)
        with ResultStore(tmp_path / "store", code_version="pinned") as st:
            cold = _run(spec, scalar_runner, st.sweep_cache())
            st.finalize_sweep(spec, runner_name(scalar_runner))
            warm = _run(spec, scalar_runner, st.sweep_cache())
        for before, after in zip(cold.values, warm.values):
            assert before == after
            for key in before:
                assert type(before[key]) is type(after[key])


class TestJournalEquivalence:
    def test_resume_skips_stored_points_like_the_pickle_path(
        self, tmp_path
    ):
        spec = grid_spec(6)
        name = runner_name(scalar_runner)

        with ResultStore(tmp_path / "store", code_version="pinned") as st:
            first = _run(
                spec, scalar_runner, st.sweep_cache(),
                journal=st.run_journal(spec.experiment_id, name),
                resume=True,
            )
            assert not any(o.resumed for o in first.outcomes)
            second = _run(
                spec, scalar_runner, st.sweep_cache(),
                journal=st.run_journal(spec.experiment_id, name),
                resume=True,
            )
        pickle_dir = tmp_path / "pkl"
        cache = SweepCache(pickle_dir, code_version="pinned")
        _run(spec, scalar_runner, cache, journal=pickle_dir, resume=True)
        baseline = _run(
            spec, scalar_runner, cache, journal=pickle_dir, resume=True
        )
        assert second.values == baseline.values
        assert [o.resumed for o in second.outcomes] == [
            o.resumed for o in baseline.outcomes
        ]
        assert all(o.resumed for o in second.outcomes)


class TestStoreDetection:
    def test_sweep_cache_prefers_store_when_database_exists(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        directory = tmp_path / "cache"
        assert isinstance(sweep_cache(directory), SweepCache)
        with ResultStore(directory):
            pass
        assert isinstance(sweep_cache(directory), StoreSweepCache)

    def test_env_var_forces_and_forbids(self, tmp_path, monkeypatch):
        directory = tmp_path / "cache"
        monkeypatch.setenv(STORE_ENV_VAR, "1")
        assert isinstance(sweep_cache(directory), StoreSweepCache)
        with ResultStore(directory):
            pass
        monkeypatch.setenv(STORE_ENV_VAR, "0")
        assert isinstance(sweep_cache(directory), SweepCache)

    def test_directory_journal_shares_the_store(self, tmp_path):
        """Passing the store directory as the *journal* must not open a
        second store handle (which would self-deadlock on the flock)."""
        spec = grid_spec(4)
        directory = tmp_path / "cache"
        with ResultStore(directory, code_version="pinned") as st:
            result = run_sweep(
                spec, scalar_runner, cache=st.sweep_cache(),
                journal=directory, resume=True,
            )
            assert result.ok_count == len(spec)
            replay = run_sweep(
                spec, scalar_runner, cache=st.sweep_cache(),
                journal=directory, resume=True,
            )
            assert all(o.resumed for o in replay.outcomes)
