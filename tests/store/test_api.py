"""Submit/status/results API and the ``store`` CLI verbs."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError, StoreError
from repro.experiments.sweep import runner_name
from repro.store import ResultStore

from tests.store.conftest import grid_spec, mixed_runner, scalar_runner


class TestSubmissions:
    def test_submit_records_pending(self, store):
        spec = grid_spec(4, "sub-grid")
        submission_id = store.submit(
            "nightly", spec, runner_name(scalar_runner)
        )
        record = store.submission(submission_id)
        assert record["state"] == "pending"
        assert record["name"] == "nightly"
        assert record["experiment_id"] == "sub-grid"
        rows = store.status()
        assert [row["id"] for row in rows] == [submission_id]

    def test_run_submission_executes_finalizes_and_reports(self, store):
        spec = grid_spec(5, "sub-run")
        submission_id = store.submit(
            "go", spec, runner_name(scalar_runner)
        )
        result = store.run_submission(submission_id, scalar_runner)
        assert result.ok_count == 5
        record = store.submission(submission_id)
        assert record["state"] == "done"
        assert record["ok_points"] == 5 and record["failed_points"] == 0
        # Finalized: the metric columns read straight off the shards.
        headers, rows = store.results_rows(submission_id, metrics=["y"])
        assert headers == ["index", "params", "y"]
        assert [row[2] for row in rows] == [x * 2.0 for x in range(5)]

    def test_results_defaults_to_all_columnar_metrics(self, store):
        spec = grid_spec(3, "sub-metrics")
        submission_id = store.submit(
            "m", spec, runner_name(mixed_runner)
        )
        store.run_submission(submission_id, mixed_runner)
        headers, rows = store.results_rows(submission_id)
        # Scalar metrics only — strings/nested live in the residual.
        assert headers == ["index", "params", "count", "seed_mod", "y"]
        assert len(rows) == 3

    def test_wrong_runner_is_rejected(self, store):
        spec = grid_spec(3, "sub-wrong")
        submission_id = store.submit(
            "w", spec, runner_name(scalar_runner)
        )
        with pytest.raises(ConfigurationError, match="recorded for runner"):
            store.run_submission(submission_id, mixed_runner)

    def test_unknown_submission_raises(self, store):
        with pytest.raises(StoreError, match="no submission"):
            store.submission(999)
        with pytest.raises(StoreError):
            store.results_rows(999)

    def test_status_newest_first(self, store):
        spec = grid_spec(2, "sub-order")
        first = store.submit("one", spec, "r")
        second = store.submit("two", spec, "r")
        assert [row["id"] for row in store.status()] == [second, first]


class TestSubmitCrash:
    def test_kill_before_submit_commit_leaves_no_row(self, tmp_path):
        from repro.experiments.resilience import CHAOS_EXIT_CODE

        from tests.store.conftest import run_driver

        script = (
            "import sys\n"
            "from pathlib import Path\n"
            "from repro.experiments.sweep import SweepSpec\n"
            "from repro.store import ResultStore\n"
            "store = ResultStore(Path(sys.argv[1]) / 'store')\n"
            "spec = SweepSpec('sub-kill', axes={'x': [1, 2]})\n"
            "store.submit('doomed', spec, 'r')\n"
        )
        killed = run_driver(
            script, tmp_path,
            env={"REPRO_STORE_FAULT": "submit-pre-commit"},
        )
        assert killed.returncode == CHAOS_EXIT_CODE, killed.stderr
        with ResultStore(tmp_path / "store") as store:
            assert store.status() == []
            assert store.verify()["ok"]
            # The store is fully usable: the same submission lands
            # cleanly on the next attempt.
            from repro.experiments.sweep import SweepSpec

            spec = SweepSpec("sub-kill", axes={"x": [1, 2]})
            assert store.submit("retry", spec, "r") == 1


class TestStoreCli:
    def test_init_status_gc_verify_round_trip(self, tmp_path, capsys):
        directory = str(tmp_path / "store")
        assert main(["store", "init", directory]) == 0
        assert "ready" in capsys.readouterr().out
        assert main(["store", "status", directory, "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []
        assert main(["store", "verify", directory]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True
        assert main(["store", "gc", directory, "--dry-run"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dry_run"] is True

    def test_submit_defer_then_run_then_results(self, tmp_path, capsys):
        directory = str(tmp_path / "store")
        code = main([
            "store", "submit", directory,
            "--preset", "baseline-32",
            "--axis", "workload.background_rho=0.5,0.85",
            "--horizon", "300",
            "--name", "cli-demo",
            "--defer",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "submission 1" in out and "2 points" in out

        assert main(["store", "status", directory, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["state"] == "pending"

        assert main(["store", "run", directory, "1"]) == 0
        assert "done (ok=2, failed=0)" in capsys.readouterr().out

        assert main([
            "store", "results", directory, "1",
            "--metrics", "utilisation_classical", "--json",
        ]) == 0
        table = json.loads(capsys.readouterr().out)
        assert table["headers"] == [
            "index", "params", "utilisation_classical"
        ]
        assert len(table["rows"]) == 2
        assert all(
            isinstance(row[2], float) for row in table["rows"]
        )

    def test_submit_runs_synchronously_by_default(self, tmp_path, capsys):
        directory = str(tmp_path / "store")
        assert main([
            "store", "submit", directory,
            "--preset", "baseline-32",
            "--axis", "workload.background_rho=0.7",
            "--horizon", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "done (ok=1, failed=0)" in out
        assert main(["store", "status", directory, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["state"] == "done"
        assert rows[0]["name"] == "baseline-32"

    def test_axis_values_parse_as_json_scalars(self, tmp_path, capsys):
        directory = str(tmp_path / "store")
        assert main([
            "store", "submit", directory,
            "--preset", "baseline-32",
            "--axis", "workload.background_rho=0.25",
            "--axis", "policy.policy=easy",
            "--horizon", "300",
            "--defer",
        ]) == 0
        capsys.readouterr()
        assert main(["store", "status", directory, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        spec = json.loads(
            ResultStore(tmp_path / "store").submission(
                rows[0]["id"]
            )["spec_json"]
        )
        assert spec["axes"]["workload.background_rho"] == [0.25]
        assert spec["axes"]["policy.policy"] == ["easy"]

    def test_bad_axis_and_missing_axis_error_cleanly(self, tmp_path):
        directory = str(tmp_path / "store")
        with pytest.raises(SystemExit):
            main([
                "store", "submit", directory,
                "--preset", "baseline-32", "--axis", "garbage",
            ])
        with pytest.raises(SystemExit):
            main(["store", "submit", directory, "--preset", "baseline-32"])

    def test_sweep_store_flag_creates_store_backed_cache(
        self, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        assert main([
            "sweep", "E7",
            "--cache-dir", str(cache_dir), "--store", "--workers", "1",
        ]) == 0
        capsys.readouterr()
        assert (cache_dir / "store.sqlite3").exists()
        # Points landed in the store, not as pickle files.
        assert not list(cache_dir.glob("*.pkl"))
