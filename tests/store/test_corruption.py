"""Corruption quarantine and garbage collection.

The pickle cache's contract, kept: damaged state is *quarantined*
(renamed ``*.corrupt``, never deleted, never reused) with a clear
error, and the damaged points simply become cache misses that
re-execute — corruption costs recompute, never a crash loop and never
silent bad data.
"""

import pytest

from repro.errors import StoreCorruptError, StoreError
from repro.experiments.sweep import run_sweep, runner_name
from repro.store import ResultStore

from tests.store.conftest import grid_spec, scalar_runner


def _finalized_store(tmp_path, n=6, shard_points=2):
    store = ResultStore(tmp_path / "store", code_version="pinned")
    store.open()
    spec = grid_spec(n, "corrupt-grid")
    name = runner_name(scalar_runner)
    run_sweep(spec, scalar_runner, cache=store.sweep_cache())
    store.finalize_sweep(spec, name, shard_points=shard_points)
    return store, spec, name


@pytest.fixture(params=["truncate", "garbage", "empty"])
def damage(request):
    def apply(path):
        if request.param == "truncate":
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 3])
        elif request.param == "garbage":
            path.write_bytes(b"\x89NOT-AN-NPZ" * 64)
        else:
            path.write_bytes(b"")

    return apply


class TestShardQuarantine:
    def test_damaged_shard_quarantined_with_clear_error(
        self, tmp_path, damage
    ):
        store, spec, name = _finalized_store(tmp_path)
        shard = sorted(store.db.shards_dir.glob("*.npz"))[1]
        store.close()
        damage(shard)

        with ResultStore(tmp_path / "store", code_version="pinned") as st:
            with pytest.raises(StoreCorruptError) as excinfo:
                st.read_column(spec, name, "y")
            message = str(excinfo.value)
            assert "quarantined" in message and shard.name in message
        assert not shard.exists()
        quarantined = list(store.db.shards_dir.glob("*.npz.corrupt"))
        assert len(quarantined) == 1

    def test_damaged_points_become_misses_and_reexecute(
        self, tmp_path, damage
    ):
        store, spec, name = _finalized_store(tmp_path)
        shard = sorted(store.db.shards_dir.glob("*.npz"))[0]
        store.close()
        damage(shard)

        with ResultStore(tmp_path / "store", code_version="pinned") as st:
            result = run_sweep(spec, scalar_runner, cache=st.sweep_cache())
            # Shard 0 held points 0-1: they re-executed; the healthy
            # shards replayed from columns.
            cached = [o.cached for o in result.outcomes]
            assert cached == [False, False, True, True, True, True]
            assert result.values == [
                scalar_runner(p.params, p.seed) for p in spec.points()
            ]
            # Re-finalizing heals the sweep back to fully columnar.
            assert st.finalize_sweep(spec, name, shard_points=2) == 3
            assert st.read_column(spec, name, "y").tolist() == [
                x * 2.0 for x in range(6)
            ]

    def test_sweep_reopens_after_quarantine(self, tmp_path, damage):
        store, spec, name = _finalized_store(tmp_path)
        shard = sorted(store.db.shards_dir.glob("*.npz"))[0]
        store.close()
        damage(shard)
        with ResultStore(tmp_path / "store", code_version="pinned") as st:
            with pytest.raises(StoreCorruptError):
                st.read_column(spec, name, "y")
            # Quarantine reopened the sweep: columnar reads refuse
            # (incomplete) instead of returning silently partial data.
            with pytest.raises(StoreError):
                st.read_column(spec, name, "y")
            report = st.verify()
            assert report["ok"], report


class TestInlinePayloadCorruption:
    def test_torn_inline_payload_is_dropped_and_reexecutes(self, store):
        spec = grid_spec(3, "inline")
        name = "r"
        point = spec.points()[0]
        store.store_point(spec, name, point, {"y": 1.0})
        store.db.connection().execute(
            "UPDATE points SET payload = ? WHERE point_key LIKE ?",
            (b'{"torn', f"{point.key()}%"),
        )
        hit, _value = store.load_point(spec, name, point)
        assert not hit
        # The poisoned row is gone — the next load is a plain miss.
        hit, _value = store.load_point(spec, name, point)
        assert not hit

    def test_unpicklable_garbage_payload_dropped(self, store):
        spec = grid_spec(3, "inline2")
        point = spec.points()[0]
        store.store_point(spec, "r", point, ("tuple", 1))
        store.db.connection().execute(
            "UPDATE points SET payload = x'c0ffee'"
        )
        hit, _value = store.load_point(spec, "r", point)
        assert not hit


class TestVerifyReportsShardDamage:
    def test_verify_lists_unreadable_shards(self, tmp_path, damage):
        store, spec, name = _finalized_store(tmp_path)
        shard = sorted(store.db.shards_dir.glob("*.npz"))[2]
        damage(shard)
        report = store.verify()
        store.close()
        assert not report["ok"]
        assert any(shard.name in issue for issue in report["issues"])


class TestGarbageCollection:
    def test_orphans_removed_corrupt_kept(self, tmp_path):
        store, spec, name = _finalized_store(tmp_path)
        orphan = store.db.shards_dir / "sweep999999-0000.npz"
        orphan.write_bytes(b"leftover from a killed finalize")
        tmp = store.db.shards_dir / "tmpx.tmp"
        tmp.write_bytes(b"half-written temp file")
        evidence = store.db.shards_dir / "old.npz.corrupt"
        evidence.write_bytes(b"quarantined evidence")

        dry = store.gc(dry_run=True)
        assert sorted(dry["orphan_files"]) == ["sweep999999-0000.npz",
                                               "tmpx.tmp"]
        assert orphan.exists() and tmp.exists()

        report = store.gc()
        assert sorted(report["orphan_files"]) == ["sweep999999-0000.npz",
                                                  "tmpx.tmp"]
        assert not orphan.exists() and not tmp.exists()
        assert evidence.exists()
        # Referenced shards are untouched; the sweep still reads.
        assert store.read_column(spec, name, "y").tolist() == [
            x * 2.0 for x in range(6)
        ]
        store.close()

    def test_keep_days_expires_idle_sweeps(self, tmp_path):
        store, spec, name = _finalized_store(tmp_path)
        # Backdate every timestamp on the sweep beyond the horizon.
        with store.db.transaction() as conn:
            conn.execute(
                "UPDATE sweeps SET updated_at = 0, last_read_at = 0"
            )
        report = store.gc(keep_days=1.0)
        assert report["sweeps_removed"] == 1
        assert report["points_removed"] == 6
        assert not list(store.db.shards_dir.glob("*.npz"))
        # The expired points are plain misses now.
        hit, _ = store.load_point(spec, name, spec.points()[0])
        assert not hit
        store.close()

    def test_recent_read_keeps_a_sweep_alive(self, tmp_path):
        store, spec, name = _finalized_store(tmp_path)
        with store.db.transaction() as conn:
            conn.execute("UPDATE sweeps SET updated_at = 0")
        # Reading a column refreshes last_read_at.
        store.read_column(spec, name, "y")
        report = store.gc(keep_days=1.0)
        assert report["sweeps_removed"] == 0
        assert store.read_column(spec, name, "y").tolist() == [
            x * 2.0 for x in range(6)
        ]
        store.close()
