"""Columnar codec: exact round-trips, shard files, lazy column reads.

Byte-identity with the pickle path rests on this layer: every value
the store hands back must ``==`` what the runner returned, whether it
travelled as canonical JSON, pickle, or split across shard arrays
plus a residual payload.
"""

import math
import pickle

import numpy as np
import pytest

from repro.store import columns as col


SCALARS = [0, 1, -7, 2**62, -(2**62), 0.0, -0.0, 1.5, math.pi,
           float("inf"), True, False, None]


class TestCodec:
    @pytest.mark.parametrize("value", SCALARS)
    def test_scalar_kinds_round_trip_through_arrays(self, value):
        arrays, metrics = col.build_shard_arrays([{"m": value}])
        assert metrics == ["m"]
        rebuilt = col.point_from_arrays(
            {"m": (arrays["k:m"], arrays["f8:m"], arrays["i8:m"])}, 0
        )
        assert rebuilt == {"m": value}
        assert type(rebuilt["m"]) is type(value)

    def test_nan_round_trips_as_float(self):
        arrays, _ = col.build_shard_arrays([{"m": float("nan")}])
        rebuilt = col.point_from_arrays(
            {"m": (arrays["k:m"], arrays["f8:m"], arrays["i8:m"])}, 0
        )
        assert math.isnan(rebuilt["m"]) and type(rebuilt["m"]) is float

    def test_json_payload_is_exact(self):
        value = {"pi": math.pi, "n": 10**40, "nan": float("nan"),
                 "inf": float("-inf"), "flag": True, "none": None,
                 "label": "x", "nested": {"deep": [1, 2.5, "s"]}}
        kind, payload = col.encode_value(value)
        assert kind == col.PAYLOAD_JSON
        decoded = col.decode_value(kind, payload)
        assert decoded["pi"] == math.pi
        assert decoded["n"] == 10**40
        assert math.isnan(decoded["nan"])
        assert decoded["inf"] == float("-inf")
        assert decoded["flag"] is True
        assert decoded["none"] is None
        assert decoded["nested"] == {"deep": [1, 2.5, "s"]}

    @pytest.mark.parametrize("value", [
        ("a", "tuple"),                 # tuples come back as lists
        {"k": (1, 2)},                  # ... even nested
        {1: "non-str key"},             # int keys come back as strings
        {"arr": np.float64(1.0)},       # third-party numerics
        {"s": {1, 2}},                  # sets are not JSON at all
        object(),
    ])
    def test_non_json_exact_values_fall_back_to_pickle(self, value):
        kind, payload = col.encode_value(value)
        assert kind == col.PAYLOAD_PICKLE
        if type(value) is not object:  # bare object() has no useful ==
            assert col.decode_value(kind, payload) == value

    def test_split_point_sends_scalars_to_columns(self):
        value = {"y": 1.5, "n": 3, "flag": False, "none": None,
                 "label": "s", "nested": {"a": 1}, "big": 2**80}
        scalars, residual = col.split_point(value)
        assert scalars == {"y": 1.5, "n": 3, "flag": False, "none": None}
        assert residual == {"label": "s", "nested": {"a": 1}, "big": 2**80}

    @pytest.mark.parametrize("value", [
        "not a dict", [1, 2], 42,
        {"only": "strings"},            # no scalar member at all
        {1: 2.0},                       # non-str key
    ])
    def test_split_point_rejects_ineligible_values(self, value):
        assert col.split_point(value) is None

    def test_int64_boundaries(self):
        assert col.scalar_kind(2**63 - 1) == col.KIND_INT
        assert col.scalar_kind(-(2**63)) == col.KIND_INT
        assert col.scalar_kind(2**63) == col.KIND_ABSENT
        assert col.scalar_kind(-(2**63) - 1) == col.KIND_ABSENT


class TestShardFiles:
    def test_shard_round_trip_multi_point(self, tmp_path):
        values = [
            {"y": 0.5, "n": 1},
            None,                       # ineligible point: kinds stay 0
            {"y": 1.5, "n": 3, "extra": True},
        ]
        arrays, metrics = col.build_shard_arrays(values)
        assert metrics == ["extra", "n", "y"]
        path = tmp_path / "shard.npz"
        col.write_shard(path, arrays)
        npz = col.open_shard(path)
        by_metric = {
            m: col.shard_metric_arrays(npz, m) for m in metrics
        }
        assert col.point_from_arrays(by_metric, 0) == {"y": 0.5, "n": 1}
        assert col.point_from_arrays(by_metric, 1) == {}
        assert col.point_from_arrays(by_metric, 2) == {
            "y": 1.5, "n": 3, "extra": True
        }

    def test_unknown_metric_reads_none(self, tmp_path):
        arrays, _ = col.build_shard_arrays([{"y": 1.0}])
        path = tmp_path / "shard.npz"
        col.write_shard(path, arrays)
        assert col.shard_metric_arrays(col.open_shard(path), "nope") is None

    def test_column_read_never_unpickles(self, tmp_path, monkeypatch):
        arrays, _ = col.build_shard_arrays(
            [{"y": float(i)} for i in range(32)]
        )
        path = tmp_path / "shard.npz"
        col.write_shard(path, arrays)

        def _forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("column read attempted to unpickle")

        monkeypatch.setattr(pickle, "loads", _forbidden)
        monkeypatch.setattr(pickle, "load", _forbidden)
        npz = col.open_shard(path)
        kinds, floats, _ints = col.shard_metric_arrays(npz, "y")
        assert floats.tolist() == [float(i) for i in range(32)]
        assert (kinds == col.KIND_FLOAT).all()

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        arrays, _ = col.build_shard_arrays([{"y": 1.0}])
        path = tmp_path / "shard.npz"
        col.write_shard(path, arrays)
        col.write_shard(path, arrays)  # overwrite is atomic too
        assert [p.name for p in tmp_path.iterdir()] == ["shard.npz"]


class TestAssembleColumn:
    def test_blocks_stitch_in_grid_order(self):
        a1, _ = col.build_shard_arrays([{"y": 1.0}, {"y": 2}])
        a2, _ = col.build_shard_arrays([None, {"y": True}])
        column = col.assemble_column(
            "y",
            [
                (0, 2, (a1["k:y"], a1["f8:y"], a1["i8:y"])),
                (2, 2, (a2["k:y"], a2["f8:y"], a2["i8:y"])),
            ],
            n_points=4,
        )
        assert column.tolist() == [1.0, 2, None, True]
        assert column.values[0] == 1.0 and column.values[1] == 2.0
        assert np.isnan(column.values[2]) and column.values[3] == 1.0
        assert column.present.tolist() == [True, True, False, True]
        assert len(column) == 4

    def test_missing_shard_block_reads_absent(self):
        column = col.assemble_column("y", [(0, 3, None)], n_points=3)
        assert column.tolist() == [None, None, None]
        assert not column.present.any()
