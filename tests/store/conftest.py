"""Shared fixtures and runners for the result-store battery.

Runners live at module scope so the process-pool backend can pickle
them; every runner is deterministic in ``(params, seed)`` so the
equivalence suites can compare store-backed output against fresh
execution and against the pickle cache byte for byte.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.sweep import SweepSpec
from repro.store import ResultStore


def scalar_runner(params, seed):
    """Pure scalar metrics: fully columnar, no residual payload."""
    x = params["x"]
    return {
        "y": x * 2.0,
        "n": x,
        "even": x % 2 == 0,
        "maybe": None if x == 1 else x / 3.0,
        "seed_mod": seed % 1000,
    }


def mixed_runner(params, seed):
    """Scalar metrics plus string/nested members (residual payload)."""
    x = params["x"]
    return {
        "y": x * 1.5,
        "count": x + 1,
        "label": f"case-{x}",
        "nested": {"inner": x, "tag": "t"},
        "seed_mod": seed % 1000,
    }


def opaque_runner(params, seed):
    """Not a metric dict at all: stays a pickled inline payload."""
    return ("tuple", params["x"], seed % 7)


def grid_spec(n=6, experiment_id="store-grid", **kwargs):
    return SweepSpec(experiment_id, axes={"x": list(range(n))}, **kwargs)


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "store"


@pytest.fixture
def store(store_dir):
    result_store = ResultStore(store_dir, code_version="pinned")
    with result_store:
        yield result_store


def run_driver(script, workdir, *argv, env=None, timeout=120):
    """Run an inline driver script in a fresh interpreter.

    Crash tests need a real process to die — ``os._exit`` in-process
    would take pytest with it.  Returns the ``CompletedProcess``.
    """
    workdir = Path(workdir)
    driver = workdir / "driver.py"
    driver.write_text(script, encoding="utf-8")
    merged = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    merged["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, merged.get("PYTHONPATH")) if p
    )
    merged.pop("REPRO_STORE_FAULT", None)
    merged.pop("REPRO_SWEEP_STORE", None)
    if env:
        merged.update(env)
    return subprocess.run(
        [sys.executable, str(driver), str(workdir), *map(str, argv)],
        env=merged,
        timeout=timeout,
        capture_output=True,
        text=True,
    )
