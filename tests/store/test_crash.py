"""SIGKILL-equivalent crashes at every store commit boundary.

The durability contract of the result store: a writer hard-killed at
*any* injected fault site (``REPRO_STORE_FAULT``) leaves a database
that reopens clean — integrity check passes, no torn row, no
half-written shard behind a committed row — and a resumed run
re-executes **zero** points whose values had committed before the
kill, finishing with output byte-identical to an uninterrupted run.

Each scenario runs in a fresh interpreter (the crash must take down a
real process); run counts are fsync'd marker files, one per point.
"""

import json
import sqlite3
from pathlib import Path

import pytest

from repro.experiments.resilience import CHAOS_EXIT_CODE

from tests.store.conftest import run_driver

#: Every sweep-path fault site, with the hit count that lands the
#: crash mid-grid (6 points, shard_points=2 -> 3 shards).
SITES = [
    ("point-pre-commit", 3),
    ("point-post-commit", 3),
    ("outcome-pre-commit", 3),
    ("outcome-post-commit", 3),
    ("shard-mid-write", 2),
    ("shard-tmp-written", 2),
    ("shard-renamed", 2),
    ("finalize-pre-commit", 1),
    ("finalize-post-commit", 1),
]

_SWEEP_DRIVER = """
import hashlib, json, os, sys
from pathlib import Path

from repro.experiments.sweep import (
    SweepSpec, canonical_bytes, run_sweep, runner_name,
)
from repro.store import ResultStore

workdir = Path(sys.argv[1])
mode = sys.argv[2]  # "run" (fault env may be set), "resume", "clean"


def runner(params, seed):
    marks = workdir / "points"
    marks.mkdir(exist_ok=True)
    with open(marks / f"p{params['x']}.runs", "a") as handle:
        handle.write(f"{os.getpid()}\\n")
        handle.flush()
        os.fsync(handle.fileno())
    return {
        "y": params["x"] * 2.0,
        "n": params["x"],
        "label": f"x{params['x']}",
    }


spec = SweepSpec("crash-grid", axes={"x": list(range(6))})
directory = workdir / ("clean-store" if mode == "clean" else "store")
store = ResultStore(directory, code_version="pinned")
name = runner_name(runner)
result = run_sweep(
    spec, runner, workers=1, cache=store.sweep_cache(),
    journal=store.run_journal(spec.experiment_id, name),
    resume=(mode != "clean"),
)
store.finalize_sweep(spec, name, shard_points=2)
report = {
    "digest": hashlib.sha256(canonical_bytes(result.values)).hexdigest(),
    "values": result.values,
    "resumed": [o.resumed for o in result.outcomes],
    "cached": [o.cached for o in result.outcomes],
    "verify": store.verify(),
    "column": store.read_column(spec, name, "y").tolist(),
}
store.close()
(workdir / f"result-{mode}.json").write_text(json.dumps(report))
"""


def _marker_counts(workdir):
    counts = {}
    points = Path(workdir) / "points"
    if points.is_dir():
        for path in points.glob("p*.runs"):
            x = int(path.stem[1:].split(".")[0])
            counts[x] = len(path.read_text().splitlines())
    return counts


def _stored_xs(workdir):
    """Grid positions whose values committed, read straight off disk."""
    conn = sqlite3.connect(Path(workdir) / "store" / "store.sqlite3")
    try:
        keys = [
            key for (key,) in conn.execute("SELECT point_key FROM points")
        ]
    finally:
        conn.close()
    return {json.loads(key.split(":rep")[0])["x"] for key in keys}


class TestKillAtEveryFaultSite:
    @pytest.mark.parametrize("site,hit", SITES)
    def test_reopen_clean_and_zero_stored_points_reexecute(
        self, tmp_path, site, hit
    ):
        killed = run_driver(
            _SWEEP_DRIVER, tmp_path, "run",
            env={"REPRO_STORE_FAULT": f"{site}:{hit}"},
        )
        assert killed.returncode == CHAOS_EXIT_CODE, killed.stderr
        assert not (tmp_path / "result-run.json").exists()

        runs_before = _marker_counts(tmp_path)
        stored = _stored_xs(tmp_path)
        # Whatever committed was executed at least once before dying.
        for x in stored:
            assert runs_before.get(x, 0) >= 1

        resumed = run_driver(_SWEEP_DRIVER, tmp_path, "resume")
        assert resumed.returncode == 0, resumed.stderr
        report = json.loads((tmp_path / "result-resume.json").read_text())
        assert report["verify"]["ok"], report["verify"]

        # THE contract: not one point whose value had committed before
        # the kill ran again on resume.
        runs_after = _marker_counts(tmp_path)
        for x in stored:
            assert runs_after[x] == runs_before[x], (
                f"stored point x={x} re-executed after {site}"
            )
        # ... and the sweep still completed every point exactly.
        assert all(runs_after.get(x, 0) >= 1 for x in range(6))
        assert report["column"] == [x * 2.0 for x in range(6)]

        clean = run_driver(_SWEEP_DRIVER, tmp_path, "clean")
        assert clean.returncode == 0, clean.stderr
        baseline = json.loads((tmp_path / "result-clean.json").read_text())
        assert report["digest"] == baseline["digest"]
        assert report["values"] == baseline["values"]

    def test_no_fault_env_means_no_crash(self, tmp_path):
        done = run_driver(_SWEEP_DRIVER, tmp_path, "run")
        assert done.returncode == 0, done.stderr
        report = json.loads((tmp_path / "result-run.json").read_text())
        assert report["verify"]["ok"]
        assert _marker_counts(tmp_path) == {x: 1 for x in range(6)}


class TestTornShardNeverPublished:
    def test_kill_mid_shard_write_leaves_no_committed_reference(
        self, tmp_path
    ):
        """A shard row must never point at a file that is not fully
        on disk: the file publishes before the transaction commits."""
        killed = run_driver(
            _SWEEP_DRIVER, tmp_path, "run",
            env={"REPRO_STORE_FAULT": "shard-mid-write:1"},
        )
        assert killed.returncode == CHAOS_EXIT_CODE
        conn = sqlite3.connect(tmp_path / "store" / "store.sqlite3")
        try:
            assert conn.execute(
                "SELECT count(*) FROM shards"
            ).fetchone() == (0,)
            # No point row claims to live in a shard either.
            assert conn.execute(
                "SELECT count(*) FROM points WHERE shard_id IS NOT NULL"
            ).fetchone() == (0,)
        finally:
            conn.close()
        # The half-written temp file (if any) is unreferenced garbage
        # the next resume/gc handles; the published name never exists.
        shards_dir = tmp_path / "store" / "shards"
        if shards_dir.is_dir():
            assert not list(shards_dir.glob("sweep*.npz"))

    def test_orphan_from_kill_after_rename_is_collectable(self, tmp_path):
        """Killed between file publish and row commit: the file is an
        orphan gc reports, never a dangling database reference."""
        killed = run_driver(
            _SWEEP_DRIVER, tmp_path, "run",
            env={"REPRO_STORE_FAULT": "shard-renamed:1"},
        )
        assert killed.returncode == CHAOS_EXIT_CODE
        conn = sqlite3.connect(tmp_path / "store" / "store.sqlite3")
        try:
            assert conn.execute(
                "SELECT count(*) FROM shards"
            ).fetchone() == (0,)
        finally:
            conn.close()
        orphans = list((tmp_path / "store" / "shards").glob("sweep*.npz"))
        assert len(orphans) == 1

        # Resume overwrites the orphan in place and commits its row.
        resumed = run_driver(_SWEEP_DRIVER, tmp_path, "resume")
        assert resumed.returncode == 0, resumed.stderr
        report = json.loads((tmp_path / "result-resume.json").read_text())
        assert report["verify"]["ok"]
