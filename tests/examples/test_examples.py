"""Every example script runs to completion under a short horizon.

Examples are documentation that executes; this suite keeps them honest
against API changes.  Each script runs in a subprocess (so module
state, argparse and ``__main__`` behaviour are exercised exactly as a
user would hit them) with ``REPRO_EXAMPLE_HORIZON`` shrunk so the
suite stays fast.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Every example must render at least one table or summary; an example
#: that silently prints nothing is as broken as one that crashes.
MIN_OUTPUT_LINES = 5


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{REPO_ROOT / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
    )
    env["REPRO_EXAMPLE_HORIZON"] = "1800"  # short smoke horizon
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert len(result.stdout.splitlines()) >= MIN_OUTPUT_LINES, (
        f"{script.name} printed almost nothing:\n{result.stdout}"
    )
