"""Equivalence suite: compiled/incremental timelines vs the naive seed.

The availability-timeline layer was rewritten around compiled profiles,
copy-on-write forks and an incremental cross-pass cache.  These tests
pin the rewrite to the original semantics:

- ``NaivePartitionTimeline``/``NaiveClusterTimeline`` are a literal
  port of the pre-rewrite implementation (single accumulation pass for
  ``fits``, ``fits``-per-candidate ``earliest_start``) and serve as the
  executable specification;
- property tests drive both implementations with randomized occupation
  streams and queries and require identical answers for ``fits``,
  ``earliest_start`` and every policy's ``select`` output;
- full scheduler runs compare the incremental timeline cache against
  per-pass rebuilds, including the built-in debug cross-check.
"""

import bisect

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.builders import build_hpcqc_cluster
from repro.scheduler.backfill import (
    HORIZON,
    ClusterTimeline,
    PartitionTimeline,
    TimelineCache,
    make_policy,
    profiles_equal,
)
from repro.scheduler.job import Job, JobComponent, JobSpec, JobState
from repro.scheduler.scheduler import BatchScheduler
from repro.sim.kernel import Kernel

# -- naive reference (port of the seed implementation) -----------------------


class NaivePartitionTimeline:
    """Reference profile: sparse deltas + one accumulation pass."""

    def __init__(self, capacity_nodes, capacity_gres, now):
        self.now = now
        self._times = [now]
        self._node_deltas = [capacity_nodes]
        self._gres_deltas = [dict(capacity_gres)]

    def _add_delta(self, time, nodes, gres=None):
        time = max(time, self.now)
        index = bisect.bisect_left(self._times, time)
        if index < len(self._times) and self._times[index] == time:
            self._node_deltas[index] += nodes
            for gres_type, count in (gres or {}).items():
                self._gres_deltas[index][gres_type] = (
                    self._gres_deltas[index].get(gres_type, 0) + count
                )
        else:
            self._times.insert(index, time)
            self._node_deltas.insert(index, nodes)
            self._gres_deltas.insert(index, dict(gres or {}))

    def occupy(self, start, end, nodes, gres=None):
        if end <= start:
            return
        self._add_delta(start, -nodes, {t: -c for t, c in (gres or {}).items()})
        if end < HORIZON + self.now:
            self._add_delta(end, nodes, dict(gres or {}))

    def fits(self, start, duration, nodes, gres=None):
        """Single accumulation pass: track the minimum free capacity
        over the window [start, start+duration), including the value in
        force at ``start``."""
        end = start + duration
        free_nodes = 0
        free_gres = {}
        checked_start = False

        def deficit():
            if free_nodes < nodes:
                return True
            return any(
                free_gres.get(gres_type, 0) < needed
                for gres_type, needed in (gres or {}).items()
            )

        for index, time in enumerate(self._times):
            if time > start:
                if not checked_start:
                    # Value in force at ``start`` (state of the last
                    # breakpoint <= start).
                    checked_start = True
                    if deficit():
                        return False
                if time >= end:
                    break
            free_nodes += self._node_deltas[index]
            for gres_type, count in self._gres_deltas[index].items():
                free_gres[gres_type] = free_gres.get(gres_type, 0) + count
            if start <= time < end and deficit():
                return False
        if not checked_start and deficit():
            return False
        return True


class NaiveClusterTimeline:
    """Reference cluster timeline: ``fits`` per earliest-start candidate."""

    def __init__(self, cluster, now):
        self.now = now
        self.partitions = {}
        for name, partition in cluster.partitions.items():
            gres_capacity = {
                gres_type: partition.gres_capacity(gres_type)
                for gres_type in partition.gres_types()
            }
            self.partitions[name] = NaivePartitionTimeline(
                partition.usable_node_count(), gres_capacity, now
            )
        for allocation in cluster.active_allocations():
            timeline = self.partitions[allocation.partition_name]
            timeline.occupy(
                now,
                min(allocation.expected_end, now + HORIZON),
                allocation.node_count,
                allocation.gres_counts(),
            )

    def fits_at(self, components, start, duration):
        return all(
            self.partitions[component.partition].fits(
                start, duration, component.nodes, component.gres
            )
            for component in components
        )

    def earliest_start(self, components, duration):
        candidates = {self.now}
        for component in components:
            candidates.update(
                t
                for t in self.partitions[component.partition]._times
                if t >= self.now
            )
        for candidate in sorted(candidates):
            if candidate - self.now > HORIZON:
                break
            if self.fits_at(components, candidate, duration):
                return candidate
        return None

    def occupy(self, components, start, duration):
        for component in components:
            self.partitions[component.partition].occupy(
                start, start + duration, component.nodes, component.gres
            )


def naive_select(policy_name, pending, cluster, now):
    """The seed implementation of every policy's ``select``."""
    timeline = NaiveClusterTimeline(cluster, now)

    def starts_now(tl, job):
        return tl.fits_at(job.spec.components, now, job.spec.walltime_limit)

    started = []
    if policy_name == "fifo":
        for job in pending:
            if starts_now(timeline, job):
                timeline.occupy(job.spec.components, now,
                                job.spec.walltime_limit)
                started.append(job)
            else:
                break
    elif policy_name == "easy":
        head = None
        head_start = None
        for job in pending:
            duration = job.spec.walltime_limit
            if head is None:
                if starts_now(timeline, job):
                    timeline.occupy(job.spec.components, now, duration)
                    started.append(job)
                else:
                    head = job
                    head_start = timeline.earliest_start(
                        job.spec.components, duration
                    )
                continue
            if not starts_now(timeline, job):
                continue
            if head_start is None:
                timeline.occupy(job.spec.components, now, duration)
                started.append(job)
                continue
            trial = NaiveClusterTimeline(cluster, now)
            for other in started:
                trial.occupy(other.spec.components, now,
                             other.spec.walltime_limit)
            trial.occupy(job.spec.components, now, duration)
            new_head_start = trial.earliest_start(
                head.spec.components, head.spec.walltime_limit
            )
            if new_head_start is not None and new_head_start <= head_start:
                timeline.occupy(job.spec.components, now, duration)
                started.append(job)
    elif policy_name == "conservative":
        for job in pending:
            duration = job.spec.walltime_limit
            start = timeline.earliest_start(job.spec.components, duration)
            if start is None:
                continue
            timeline.occupy(job.spec.components, start, duration)
            if start <= now:
                started.append(job)
    else:  # pragma: no cover
        raise ValueError(policy_name)
    return started


# -- hypothesis strategies ----------------------------------------------------

occupations = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0),  # start
        st.floats(min_value=1.0, max_value=400.0),  # length
        st.integers(min_value=1, max_value=6),  # nodes
        st.integers(min_value=0, max_value=2),  # gres units
    ),
    min_size=0,
    max_size=12,
)

queries = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=900.0),  # start
        st.floats(min_value=0.0, max_value=400.0),  # duration
        st.integers(min_value=0, max_value=10),  # nodes
        st.integers(min_value=0, max_value=3),  # gres units
    ),
    min_size=1,
    max_size=10,
)

job_params = st.tuples(
    st.integers(min_value=1, max_value=8),  # nodes
    st.floats(min_value=1.0, max_value=300.0),  # walltime
    st.booleans(),  # wants the qpu gres
)

running_params = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=3),  # nodes
        st.floats(min_value=10.0, max_value=400.0),  # walltime
    ),
    min_size=0,
    max_size=4,
)


def _paired_timelines(occupation_stream):
    compiled = PartitionTimeline(10, {"qpu": 3}, now=0.0)
    naive = NaivePartitionTimeline(10, {"qpu": 3}, now=0.0)
    for start, length, nodes, gres_units in occupation_stream:
        gres = {"qpu": gres_units} if gres_units else None
        compiled.occupy(start, start + length, nodes, gres)
        naive.occupy(start, start + length, nodes, gres)
    return compiled, naive


@given(occupation_stream=occupations, query_stream=queries)
@settings(max_examples=200, deadline=None)
def test_fits_matches_naive_reference(occupation_stream, query_stream):
    compiled, naive = _paired_timelines(occupation_stream)
    for start, duration, nodes, gres_units in query_stream:
        gres = {"qpu": gres_units} if gres_units else None
        assert compiled.fits(start, duration, nodes, gres) == naive.fits(
            start, duration, nodes, gres
        ), (occupation_stream, start, duration, nodes, gres)


@given(
    occupation_stream=occupations,
    jobs=st.lists(job_params, min_size=1, max_size=6),
)
@settings(max_examples=150, deadline=None)
def test_earliest_start_matches_naive_reference(occupation_stream, jobs):
    kernel = Kernel()
    cluster = build_hpcqc_cluster(kernel, 10, ["d0", "d1", "d2"])
    compiled = ClusterTimeline(cluster, now=0.0)
    naive = NaiveClusterTimeline(cluster, now=0.0)
    for start, length, nodes, gres_units in occupation_stream:
        components = [JobComponent("classical", nodes, 1.0)]
        if gres_units:
            components.append(
                JobComponent("quantum", 1, 1.0, gres={"qpu": gres_units})
            )
        # occupy takes (components, start, duration)
        compiled.occupy(components, start, length)
        naive.occupy(components, start, length)
    for nodes, walltime, wants_qpu in jobs:
        components = [JobComponent("classical", nodes, walltime)]
        if wants_qpu:
            components.append(
                JobComponent("quantum", 1, walltime, gres={"qpu": 1})
            )
        assert compiled.earliest_start(components, walltime) == (
            naive.earliest_start(components, walltime)
        )


@given(
    running=running_params,
    jobs=st.lists(job_params, min_size=1, max_size=10),
    policy_name=st.sampled_from(["fifo", "easy", "conservative"]),
)
@settings(max_examples=150, deadline=None)
def test_policy_select_matches_naive_reference(running, jobs, policy_name):
    kernel = Kernel()
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    for index, (nodes, walltime) in enumerate(running):
        if cluster.can_allocate("classical", nodes):
            cluster.allocate(f"run-{index}", "classical", nodes,
                             walltime=walltime)
    pending = []
    for index, (nodes, walltime, wants_qpu) in enumerate(jobs):
        components = [JobComponent("classical", nodes, walltime)]
        if wants_qpu:
            components.append(
                JobComponent("quantum", 1, walltime, gres={"qpu": 1})
            )
        job = Job(
            JobSpec(name=f"eq-{index}", components=components,
                    duration=walltime / 2),
            kernel,
        )
        job.submit_time = 0.0
        pending.append(job)
    policy = make_policy(policy_name)
    assert policy.select(pending, cluster, 0.0) == naive_select(
        policy_name, pending, cluster, 0.0
    )


# -- copy-on-write forks ------------------------------------------------------


class TestForkIsolation:
    def test_fork_mutation_does_not_leak_to_parent(self):
        parent = PartitionTimeline(10, {"qpu": 2}, now=0.0)
        parent.occupy(0.0, 50.0, 4, {"qpu": 1})
        fork = parent.fork()
        fork.occupy(0.0, 100.0, 6, {"qpu": 1})
        assert not fork.fits(0.0, 10.0, 1)
        assert parent.fits(0.0, 10.0, 6, {"qpu": 1})

    def test_parent_mutation_does_not_leak_to_fork(self):
        parent = PartitionTimeline(10, {}, now=0.0)
        fork = parent.fork()
        parent.occupy(0.0, 50.0, 10)
        assert not parent.fits(0.0, 10.0, 1)
        assert fork.fits(0.0, 10.0, 10)

    def test_speculate_discards_trial(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 4, ["d0"])
        timeline = ClusterTimeline(cluster, now=0.0)
        components = [JobComponent("classical", 4, 100.0)]
        with timeline.speculate() as trial:
            trial.occupy(components, 0.0, 100.0)
            assert not trial.fits_at(components, 0.0, 100.0)
        assert timeline.fits_at(components, 0.0, 100.0)

    @given(occupation_stream=occupations, query_stream=queries)
    @settings(max_examples=50, deadline=None)
    def test_forked_profiles_stay_equal_until_written(
        self, occupation_stream, query_stream
    ):
        compiled, _ = _paired_timelines(occupation_stream)
        fork = compiled.fork()
        assert profiles_equal(compiled, fork)
        for start, duration, nodes, gres_units in query_stream:
            gres = {"qpu": gres_units} if gres_units else None
            assert compiled.fits(start, duration, nodes, gres) == fork.fits(
                start, duration, nodes, gres
            )


# -- advance_to re-anchoring --------------------------------------------------


@given(
    occupation_stream=occupations,
    new_now=st.floats(min_value=0.0, max_value=800.0),
    query_stream=queries,
)
@settings(max_examples=100, deadline=None)
def test_advance_to_matches_fresh_anchor(
    occupation_stream, new_now, query_stream
):
    """Advancing a timeline re-anchors it exactly like building fresh."""
    advanced, _ = _paired_timelines(occupation_stream)
    advanced.advance_to(new_now)
    anchor = max(new_now, 0.0)
    fresh = NaivePartitionTimeline(10, {"qpu": 3}, now=anchor)
    for start, length, nodes, gres_units in occupation_stream:
        end = start + length
        if end <= anchor:
            continue
        gres = {"qpu": gres_units} if gres_units else None
        fresh.occupy(max(start, anchor), end, nodes, gres)
    for start, duration, nodes, gres_units in query_stream:
        if start < anchor:
            continue
        gres = {"qpu": gres_units} if gres_units else None
        assert advanced.fits(start, duration, nodes, gres) == fresh.fits(
            start, duration, nodes, gres
        )


# -- incremental cache vs per-pass rebuild ------------------------------------


def _run_workload(incremental, debug, jobs, policy_name):
    kernel = Kernel()
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    scheduler = BatchScheduler(
        kernel,
        cluster,
        policy=make_policy(policy_name),
        incremental_timelines=incremental,
        timeline_debug=debug,
    )
    submitted = []

    def submitter(delay, spec):
        yield kernel.timeout(delay)
        submitted.append(scheduler.submit(spec))

    for index, (nodes, duration, delay, wants_qpu) in enumerate(jobs):
        walltime = duration * 1.5 + 10.0
        components = [JobComponent("classical", nodes, walltime)]
        if wants_qpu:
            components.append(
                JobComponent("quantum", 1, walltime, gres={"qpu": 1})
            )
        spec = JobSpec(
            name=f"inc-{index}", components=components, duration=duration
        )
        kernel.process(submitter(delay, spec))
    kernel.run(until=100000.0)
    return [
        (job.spec.name, job.state, job.start_time, job.end_time)
        for job in submitted
    ]


workload_params = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),  # nodes
        st.floats(min_value=1.0, max_value=200.0),  # duration
        st.floats(min_value=0.0, max_value=300.0),  # submit delay
        st.booleans(),  # wants the qpu gres
    ),
    min_size=1,
    max_size=15,
)


@given(
    jobs=workload_params,
    policy_name=st.sampled_from(["fifo", "easy", "conservative"]),
)
@settings(max_examples=30, deadline=None)
def test_incremental_schedule_matches_rebuild(jobs, policy_name):
    """Full runs with/without the cache make identical decisions, and
    the debug cross-check (incremental vs rebuilt profile on every
    pass) never trips."""
    incremental = _run_workload(True, True, jobs, policy_name)
    rebuilt = _run_workload(False, False, jobs, policy_name)
    assert incremental == rebuilt
    assert all(state == JobState.COMPLETED for _, state, _, _ in incremental)


def test_cache_reuses_timeline_across_passes(kernel):
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    scheduler = BatchScheduler(kernel, cluster, timeline_debug=True)
    for index in range(12):
        scheduler.submit(
            JobSpec(
                name=f"reuse-{index}",
                components=[JobComponent("classical", 3, 500.0)],
                duration=100.0,
            )
        )
    kernel.run()
    cache = scheduler.timeline_cache
    assert cache is not None
    assert cache.rebuilds == 1
    assert cache.incremental_passes > 0
    assert scheduler.quiescent()


def test_cache_invalidate_forces_rebuild(kernel):
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    cache = TimelineCache(cluster, debug=True)
    cache.timeline(cluster, 0.0)
    assert cache.rebuilds == 1
    cache.timeline(cluster, 0.0)
    assert cache.rebuilds == 1  # reused
    cache.invalidate()
    cache.timeline(cluster, 0.0)
    assert cache.rebuilds == 2


def test_cache_rebuilds_on_node_failure(kernel):
    """Capacity changes without allocation events (a node going DOWN)
    hit the full-rebuild escape hatch."""
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    cache = TimelineCache(cluster, debug=True)
    timeline = cache.timeline(cluster, 0.0)
    assert timeline.partitions["classical"].capacity_nodes == 8
    cluster.partition("classical").nodes[0].mark_down()
    timeline = cache.timeline(cluster, 0.0)
    assert cache.rebuilds == 2
    assert timeline.partitions["classical"].capacity_nodes == 7


def test_cache_rebuilds_when_horizon_overtakes_unbounded_end(kernel):
    """An allocation whose expected end sits at/past the horizon when
    applied gains a give-back breakpoint once ``now + HORIZON`` moves
    past it; the cache must rebuild rather than serve the divergent
    incremental profile (the debug cross-check would raise)."""
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    cache = TimelineCache(cluster, debug=True)
    cache.timeline(cluster, 0.0)
    kernel.run(until=10.0)
    assert kernel.now == 10.0
    cluster.allocate("long", "classical", 2, walltime=HORIZON + 5.0)
    # At t=20 the rebuild horizon (20 + HORIZON) exceeds the job's
    # expected end (10 + HORIZON + 5): served timeline must match a
    # fresh rebuild (debug mode asserts it).
    timeline = cache.timeline(cluster, 20.0)
    assert cache.rebuilds == 2
    free, _ = timeline.partitions["classical"].free_at(10.0 + HORIZON + 6.0)
    assert free == 8


def test_scheduler_close_detaches_cache(kernel):
    """Discarded schedulers must not keep maintaining timelines for a
    cluster that outlives them."""
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    first = BatchScheduler(kernel, cluster)
    cache = first.timeline_cache
    assert cache is not None
    assert len(cluster._allocation_listeners) == 1
    first.close()
    assert cluster._allocation_listeners == []
    assert first.timeline_cache is None
    assert first.policy.timeline_cache is None
    second = BatchScheduler(kernel, cluster)
    assert len(cluster._allocation_listeners) == 1
    second.close()


def test_cache_served_forks_are_isolated(kernel):
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    cache = TimelineCache(cluster, debug=True)
    first = cache.timeline(cluster, 0.0)
    first.occupy([JobComponent("classical", 8, 100.0)], 0.0, 100.0)
    second = cache.timeline(cluster, 0.0)
    assert second.fits_at([JobComponent("classical", 8, 100.0)], 0.0, 100.0)


def test_capacity_check_is_version_based(kernel):
    """No node-state churn => no rescan-triggered rebuilds; a drain (a
    capacity change without any allocation event) still forces one."""
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    cache = TimelineCache(cluster, debug=True)
    cache.timeline(cluster, 0.0)
    for _ in range(5):
        cache.timeline(cluster, 0.0)
    assert cache.rebuilds == 1
    cluster.partition("classical").nodes[0].drain()
    timeline = cache.timeline(cluster, 0.0)
    assert cache.rebuilds == 2
    assert timeline.partitions["classical"].capacity_nodes == 7


# -- compiled-array patching (occupy against a clean profile) -----------------


@given(occupation_stream=occupations, query_stream=queries)
@settings(max_examples=200, deadline=None)
def test_interleaved_occupy_and_fits_matches_naive(
    occupation_stream, query_stream
):
    """Alternating queries and occupations exercises the in-place
    compiled-array patch path (occupy against a clean profile) rather
    than the batch recompile; answers must still match the naive
    reference exactly."""
    compiled = PartitionTimeline(10, {"qpu": 3}, now=0.0)
    naive = NaivePartitionTimeline(10, {"qpu": 3}, now=0.0)
    stream = list(occupation_stream) or [(0.0, 1.0, 1, 0)]
    for index, (start, duration, nodes, gres_units) in enumerate(
        query_stream
    ):
        gres = {"qpu": gres_units} if gres_units else None
        assert compiled.fits(start, duration, nodes, gres) == naive.fits(
            start, duration, nodes, gres
        )
        ostart, length, onodes, ogres_units = stream[index % len(stream)]
        ogres = {"qpu": ogres_units} if ogres_units else None
        compiled.occupy(ostart, ostart + length, onodes, ogres)
        naive.occupy(ostart, ostart + length, onodes, ogres)
    assert profiles_equal(
        compiled, _as_partition_timeline(naive)
    )


def _as_partition_timeline(naive):
    """Rebuild a compiled timeline from a naive reference's deltas."""
    rebuilt = PartitionTimeline(0, {}, naive.now)
    rebuilt._times = list(naive._times)
    rebuilt._node_deltas = list(naive._node_deltas)
    rebuilt._gres_deltas = [dict(d) for d in naive._gres_deltas]
    rebuilt._dirty = True
    return rebuilt


@given(occupation_stream=occupations)
@settings(max_examples=200, deadline=None)
def test_patched_arrays_equal_recompile(occupation_stream):
    """After any mix of patched occupations, the in-place compiled
    arrays are exactly what a from-scratch compile of the same deltas
    produces (integer prefix sums patch without drift)."""
    timeline = PartitionTimeline(10, {"qpu": 3}, now=0.0)
    timeline.compile()  # start clean so every occupy patches
    for start, length, nodes, gres_units in occupation_stream:
        gres = {"qpu": gres_units} if gres_units else None
        timeline.occupy(start, start + length, nodes, gres)
        assert not timeline._dirty, "patched occupy must stay compiled"
    twin = PartitionTimeline(10, {"qpu": 3}, now=0.0)
    twin._times = list(timeline._times)
    twin._node_deltas = list(timeline._node_deltas)
    twin._gres_deltas = [dict(d) for d in timeline._gres_deltas]
    twin.compile()
    assert timeline._cnodes == twin._cnodes
    assert timeline._snodes == twin._snodes
    for gres_type, column in twin._cgres.items():
        assert timeline._cgres.get(gres_type, column) == column
    for gres_type, column in twin._sgres.items():
        assert timeline._sgres.get(gres_type, column) == column


@given(occupation_stream=occupations)
@settings(max_examples=150, deadline=None)
def test_flush_merge_and_insert_paths_agree(occupation_stream):
    """Buffered deltas merged in one pass (big batches) and
    bisect-inserted one by one (small batches) yield the same
    profile."""
    batched = PartitionTimeline(10, {"qpu": 3}, now=0.0)
    stepped = PartitionTimeline(10, {"qpu": 3}, now=0.0)
    for start, length, nodes, gres_units in occupation_stream:
        gres = {"qpu": gres_units} if gres_units else None
        batched.occupy(start, start + length, nodes, gres)
        stepped.occupy(start, start + length, nodes, gres)
        stepped.compile()  # flush per occupation: insert path
    batched.compile()  # flush once: merge path (when deltas > threshold)
    assert profiles_equal(batched, stepped)


def test_fork_of_patched_timeline_does_not_leak():
    """A fork taken after in-place patches must not observe later
    patches on the parent (compiled arrays are copy-on-write too)."""
    parent = PartitionTimeline(10, {"qpu": 3}, now=0.0)
    parent.compile()
    parent.occupy(1.0, 5.0, 4, {"qpu": 1})
    child = parent.fork()
    before = (list(child._cnodes), list(child._snodes))
    parent.occupy(2.0, 6.0, 3, None)
    assert (list(child._cnodes), list(child._snodes)) == before
    assert child.fits(2.0, 3.0, 6, None) != parent.fits(2.0, 3.0, 6, None)
