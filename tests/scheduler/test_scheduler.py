"""End-to-end tests for the batch scheduler."""

import pytest

from repro.cluster.builders import build_hpcqc_cluster
from repro.errors import JobRejectedError
from repro.quantum.circuit import Circuit
from repro.quantum.qpu import QPU
from repro.quantum.technology import SUPERCONDUCTING
from repro.scheduler.backfill import FIFOPolicy
from repro.scheduler.job import JobComponent, JobSpec, JobState
from repro.scheduler.scheduler import BatchScheduler
from repro.sim.events import Interrupt
from repro.sim.kernel import Kernel


@pytest.fixture
def env(kernel):
    qpu = QPU(kernel, SUPERCONDUCTING)
    cluster = build_hpcqc_cluster(kernel, 4, [qpu])
    scheduler = BatchScheduler(kernel, cluster)
    return kernel, cluster, scheduler, qpu


def rigid(name, nodes, walltime, duration, **kwargs):
    return JobSpec(
        name=name,
        components=[JobComponent("classical", nodes, walltime)],
        duration=duration,
        **kwargs,
    )


class TestLifecycle:
    def test_job_runs_and_completes(self, env):
        kernel, cluster, scheduler, _ = env
        job = scheduler.submit(rigid("a", 2, 100.0, 50.0))
        kernel.run(until=200.0)
        assert job.state == JobState.COMPLETED
        assert job.start_time == 0.0
        assert job.end_time == 50.0
        assert scheduler.quiescent()

    def test_fifo_wait_for_resources(self, env):
        kernel, _, scheduler, _ = env
        first = scheduler.submit(rigid("a", 3, 100.0, 50.0))
        second = scheduler.submit(rigid("b", 3, 100.0, 50.0))
        kernel.run(until=200.0)
        assert first.start_time == 0.0
        assert second.start_time == 50.0

    def test_started_event_fires(self, env):
        kernel, _, scheduler, _ = env
        job = scheduler.submit(rigid("a", 1, 100.0, 10.0))
        started_at = []
        job.started.callbacks.append(
            lambda ev: started_at.append(kernel.now)
        )
        kernel.run(until=50.0)
        assert started_at == [0.0]

    def test_finished_event_carries_state(self, env):
        kernel, _, scheduler, _ = env
        job = scheduler.submit(rigid("a", 1, 100.0, 10.0))
        kernel.run(until=50.0)
        assert job.finished.value == JobState.COMPLETED

    def test_wait_times_recorded(self, env):
        kernel, _, scheduler, _ = env
        scheduler.submit(rigid("a", 4, 100.0, 30.0))
        scheduler.submit(rigid("b", 4, 100.0, 10.0))
        kernel.run(until=200.0)
        assert scheduler.wait_times.samples == [0.0, 30.0]

    def test_completion_listener(self, env):
        kernel, _, scheduler, _ = env
        seen = []
        scheduler.completion_listeners.append(
            lambda job: seen.append(job.spec.name)
        )
        scheduler.submit(rigid("a", 1, 100.0, 5.0))
        kernel.run(until=50.0)
        assert seen == ["a"]


class TestValidation:
    def test_too_many_nodes_rejected(self, env):
        _, _, scheduler, _ = env
        with pytest.raises(JobRejectedError):
            scheduler.submit(rigid("big", 99, 100.0, 10.0))

    def test_excess_gres_rejected(self, env):
        _, _, scheduler, _ = env
        spec = JobSpec(
            name="greedy",
            components=[
                JobComponent("quantum", 1, 100.0, gres={"qpu": 5})
            ],
            duration=10.0,
        )
        with pytest.raises(JobRejectedError):
            scheduler.submit(spec)

    def test_partition_walltime_enforced(self, kernel):
        cluster = build_hpcqc_cluster(
            kernel, 2, ["d"], classical_max_walltime=100.0
        )
        scheduler = BatchScheduler(kernel, cluster)
        with pytest.raises(JobRejectedError):
            scheduler.submit(rigid("long", 1, 1000.0, 10.0))


class TestWalltimeEnforcement:
    def test_overrunning_job_killed(self, env):
        kernel, cluster, scheduler, _ = env
        job = scheduler.submit(rigid("over", 2, 20.0, 100.0))
        kernel.run(until=200.0)
        assert job.state == JobState.TIMEOUT
        assert job.end_time == 20.0
        assert cluster.partition("classical").available_count() == 4

    def test_hetjob_killed_at_minimum_component_walltime(self, env):
        kernel, _, scheduler, _ = env
        spec = JobSpec(
            name="het",
            components=[
                JobComponent("classical", 1, 100.0),
                JobComponent("quantum", 1, 30.0, gres={"qpu": 1}),
            ],
            duration=1000.0,
        )
        job = scheduler.submit(spec)
        kernel.run(until=200.0)
        assert job.state == JobState.TIMEOUT
        assert job.end_time == 30.0

    def test_work_function_sees_interrupt(self, env):
        kernel, _, scheduler, _ = env
        cleanups = []

        def work(ctx):
            try:
                yield ctx.timeout(1000.0)
            except Interrupt as interrupt:
                cleanups.append(interrupt.cause)

        spec = JobSpec(
            name="interruptible",
            components=[JobComponent("classical", 1, 10.0)],
            work=work,
        )
        scheduler.submit(spec)
        kernel.run(until=50.0)
        assert cleanups == ["walltime"]


class TestCancel:
    def test_cancel_pending(self, env):
        kernel, _, scheduler, _ = env
        blocker = scheduler.submit(rigid("blocker", 4, 100.0, 50.0))
        queued = scheduler.submit(rigid("queued", 4, 100.0, 10.0))
        kernel.run(until=1.0)
        scheduler.cancel(queued)
        kernel.run(until=200.0)
        assert queued.state == JobState.CANCELLED
        assert blocker.state == JobState.COMPLETED

    def test_cancel_running_releases_resources(self, env):
        kernel, cluster, scheduler, _ = env
        job = scheduler.submit(rigid("victim", 4, 100.0, 50.0))
        kernel.run(until=10.0)
        scheduler.cancel(job)
        kernel.run(until=20.0)
        assert job.state == JobState.CANCELLED
        assert cluster.partition("classical").available_count() == 4

    def test_cancel_terminal_is_noop(self, env):
        kernel, _, scheduler, _ = env
        job = scheduler.submit(rigid("done", 1, 100.0, 5.0))
        kernel.run(until=50.0)
        scheduler.cancel(job)
        assert job.state == JobState.COMPLETED


class TestHetjobGres:
    def test_work_sees_bound_device(self, env):
        kernel, _, scheduler, qpu = env
        seen = []

        def work(ctx):
            seen.append(ctx.first_qpu())
            result = yield ctx.first_qpu().run(Circuit(5, 10), 100)
            seen.append(result.shots)

        spec = JobSpec(
            name="hybrid",
            components=[
                JobComponent("classical", 2, 100.0),
                JobComponent("quantum", 1, 100.0, gres={"qpu": 1}),
            ],
            work=work,
        )
        job = scheduler.submit(spec)
        kernel.run(until=500.0)
        assert job.state == JobState.COMPLETED
        assert seen[0] is qpu
        assert seen[1] == 100

    def test_atomic_allocation_of_components(self, env):
        """A hetjob must not hold one component while waiting for the
        other."""
        kernel, cluster, scheduler, _ = env
        # Occupy the QPU side.
        holder = scheduler.submit(
            JobSpec(
                name="qpu-holder",
                components=[
                    JobComponent("quantum", 1, 100.0, gres={"qpu": 1})
                ],
                duration=60.0,
            )
        )
        hetjob = scheduler.submit(
            JobSpec(
                name="het",
                components=[
                    JobComponent("classical", 2, 100.0),
                    JobComponent("quantum", 1, 100.0, gres={"qpu": 1}),
                ],
                duration=10.0,
            )
        )
        kernel.run(until=30.0)
        # While blocked on the quantum side, no classical nodes held.
        assert hetjob.state == JobState.PENDING
        assert cluster.partition("classical").available_count() == 4
        kernel.run(until=200.0)
        assert hetjob.state == JobState.COMPLETED
        assert hetjob.start_time == 60.0
        del holder


class TestFailedWork:
    def test_work_exception_fails_job(self, env):
        kernel, cluster, scheduler, _ = env

        def work(ctx):
            yield ctx.timeout(5.0)
            raise ValueError("bug in application")

        spec = JobSpec(
            name="buggy",
            components=[JobComponent("classical", 1, 100.0)],
            work=work,
        )
        job = scheduler.submit(spec)
        kernel.run(until=50.0)
        assert job.state == JobState.FAILED
        assert cluster.partition("classical").available_count() == 4


class TestNodeFailureHandling:
    def test_evicted_job_marked_node_fail(self, env):
        kernel, cluster, scheduler, _ = env
        job = scheduler.submit(rigid("victim", 2, 100.0, 50.0))
        kernel.run(until=10.0)
        node = job.allocations[0].nodes[0]
        evicted = node.mark_down()
        scheduler.on_node_failure(node, evicted)
        kernel.run(until=20.0)
        assert job.state == JobState.NODE_FAIL
        # The non-failed node returns to the pool.
        assert cluster.partition("classical").available_count() == 3

    def test_requeue_on_failure(self, env):
        kernel, _, scheduler, _ = env
        job = scheduler.submit(
            rigid("retry", 1, 100.0, 50.0, requeue_on_failure=True)
        )
        kernel.run(until=10.0)
        node = job.allocations[0].nodes[0]
        evicted = node.mark_down()
        scheduler.on_node_failure(node, evicted)
        node.mark_up()
        kernel.run(until=500.0)
        clones = [
            j
            for j in scheduler.finished_jobs
            if j.spec.name == "retry" and j is not job
        ]
        assert len(clones) == 1
        assert clones[0].state == JobState.COMPLETED
        assert clones[0].requeue_count == 1


class TestSchedulingCycle:
    def test_cycle_delays_start(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 2, ["d"])
        scheduler = BatchScheduler(kernel, cluster, cycle_time=30.0)
        job = scheduler.submit(
            JobSpec(
                name="j",
                components=[JobComponent("classical", 1, 100.0)],
                duration=10.0,
            )
        )
        kernel.run(until=100.0)
        assert job.start_time == 30.0

    def test_kicks_within_cycle_are_batched(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 2, ["d"])
        scheduler = BatchScheduler(kernel, cluster, cycle_time=30.0)

        def submit_second(k):
            yield k.timeout(10.0)
            scheduler.submit(
                JobSpec(
                    name="late",
                    components=[JobComponent("classical", 1, 100.0)],
                    duration=10.0,
                )
            )

        scheduler.submit(
            JobSpec(
                name="early",
                components=[JobComponent("classical", 1, 100.0)],
                duration=10.0,
            )
        )
        kernel.process(submit_second(kernel))
        kernel.run(until=100.0)
        starts = sorted(
            job.start_time for job in scheduler.finished_jobs
        )
        assert starts == [30.0, 30.0]

    def test_submit_and_wait_helper(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 2, ["d"])
        scheduler = BatchScheduler(kernel, cluster)

        def client(k):
            job = yield from scheduler.submit_and_wait(
                JobSpec(
                    name="j",
                    components=[JobComponent("classical", 1, 100.0)],
                    duration=25.0,
                )
            )
            return (job.state, k.now)

        process = kernel.process(client(kernel))
        kernel.run()
        assert process.value == (JobState.COMPLETED, 25.0)


class TestPolicyIntegration:
    def test_fifo_policy_no_backfill(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 4, ["d"])
        scheduler = BatchScheduler(kernel, cluster, policy=FIFOPolicy())
        a = scheduler.submit(rigid("a", 3, 100.0, 50.0))
        b = scheduler.submit(rigid("b", 3, 100.0, 50.0))
        c = scheduler.submit(rigid("c", 1, 10.0, 5.0))
        kernel.run(until=500.0)
        # FIFO: c waits for b to start even though a node is free.
        assert c.start_time == b.start_time
        del a

    def test_easy_policy_backfills(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 4, ["d"])
        scheduler = BatchScheduler(kernel, cluster)
        scheduler.submit(rigid("a", 3, 100.0, 50.0))
        scheduler.submit(rigid("b", 3, 100.0, 50.0))
        c = scheduler.submit(rigid("c", 1, 10.0, 5.0))
        kernel.run(until=500.0)
        assert c.start_time == 0.0
