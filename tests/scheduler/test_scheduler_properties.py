"""Property/fuzz tests on the scheduler's global invariants.

Whatever the workload and policy:

- allocated nodes never exceed partition capacity at any instant;
- every submitted job reaches a terminal state (no lost jobs);
- no job runs past its walltime limit;
- node/gres accounting returns to zero once the system drains.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.builders import build_hpcqc_cluster
from repro.cluster.failures import FailureInjector
from repro.scheduler.backfill import make_policy
from repro.scheduler.job import JobComponent, JobSpec, JobState
from repro.scheduler.scheduler import BatchScheduler
from repro.sim.kernel import Kernel
from repro.sim.rng import RandomStreams

job_params = st.tuples(
    st.integers(min_value=1, max_value=8),  # nodes
    st.floats(min_value=1.0, max_value=200.0),  # duration
    st.floats(min_value=0.0, max_value=300.0),  # submit delay
    st.booleans(),  # wants the qpu gres
)


@given(
    jobs=st.lists(job_params, min_size=1, max_size=25),
    policy_name=st.sampled_from(["fifo", "easy", "conservative"]),
)
@settings(max_examples=25, deadline=None)
def test_capacity_never_exceeded_and_all_jobs_drain(jobs, policy_name):
    kernel = Kernel()
    cluster = build_hpcqc_cluster(kernel, 8, ["dev0"])
    scheduler = BatchScheduler(
        kernel, cluster, policy=make_policy(policy_name)
    )
    classical = cluster.partition("classical")
    quantum = cluster.partition("quantum")
    violations = []

    def monitor():
        while True:
            busy = sum(
                1 for node in classical.nodes if not node.is_available
            )
            if busy > classical.node_count:
                violations.append(("classical", kernel.now, busy))
            qpu_busy = quantum.gres_capacity("qpu") - (
                quantum.free_gres_count("qpu")
                + sum(
                    len(n.free_gres("qpu"))
                    for n in quantum.nodes
                    if not n.is_available
                )
            )
            if qpu_busy > quantum.gres_capacity("qpu"):
                violations.append(("qpu", kernel.now, qpu_busy))
            yield kernel.timeout(7.0)

    submitted = []

    def submitter(delay, spec):
        yield kernel.timeout(delay)
        submitted.append(scheduler.submit(spec))

    for index, (nodes, duration, delay, wants_qpu) in enumerate(jobs):
        walltime = duration * 1.5 + 10.0
        components = [JobComponent("classical", nodes, walltime)]
        if wants_qpu:
            components.append(
                JobComponent("quantum", 1, walltime, gres={"qpu": 1})
            )
        spec = JobSpec(
            name=f"fuzz-{index}",
            components=components,
            duration=duration,
        )
        kernel.process(submitter(delay, spec))
    kernel.process(monitor(), name="capacity-monitor")
    kernel.run(until=50000.0)

    assert not violations
    assert len(submitted) == len(jobs)
    for job in submitted:
        assert job.state == JobState.COMPLETED, job
        assert job.run_time is not None
        assert job.run_time <= job.spec.walltime_limit + 1e-6
    # Fully drained: everything is free again.
    assert classical.available_count() == classical.node_count
    assert quantum.free_gres_count("qpu") == 1


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_failures_with_requeue_eventually_drain(seed):
    """Under random node failures, requeue-enabled jobs still finish."""
    kernel = Kernel()
    cluster = build_hpcqc_cluster(kernel, 6, ["dev0"])
    scheduler = BatchScheduler(kernel, cluster)
    FailureInjector(
        kernel,
        cluster.partition("classical").nodes,
        mtbf=3000.0,
        mean_repair_time=60.0,
        streams=RandomStreams(seed),
        on_failure=scheduler.on_node_failure,
    )
    jobs = [
        scheduler.submit(
            JobSpec(
                name=f"retry-{index}",
                components=[JobComponent("classical", 2, 500.0)],
                duration=100.0,
                requeue_on_failure=True,
            )
        )
        for index in range(5)
    ]
    kernel.run(until=100000.0)
    # Every original submission reached a terminal state...
    assert all(job.state.is_terminal for job in jobs)
    # ...and for each NODE_FAIL there is a completed requeue clone
    # somewhere down the chain.
    completed = [
        j
        for j in scheduler.finished_jobs
        if j.state == JobState.COMPLETED
    ]
    names_completed = {j.spec.name for j in completed}
    assert names_completed >= {f"retry-{i}" for i in range(5)}
