"""Tests for the availability timeline and the three policies."""

import pytest

from repro.cluster.builders import build_hpcqc_cluster
from repro.errors import ConfigurationError
from repro.scheduler.backfill import (
    ClusterTimeline,
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FIFOPolicy,
    PartitionTimeline,
    make_policy,
)
from repro.scheduler.job import Job, JobComponent, JobSpec


def make_job(kernel, nodes, walltime, partition="classical", gres=None):
    spec = JobSpec(
        name=f"j{nodes}x{walltime}",
        components=[
            JobComponent(partition, nodes, walltime, gres=gres or {})
        ],
        duration=walltime / 2,
    )
    job = Job(spec, kernel)
    job.submit_time = kernel.now
    return job


class TestPartitionTimeline:
    def test_initial_capacity_free(self):
        timeline = PartitionTimeline(10, {"qpu": 2}, now=0.0)
        assert timeline.fits(0.0, 100.0, 10, {"qpu": 2})

    def test_occupied_window_blocks(self):
        timeline = PartitionTimeline(10, {}, now=0.0)
        timeline.occupy(0.0, 50.0, 8)
        assert not timeline.fits(0.0, 10.0, 4)
        assert timeline.fits(0.0, 10.0, 2)
        assert timeline.fits(50.0, 10.0, 10)

    def test_window_straddling_release(self):
        timeline = PartitionTimeline(10, {}, now=0.0)
        timeline.occupy(0.0, 50.0, 8)
        # A 100 s window starting at 0 needs 4 nodes: blocked in [0,50).
        assert not timeline.fits(0.0, 100.0, 4)

    def test_gres_tracking(self):
        timeline = PartitionTimeline(4, {"qpu": 1}, now=0.0)
        timeline.occupy(0.0, 100.0, 1, {"qpu": 1})
        assert not timeline.fits(0.0, 10.0, 1, {"qpu": 1})
        assert timeline.fits(100.0, 10.0, 1, {"qpu": 1})

    def test_profile_segments(self):
        timeline = PartitionTimeline(10, {}, now=0.0)
        timeline.occupy(5.0, 15.0, 4)
        profile = timeline.profile()
        values = {time: nodes for time, nodes, _ in profile}
        assert values[0.0] == 10
        assert values[5.0] == 6
        assert values[15.0] == 10

    def test_empty_occupy_window_ignored(self):
        timeline = PartitionTimeline(10, {}, now=0.0)
        timeline.occupy(5.0, 5.0, 4)
        assert timeline.fits(0.0, 100.0, 10)


class TestClusterTimeline:
    def test_running_allocations_subtracted(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 4, ["d0"])
        cluster.allocate("job-1", "classical", 3, walltime=100.0)
        timeline = ClusterTimeline(cluster, now=0.0)
        components = [JobComponent("classical", 2, 50.0)]
        assert timeline.earliest_start(components, 50.0) == 100.0

    def test_hetjob_needs_simultaneous_fit(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 4, ["d0"])
        cluster.allocate(
            "job-1", "quantum", 1, gres_request={"qpu": 1}, walltime=200.0
        )
        components = [
            JobComponent("classical", 2, 50.0),
            JobComponent("quantum", 1, 50.0, gres={"qpu": 1}),
        ]
        timeline = ClusterTimeline(cluster, now=0.0)
        # Classical is free now, but the QPU frees only at 200.
        assert timeline.earliest_start(components, 50.0) == 200.0

    def test_unknown_partition_rejected(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 2, ["d0"])
        timeline = ClusterTimeline(cluster, now=0.0)
        with pytest.raises(ConfigurationError):
            timeline.earliest_start([JobComponent("nope", 1, 10.0)], 10.0)

    def test_oversized_request_never_fits(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 2, ["d0"])
        timeline = ClusterTimeline(cluster, now=0.0)
        assert (
            timeline.earliest_start([JobComponent("classical", 99, 10.0)],
                                    10.0)
            is None
        )


class TestPolicySelection:
    """Direct policy.select() behaviour on a half-busy cluster."""

    def _setup(self, kernel):
        cluster = build_hpcqc_cluster(kernel, 4, ["d0"])
        cluster.allocate("running", "classical", 3, walltime=100.0)
        return cluster

    def test_fifo_stops_at_blocker(self, kernel):
        cluster = self._setup(kernel)
        blocked = make_job(kernel, 2, 100.0)  # needs 2, only 1 free
        fits = make_job(kernel, 1, 10.0)
        policy = FIFOPolicy()
        assert policy.select([blocked, fits], cluster, 0.0) == []

    def test_easy_backfills_short_job(self, kernel):
        cluster = self._setup(kernel)
        blocked = make_job(kernel, 2, 100.0)
        short = make_job(kernel, 1, 50.0)  # ends before shadow (100)
        policy = EasyBackfillPolicy()
        assert policy.select([blocked, short], cluster, 0.0) == [short]

    def test_easy_accepts_non_delaying_long_backfill(self, kernel):
        # Head needs 2 nodes (shadow t=100, 3 nodes free then); a
        # 500 s one-node job leaves 3 free at the shadow: no delay.
        cluster = self._setup(kernel)
        blocked = make_job(kernel, 2, 100.0)
        long = make_job(kernel, 1, 500.0)
        policy = EasyBackfillPolicy()
        assert policy.select([blocked, long], cluster, 0.0) == [long]

    def test_easy_rejects_delaying_backfill(self, kernel):
        # Head needs the whole partition at the shadow time; any job
        # outliving the shadow would delay it.
        cluster = self._setup(kernel)
        blocked = make_job(kernel, 4, 100.0)
        long = make_job(kernel, 1, 500.0)
        policy = EasyBackfillPolicy()
        assert policy.select([blocked, long], cluster, 0.0) == []

    def test_easy_accepts_backfill_ending_before_shadow(self, kernel):
        cluster = self._setup(kernel)
        blocked = make_job(kernel, 4, 100.0)
        short = make_job(kernel, 1, 50.0)
        policy = EasyBackfillPolicy()
        assert policy.select([blocked, short], cluster, 0.0) == [short]

    def test_conservative_respects_all_reservations(self, kernel):
        cluster = self._setup(kernel)
        head = make_job(kernel, 2, 100.0)  # reserved at t=100
        second = make_job(kernel, 3, 100.0)  # reserved at t=200
        filler = make_job(kernel, 1, 50.0)  # fits now without delay
        policy = ConservativeBackfillPolicy()
        assert policy.select([head, second, filler], cluster, 0.0) == [
            filler
        ]

    def test_all_policies_start_what_fits_now(self, kernel):
        cluster = self._setup(kernel)
        fits = make_job(kernel, 1, 10.0)
        for name in ("fifo", "easy", "conservative"):
            policy = make_policy(name)
            assert policy.select([fits], cluster, 0.0) == [fits]

    def test_unknown_policy_name(self):
        with pytest.raises(ConfigurationError):
            make_policy("random-guess")
