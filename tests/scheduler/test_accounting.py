"""Tests for the accounting ledger and fair-share factors."""

import pytest

from repro.errors import ConfigurationError
from repro.scheduler.accounting import AccountingLedger


class TestCharging:
    def test_usage_accumulates(self):
        ledger = AccountingLedger()
        ledger.charge("alice", "proj", now=0.0, node_seconds=100.0)
        ledger.charge("alice", "proj", now=0.0, node_seconds=50.0)
        assert ledger.effective_usage("alice", "proj", now=0.0) == 150.0

    def test_negative_charge_rejected(self):
        ledger = AccountingLedger()
        with pytest.raises(ConfigurationError):
            ledger.charge("a", "p", now=0.0, node_seconds=-1.0)

    def test_gres_weighting(self):
        ledger = AccountingLedger(gres_weight=50.0)
        ledger.charge(
            "alice", "proj", now=0.0, node_seconds=0.0,
            gres_seconds={"qpu": 10.0},
        )
        assert ledger.effective_usage("alice", "proj", now=0.0) == 500.0

    def test_decay_halves_after_half_life(self):
        ledger = AccountingLedger(half_life=100.0)
        ledger.charge("alice", "proj", now=0.0, node_seconds=200.0)
        assert ledger.effective_usage(
            "alice", "proj", now=100.0
        ) == pytest.approx(100.0)

    def test_unknown_pair_has_zero_usage(self):
        ledger = AccountingLedger()
        assert ledger.effective_usage("ghost", "proj", now=0.0) == 0.0

    def test_invalid_half_life(self):
        with pytest.raises(ConfigurationError):
            AccountingLedger(half_life=0.0)


class TestFairShare:
    def test_no_usage_gives_full_factor(self):
        ledger = AccountingLedger()
        assert ledger.fair_share_factor("new", "proj", now=0.0) == 1.0

    def test_heavy_user_penalised(self):
        ledger = AccountingLedger()
        ledger.charge("heavy", "proj", now=0.0, node_seconds=1000.0)
        ledger.charge("light", "proj", now=0.0, node_seconds=10.0)
        heavy = ledger.fair_share_factor("heavy", "proj", now=0.0)
        light = ledger.fair_share_factor("light", "proj", now=0.0)
        assert light > heavy
        assert 0.0 < heavy < 1.0

    def test_factor_in_unit_interval(self):
        ledger = AccountingLedger()
        ledger.charge("u", "a", now=0.0, node_seconds=123.0)
        factor = ledger.fair_share_factor("u", "a", now=0.0)
        assert 0.0 < factor <= 1.0

    def test_shares_tilt_the_factor(self):
        ledger = AccountingLedger()
        ledger.set_shares("big", 10.0)
        ledger.set_shares("small", 1.0)
        ledger.charge("u1", "big", now=0.0, node_seconds=100.0)
        ledger.charge("u2", "small", now=0.0, node_seconds=100.0)
        # Equal usage, but 'big' owns more shares: better factor.
        assert ledger.fair_share_factor(
            "u1", "big", now=0.0
        ) > ledger.fair_share_factor("u2", "small", now=0.0)

    def test_invalid_shares(self):
        ledger = AccountingLedger()
        with pytest.raises(ConfigurationError):
            ledger.set_shares("p", 0.0)

    def test_repr(self):
        assert "AccountingLedger" in repr(AccountingLedger())
