"""Tests for job specs, runtime records and derived metrics."""

import pytest

from repro.errors import ConfigurationError, JobRejectedError
from repro.scheduler.job import Job, JobComponent, JobSpec, JobState


def simple_spec(**overrides):
    defaults = dict(
        name="test-job",
        components=[JobComponent("classical", 2, 100.0)],
        duration=10.0,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestJobComponent:
    def test_valid(self):
        component = JobComponent("classical", 4, 3600.0, gres={"qpu": 1})
        assert component.nodes == 4
        assert component.gres == {"qpu": 1}

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            JobComponent("classical", 0, 100.0)

    def test_zero_walltime_rejected(self):
        with pytest.raises(ConfigurationError):
            JobComponent("classical", 1, 0.0)

    def test_zero_gres_rejected(self):
        with pytest.raises(ConfigurationError):
            JobComponent("classical", 1, 100.0, gres={"qpu": 0})


class TestJobSpec:
    def test_needs_components(self):
        with pytest.raises(ConfigurationError):
            JobSpec(name="x", components=[], duration=1.0)

    def test_exactly_one_of_duration_or_work(self):
        with pytest.raises(ConfigurationError):
            JobSpec(
                name="both",
                components=[JobComponent("c", 1, 10.0)],
                duration=1.0,
                work=lambda ctx: iter(()),
            )
        with pytest.raises(ConfigurationError):
            JobSpec(name="neither", components=[JobComponent("c", 1, 10.0)])

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_spec(duration=-1.0)

    def test_heterogeneous_detection(self):
        rigid = simple_spec()
        assert not rigid.is_heterogeneous
        hetjob = simple_spec(
            components=[
                JobComponent("classical", 10, 3600.0),
                JobComponent("quantum", 1, 3600.0, gres={"qpu": 1}),
            ]
        )
        assert hetjob.is_heterogeneous

    def test_walltime_limit_is_minimum(self):
        spec = simple_spec(
            components=[
                JobComponent("classical", 1, 100.0),
                JobComponent("quantum", 1, 50.0),
            ]
        )
        assert spec.walltime_limit == 50.0

    def test_total_nodes(self):
        spec = simple_spec(
            components=[
                JobComponent("classical", 10, 100.0),
                JobComponent("quantum", 2, 100.0),
            ]
        )
        assert spec.total_nodes() == 12


class TestJobMetrics:
    def test_ids_are_unique(self, kernel):
        a = Job(simple_spec(), kernel)
        b = Job(simple_spec(), kernel)
        assert a.id != b.id

    def test_wait_time_none_before_start(self, kernel):
        job = Job(simple_spec(), kernel)
        job.submit_time = 0.0
        assert job.wait_time is None

    def test_derived_times(self, kernel):
        job = Job(simple_spec(), kernel)
        job.submit_time = 10.0
        job.start_time = 25.0
        job.end_time = 125.0
        assert job.wait_time == 15.0
        assert job.run_time == 100.0
        assert job.turnaround == 115.0

    def test_bounded_slowdown(self, kernel):
        job = Job(simple_spec(), kernel)
        job.submit_time = 0.0
        job.start_time = 100.0
        job.end_time = 101.0  # 1 s runtime, 101 s turnaround
        # Floor of 10 s keeps the slowdown bounded.
        assert job.slowdown(minimum_runtime=10.0) == pytest.approx(10.1)

    def test_slowdown_never_below_one(self, kernel):
        job = Job(simple_spec(), kernel)
        job.submit_time = 0.0
        job.start_time = 0.0
        job.end_time = 5.0
        assert job.slowdown() == 1.0

    def test_allocation_lookup_missing_partition(self, kernel):
        job = Job(simple_spec(), kernel)
        with pytest.raises(JobRejectedError):
            job.allocation_for("quantum")

    def test_initial_state(self, kernel):
        job = Job(simple_spec(), kernel)
        assert job.state == JobState.PENDING
        assert not job.state.is_terminal

    def test_terminal_states(self):
        for state in (
            JobState.COMPLETED,
            JobState.CANCELLED,
            JobState.TIMEOUT,
            JobState.FAILED,
            JobState.NODE_FAIL,
        ):
            assert state.is_terminal
        assert not JobState.RUNNING.is_terminal
