"""Tests for scheduler-level job dependencies (SLURM --dependency)."""

import pytest

from repro.cluster.builders import build_hpcqc_cluster
from repro.errors import JobRejectedError
from repro.scheduler.job import JobComponent, JobSpec, JobState
from repro.scheduler.scheduler import BatchScheduler


@pytest.fixture
def env(kernel):
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    return kernel, BatchScheduler(kernel, cluster)


def spec(name, duration=10.0, nodes=1, fail=False, **kwargs):
    if fail:
        def work(ctx):
            yield ctx.timeout(duration)
            raise RuntimeError("step failed")

        return JobSpec(
            name=name,
            components=[JobComponent("classical", nodes, 1000.0)],
            work=work,
            **kwargs,
        )
    return JobSpec(
        name=name,
        components=[JobComponent("classical", nodes, 1000.0)],
        duration=duration,
        **kwargs,
    )


class TestAfterOk:
    def test_dependent_waits_for_completion(self, env):
        kernel, scheduler = env
        first = scheduler.submit(spec("first", duration=50.0))
        second = scheduler.submit(
            spec("second", duration=10.0, after_ok=[first.id])
        )
        kernel.run(until=200.0)
        assert second.start_time == 50.0
        assert second.state == JobState.COMPLETED

    def test_dependent_does_not_hold_resources_while_waiting(self, env):
        kernel, scheduler = env
        first = scheduler.submit(spec("first", duration=50.0, nodes=1))
        scheduler.submit(
            spec("dep", duration=10.0, nodes=8, after_ok=[first.id])
        )
        kernel.run(until=10.0)
        # 7 nodes remain free: the dependent job holds nothing.
        assert (
            scheduler.cluster.partition("classical").available_count() == 7
        )

    def test_chain_of_dependencies(self, env):
        kernel, scheduler = env
        a = scheduler.submit(spec("a", duration=10.0))
        b = scheduler.submit(spec("b", duration=10.0, after_ok=[a.id]))
        c = scheduler.submit(spec("c", duration=10.0, after_ok=[b.id]))
        kernel.run(until=200.0)
        assert (a.end_time, b.start_time) == (10.0, 10.0)
        assert (b.end_time, c.start_time) == (20.0, 20.0)

    def test_failed_dependency_cancels_dependent(self, env):
        kernel, scheduler = env
        bad = scheduler.submit(spec("bad", duration=5.0, fail=True))
        dependent = scheduler.submit(
            spec("dependent", duration=10.0, after_ok=[bad.id])
        )
        kernel.run(until=100.0)
        assert bad.state == JobState.FAILED
        assert dependent.state == JobState.CANCELLED
        assert (
            dependent.spec.tags["cancel_reason"]
            == "dependency_never_satisfied"
        )

    def test_fan_in_dependencies(self, env):
        kernel, scheduler = env
        a = scheduler.submit(spec("a", duration=10.0))
        b = scheduler.submit(spec("b", duration=30.0))
        joined = scheduler.submit(
            spec("joined", duration=5.0, after_ok=[a.id, b.id])
        )
        kernel.run(until=200.0)
        assert joined.start_time == 30.0


class TestAfterAny:
    def test_runs_after_failure_too(self, env):
        kernel, scheduler = env
        bad = scheduler.submit(spec("bad", duration=5.0, fail=True))
        cleanup = scheduler.submit(
            spec("cleanup", duration=5.0, after_any=[bad.id])
        )
        kernel.run(until=100.0)
        assert bad.state == JobState.FAILED
        assert cleanup.state == JobState.COMPLETED
        assert cleanup.start_time == 5.0


class TestValidation:
    def test_unknown_dependency_rejected(self, env):
        _, scheduler = env
        with pytest.raises(JobRejectedError):
            scheduler.submit(spec("orphan", after_ok=["job-99999"]))


class TestSchedulerDrivenWorkflow:
    def test_dag_submitted_with_dependencies(self, env):
        from repro.strategies.envs import make_environment
        from repro.strategies.workflow import (
            Workflow,
            WorkflowEngine,
            WorkflowStep,
        )

        environment = make_environment(classical_nodes=8, seed=0)

        def make_step(name, deps=(), duration=10.0):
            def factory():
                return JobSpec(
                    name=name,
                    components=[JobComponent("classical", 1, 100.0)],
                    duration=duration,
                )

            return WorkflowStep(name, factory, list(deps))

        workflow = Workflow(
            "sched-driven",
            [
                make_step("a"),
                make_step("b", deps=["a"], duration=20.0),
                make_step("c", deps=["a"]),
                make_step("d", deps=["b", "c"]),
            ],
        )
        engine = WorkflowEngine(
            environment, use_scheduler_dependencies=True
        )
        holder = {}

        def runner():
            jobs = yield from engine.execute(workflow)
            holder.update(jobs)

        environment.kernel.process(runner())
        environment.kernel.run()
        # All four steps were submitted immediately...
        assert all(job.submit_time == 0.0 for job in holder.values())
        # ...but ran in dependency order.
        assert holder["b"].start_time >= holder["a"].end_time
        assert holder["d"].start_time >= holder["b"].end_time
        assert holder["d"].state == JobState.COMPLETED
