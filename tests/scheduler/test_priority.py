"""Tests for the multifactor priority engine."""

import pytest

from repro.errors import ConfigurationError
from repro.scheduler.accounting import AccountingLedger
from repro.scheduler.job import Job, JobComponent, JobSpec
from repro.scheduler.priority import MultifactorPriority, PriorityWeights


def make_job(kernel, nodes=2, submit_time=0.0, qos=0.0, user="u",
             account="a"):
    spec = JobSpec(
        name="j",
        components=[JobComponent("classical", nodes, 100.0)],
        duration=10.0,
        qos_priority=qos,
        user=user,
        account=account,
    )
    job = Job(spec, kernel)
    job.submit_time = submit_time
    return job


class TestWeights:
    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            PriorityWeights(age=-1.0)

    def test_engine_validation(self):
        with pytest.raises(ConfigurationError):
            MultifactorPriority(max_age=0.0)
        with pytest.raises(ConfigurationError):
            MultifactorPriority(total_nodes=0)


class TestAgeFactor:
    def test_older_jobs_rank_higher(self, kernel):
        engine = MultifactorPriority(
            weights=PriorityWeights(age=1000.0, size=0, fairshare=0, qos=0),
            max_age=100.0,
        )
        old = make_job(kernel, submit_time=0.0)
        young = make_job(kernel, submit_time=50.0)
        assert engine.compute(old, now=60.0) > engine.compute(
            young, now=60.0
        )

    def test_age_factor_saturates(self, kernel):
        engine = MultifactorPriority(
            weights=PriorityWeights(age=1000.0, size=0, fairshare=0, qos=0),
            max_age=100.0,
        )
        ancient = make_job(kernel, submit_time=0.0)
        assert engine.compute(ancient, now=1e6) == pytest.approx(1000.0)


class TestSizeFactor:
    def test_larger_jobs_rank_higher(self, kernel):
        engine = MultifactorPriority(
            weights=PriorityWeights(age=0, size=500.0, fairshare=0, qos=0),
            total_nodes=100,
        )
        big = make_job(kernel, nodes=50)
        small = make_job(kernel, nodes=5)
        assert engine.compute(big, now=0.0) > engine.compute(small, now=0.0)


class TestQosFactor:
    def test_qos_boost(self, kernel):
        engine = MultifactorPriority(
            weights=PriorityWeights(age=0, size=0, fairshare=0, qos=10.0)
        )
        vip = make_job(kernel, qos=5.0)
        normal = make_job(kernel, qos=0.0)
        assert engine.compute(vip, now=0.0) == pytest.approx(50.0)
        assert engine.compute(normal, now=0.0) == 0.0


class TestFairShareFactor:
    def test_light_user_beats_heavy_user(self, kernel):
        ledger = AccountingLedger()
        ledger.charge("heavy", "a", now=0.0, node_seconds=10000.0)
        ledger.charge("light", "a", now=0.0, node_seconds=1.0)
        engine = MultifactorPriority(
            weights=PriorityWeights(
                age=0, size=0, fairshare=1000.0, qos=0
            ),
            ledger=ledger,
        )
        heavy_job = make_job(kernel, user="heavy")
        light_job = make_job(kernel, user="light")
        assert engine.compute(light_job, now=0.0) > engine.compute(
            heavy_job, now=0.0
        )

    def test_fairshare_ignored_without_ledger(self, kernel):
        engine = MultifactorPriority(
            weights=PriorityWeights(age=0, size=0, fairshare=1000.0, qos=0),
            ledger=None,
        )
        assert engine.compute(make_job(kernel), now=0.0) == 0.0
