"""Tests for the scheduler's shrink/grow (malleability) API."""

import pytest

from repro.cluster.builders import build_hpcqc_cluster
from repro.errors import MalleabilityError
from repro.scheduler.job import JobComponent, JobSpec, JobState
from repro.scheduler.scheduler import BatchScheduler


@pytest.fixture
def env(kernel):
    cluster = build_hpcqc_cluster(kernel, 8, ["d0"])
    scheduler = BatchScheduler(kernel, cluster)
    return kernel, cluster, scheduler


def malleable_spec(work, nodes=6, walltime=1000.0):
    return JobSpec(
        name="malleable",
        components=[JobComponent("classical", nodes, walltime)],
        work=work,
    )


class TestShrink:
    def test_shrink_releases_nodes_mid_run(self, env):
        kernel, cluster, scheduler = env
        observed = []

        def work(ctx):
            yield ctx.timeout(10.0)
            released = ctx.shrink("classical", 4)
            observed.append(len(released))
            observed.append(
                cluster.partition("classical").available_count()
            )
            yield ctx.timeout(10.0)

        job = scheduler.submit(malleable_spec(work))
        kernel.run(until=100.0)
        assert observed == [4, 6]  # 2 free initially + 4 released
        assert job.state == JobState.COMPLETED

    def test_shrink_to_zero_rejected(self, env):
        kernel, _, scheduler = env
        errors = []

        def work(ctx):
            yield ctx.timeout(1.0)
            try:
                ctx.shrink("classical", 6)
            except MalleabilityError as error:
                errors.append(str(error))

        scheduler.submit(malleable_spec(work))
        kernel.run(until=100.0)
        assert errors and "no node" in errors[0]

    def test_shrink_frees_nodes_for_queued_jobs(self, env):
        kernel, _, scheduler = env

        def work(ctx):
            yield ctx.timeout(10.0)
            ctx.shrink("classical", 4)
            yield ctx.timeout(50.0)

        scheduler.submit(malleable_spec(work, nodes=8))
        waiting = scheduler.submit(
            JobSpec(
                name="waiting",
                components=[JobComponent("classical", 4, 100.0)],
                duration=5.0,
            )
        )
        kernel.run(until=200.0)
        assert waiting.start_time == 10.0


class TestGrow:
    def test_grow_granted_when_free(self, env):
        kernel, _, scheduler = env
        sizes = []

        def work(ctx):
            yield ctx.timeout(1.0)
            ctx.shrink("classical", 4)
            sizes.append(ctx.nodes_in("classical"))
            names = yield ctx.grow("classical", 4)
            sizes.append(ctx.nodes_in("classical"))
            sizes.append(len(names))

        job = scheduler.submit(malleable_spec(work))
        kernel.run(until=100.0)
        assert sizes == [2, 6, 4]
        assert job.state == JobState.COMPLETED

    def test_grow_waits_for_capacity(self, env):
        kernel, _, scheduler = env
        grow_times = []

        def work(ctx):
            yield ctx.timeout(1.0)
            ctx.shrink("classical", 4)
            yield ctx.timeout(1.0)
            requested = ctx.now
            yield ctx.grow("classical", 4)
            grow_times.append(ctx.now - requested)
            yield ctx.timeout(1.0)

        scheduler.submit(malleable_spec(work, nodes=6))

        def occupy_then_release(k):
            # Take the freed nodes for a while.
            yield k.timeout(1.5)
            job = scheduler.submit(
                JobSpec(
                    name="occupier",
                    components=[JobComponent("classical", 6, 100.0)],
                    duration=30.0,
                )
            )
            yield job.finished

        kernel.process(occupy_then_release(kernel))
        kernel.run(until=300.0)
        assert grow_times and grow_times[0] > 0.0

    def test_grow_has_priority_over_new_jobs(self, env):
        """A pending grow and a pending job compete for nodes freeing at
        the same instant: the grow must win the scheduling pass."""
        kernel, _, scheduler = env
        grow_granted_at = []

        def work(ctx):
            yield ctx.timeout(10.0)
            ctx.shrink("classical", 4)       # malleable now holds 4
            yield ctx.timeout(10.0)          # blocker grabbed the 4
            yield ctx.grow("classical", 4)   # pends until blocker ends
            grow_granted_at.append(ctx.now)
            yield ctx.timeout(30.0)

        malleable = scheduler.submit(malleable_spec(work, nodes=8))

        def submit_blocker_and_competitor(k):
            yield k.timeout(10.0)
            scheduler.submit(
                JobSpec(
                    name="blocker",
                    components=[JobComponent("classical", 4, 100.0)],
                    duration=50.0,
                )
            )
            yield k.timeout(20.0)
            scheduler.submit(
                JobSpec(
                    name="competitor",
                    components=[JobComponent("classical", 4, 100.0)],
                    duration=5.0,
                )
            )

        kernel.process(submit_blocker_and_competitor(kernel))
        kernel.run(until=500.0)
        competitor = next(
            j
            for j in scheduler.finished_jobs
            if j.spec.name == "competitor"
        )
        # Blocker ends at t=60; the grow is served in that pass, the
        # competitor only after the malleable job finishes (t=90).
        assert grow_granted_at == [60.0]
        assert competitor.start_time >= 90.0
        assert malleable.state == JobState.COMPLETED

    def test_grow_zero_rejected(self, env):
        kernel, _, scheduler = env
        errors = []

        def work(ctx):
            yield ctx.timeout(1.0)
            try:
                ctx.grow("classical", 0)
            except MalleabilityError:
                errors.append(True)

        scheduler.submit(malleable_spec(work))
        kernel.run(until=50.0)
        assert errors == [True]

    def test_pending_grow_fails_when_job_ends(self, env):
        kernel, _, scheduler = env

        def work(ctx):
            yield ctx.timeout(1.0)
            ctx.shrink("classical", 4)
            # Request an impossible grow and exit without waiting.
            event = ctx.grow("classical", 6)
            event.defuse()
            yield ctx.timeout(1.0)

        job = scheduler.submit(malleable_spec(work))
        # Fill the cluster so the grow can never be granted.
        blocker = scheduler.submit(
            JobSpec(
                name="blocker",
                components=[JobComponent("classical", 2, 1000.0)],
                duration=500.0,
            )
        )
        kernel.run(until=600.0)
        assert job.state == JobState.COMPLETED
        assert not scheduler.grow_requests
        del blocker

    def test_shrink_on_pending_job_rejected(self, env):
        kernel, _, scheduler = env
        job = scheduler.submit(malleable_spec(lambda ctx: iter(())))
        with pytest.raises(MalleabilityError):
            scheduler.shrink_job(job, "classical", 1)
