"""Tests for the QPU technology timing models (Fig 1 calibration)."""

import pytest

from repro.errors import ConfigurationError
from repro.quantum.circuit import Circuit
from repro.quantum.technology import (
    NEUTRAL_ATOM,
    PHOTONIC,
    SUPERCONDUCTING,
    TECHNOLOGIES,
    TRAPPED_ION,
    QPUTechnology,
    fig1_reference_bands,
    standard_job,
)


class TestTimingModel:
    def test_shot_time_composition(self):
        tech = QPUTechnology(
            name="toy",
            num_qubits=10,
            one_qubit_gate_time=1.0,
            two_qubit_gate_time=10.0,
            readout_time=100.0,
            reset_time=1000.0,
            per_shot_overhead=10000.0,
            job_overhead=0.0,
            calibration_interval=float("inf"),
            calibration_duration=0.0,
        )
        circuit = Circuit(2, depth=10, two_qubit_fraction=0.5)
        # 5 layers x 1 + 5 layers x 10 + 100 + 1000 + 10000
        assert tech.shot_time(circuit) == pytest.approx(11155.0)

    def test_execution_time_scales_with_shots(self):
        circuit, _ = standard_job(SUPERCONDUCTING)
        t1 = SUPERCONDUCTING.execution_time(circuit, 1000)
        t2 = SUPERCONDUCTING.execution_time(circuit, 2000)
        overhead = SUPERCONDUCTING.job_overhead
        assert (t2 - overhead) == pytest.approx(2 * (t1 - overhead))

    def test_zero_shots_rejected(self):
        circuit, _ = standard_job(SUPERCONDUCTING)
        with pytest.raises(ConfigurationError):
            SUPERCONDUCTING.execution_time(circuit, 0)

    def test_oversized_circuit_rejected(self):
        circuit = Circuit(num_qubits=1000, depth=1)
        with pytest.raises(ConfigurationError):
            SUPERCONDUCTING.validate_circuit(circuit)

    def test_geometry_calibration_only_for_neutral_atom(self):
        assert NEUTRAL_ATOM.needs_geometry_calibration
        for tech in (SUPERCONDUCTING, TRAPPED_ION, PHOTONIC):
            assert not tech.needs_geometry_calibration

    def test_job_time_with_calibration_adds_geometry_pass(self):
        circuit, shots = standard_job(NEUTRAL_ATOM)
        plain = NEUTRAL_ATOM.execution_time(circuit, shots)
        with_cal = NEUTRAL_ATOM.job_time_with_calibration(circuit, shots)
        assert with_cal - plain == pytest.approx(
            NEUTRAL_ATOM.geometry_calibration_duration
        )


class TestValidation:
    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            QPUTechnology(
                name="bad",
                num_qubits=1,
                one_qubit_gate_time=-1.0,
                two_qubit_gate_time=0.0,
                readout_time=0.0,
                reset_time=0.0,
                per_shot_overhead=0.0,
                job_overhead=0.0,
                calibration_interval=1.0,
                calibration_duration=0.0,
            )

    def test_zero_calibration_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            QPUTechnology(
                name="bad",
                num_qubits=1,
                one_qubit_gate_time=0.0,
                two_qubit_gate_time=0.0,
                readout_time=0.0,
                reset_time=0.0,
                per_shot_overhead=0.0,
                job_overhead=0.0,
                calibration_interval=0.0,
                calibration_duration=0.0,
            )

    def test_jitter_bounds(self):
        with pytest.raises(ConfigurationError):
            QPUTechnology(
                name="bad",
                num_qubits=1,
                one_qubit_gate_time=0.0,
                two_qubit_gate_time=0.0,
                readout_time=0.0,
                reset_time=0.0,
                per_shot_overhead=0.0,
                job_overhead=0.0,
                calibration_interval=1.0,
                calibration_duration=0.0,
                duration_jitter=1.5,
            )


class TestFig1Bands:
    """The predefined technologies must land in Fig 1's bands."""

    @pytest.mark.parametrize("name", sorted(TECHNOLOGIES))
    def test_standard_job_in_band(self, name):
        technology = TECHNOLOGIES[name]
        circuit, shots = standard_job(technology)
        duration = technology.job_time_with_calibration(circuit, shots)
        low, high = fig1_reference_bands()[name]
        assert low <= duration <= high, (
            f"{name}: {duration:.3g}s outside [{low}, {high}]"
        )

    def test_superconducting_seconds_scale(self):
        circuit, shots = standard_job(SUPERCONDUCTING)
        assert SUPERCONDUCTING.execution_time(circuit, shots) < 60.0

    def test_neutral_atom_exceeds_thirty_minutes(self):
        circuit, shots = standard_job(NEUTRAL_ATOM)
        assert (
            NEUTRAL_ATOM.job_time_with_calibration(circuit, shots) > 1800.0
        )

    def test_ordering_matches_figure(self):
        """Photonic < superconducting < trapped ion < neutral atom."""
        durations = {}
        for name in ("photonic", "superconducting", "trapped_ion",
                     "neutral_atom"):
            technology = TECHNOLOGIES[name]
            circuit, shots = standard_job(technology)
            durations[name] = technology.job_time_with_calibration(
                circuit, shots
            )
        assert (
            durations["photonic"]
            < durations["superconducting"]
            < durations["trapped_ion"]
            < durations["neutral_atom"]
        )

    def test_spread_covers_orders_of_magnitude(self):
        durations = []
        for technology in TECHNOLOGIES.values():
            circuit, shots = standard_job(technology)
            durations.append(
                technology.job_time_with_calibration(circuit, shots)
            )
        assert max(durations) / min(durations) > 1000.0
