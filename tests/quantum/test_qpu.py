"""Tests for the QPU device model: FIFO service, calibration, monitors."""

import pytest

from repro.errors import QuantumDeviceError
from repro.quantum.circuit import Circuit
from repro.quantum.qpu import QPU, QuantumJob
from repro.quantum.technology import (
    NEUTRAL_ATOM,
    SUPERCONDUCTING,
    QPUTechnology,
)
from repro.sim.rng import RandomStreams

#: A fast deterministic technology for focused device tests.
TOY = QPUTechnology(
    name="toy",
    num_qubits=8,
    one_qubit_gate_time=0.0,
    two_qubit_gate_time=0.0,
    readout_time=0.0,
    reset_time=0.0,
    per_shot_overhead=0.001,
    job_overhead=1.0,
    calibration_interval=100.0,
    calibration_duration=10.0,
)


class TestSubmission:
    def test_run_returns_result(self, kernel):
        qpu = QPU(kernel, TOY)
        completion = qpu.run(Circuit(4, 10), 1000)
        result = kernel.run(until=completion)
        assert result.execution_time == pytest.approx(2.0)  # 1 + 1000*1ms
        assert sum(result.counts.values()) == 1000

    def test_fifo_service(self, kernel):
        qpu = QPU(kernel, TOY)
        first = qpu.run(Circuit(4, 10), 1000)
        second = qpu.run(Circuit(4, 10), 1000)
        kernel.run()
        assert first.value.queue_time == pytest.approx(0.0)
        assert second.value.queue_time == pytest.approx(2.0)

    def test_double_submit_rejected(self, kernel):
        qpu = QPU(kernel, TOY)
        job = QuantumJob(Circuit(4, 10), 100)
        qpu.submit(job)
        with pytest.raises(QuantumDeviceError):
            qpu.submit(job)

    def test_zero_shots_rejected(self):
        with pytest.raises(QuantumDeviceError):
            QuantumJob(Circuit(4, 10), 0)

    def test_oversized_circuit_rejected_at_submit(self, kernel):
        qpu = QPU(kernel, TOY)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            qpu.run(Circuit(100, 10), 10)

    def test_queue_length(self, kernel):
        qpu = QPU(kernel, TOY)
        for _ in range(3):
            qpu.run(Circuit(4, 10), 100)
        # Before any execution, jobs sit in the inbox.
        assert qpu.queue_length == 3

    def test_jobs_executed_counter(self, kernel):
        qpu = QPU(kernel, TOY)
        for _ in range(3):
            qpu.run(Circuit(4, 10), 100)
        kernel.run()
        assert qpu.jobs_executed == 3
        assert len(qpu.completed_jobs) == 3


class TestPeriodicCalibration:
    def test_calibration_after_interval(self, kernel):
        qpu = QPU(kernel, TOY)

        def client(k):
            yield qpu.run(Circuit(4, 10), 1000)
            yield k.timeout(150.0)  # exceed the 100 s interval
            result = yield qpu.run(Circuit(4, 10), 1000)
            return result

        process = kernel.process(client(kernel))
        kernel.run()
        assert process.value.calibration_time == pytest.approx(10.0)
        assert qpu.calibrations_performed == 1

    def test_no_calibration_within_interval(self, kernel):
        qpu = QPU(kernel, TOY)
        first = qpu.run(Circuit(4, 10), 1000)
        second = qpu.run(Circuit(4, 10), 1000)
        kernel.run()
        assert first.value.calibration_time == 0.0
        assert second.value.calibration_time == 0.0

    def test_infinite_interval_disables(self, kernel):
        tech = QPUTechnology(
            name="nocal",
            num_qubits=8,
            one_qubit_gate_time=0.0,
            two_qubit_gate_time=0.0,
            readout_time=0.0,
            reset_time=0.0,
            per_shot_overhead=0.001,
            job_overhead=1.0,
            calibration_interval=float("inf"),
            calibration_duration=10.0,
        )
        qpu = QPU(kernel, tech)

        def client(k):
            yield qpu.run(Circuit(4, 10), 100)
            yield k.timeout(1e6)
            result = yield qpu.run(Circuit(4, 10), 100)
            return result

        process = kernel.process(client(kernel))
        kernel.run()
        assert process.value.calibration_time == 0.0


class TestGeometryCalibration:
    def test_new_geometry_triggers_calibration(self, kernel):
        qpu = QPU(kernel, NEUTRAL_ATOM)
        result_event = qpu.run(Circuit(10, 10, geometry="ring"), 10)
        kernel.run()
        assert result_event.value.calibration_time == pytest.approx(
            NEUTRAL_ATOM.geometry_calibration_duration
        )

    def test_same_geometry_cached(self, kernel):
        qpu = QPU(kernel, NEUTRAL_ATOM)
        first = qpu.run(Circuit(10, 10, geometry="ring"), 10)
        second = qpu.run(Circuit(10, 10, geometry="ring"), 10)
        kernel.run()
        assert first.value.calibration_time > 0
        assert second.value.calibration_time == 0.0

    def test_geometry_change_recalibrates(self, kernel):
        qpu = QPU(kernel, NEUTRAL_ATOM)
        qpu.run(Circuit(10, 10, geometry="ring"), 10)
        changed = qpu.run(Circuit(10, 10, geometry="grid"), 10)
        kernel.run()
        assert changed.value.calibration_time > 0

    def test_initial_geometry_skips_first_calibration(self, kernel):
        qpu = QPU(kernel, NEUTRAL_ATOM, initial_geometry="ring")
        result = qpu.run(Circuit(10, 10, geometry="ring"), 10)
        kernel.run()
        assert result.value.calibration_time == 0.0

    def test_geometryless_circuit_never_calibrates(self, kernel):
        qpu = QPU(kernel, NEUTRAL_ATOM)
        result = qpu.run(Circuit(10, 10, geometry=None), 10)
        kernel.run()
        assert result.value.calibration_time == 0.0

    def test_superconducting_ignores_geometry(self, kernel):
        qpu = QPU(kernel, SUPERCONDUCTING)
        result = qpu.run(Circuit(10, 10, geometry="whatever"), 10)
        kernel.run()
        assert result.value.calibration_time == 0.0


class TestMonitors:
    def test_utilisation_reflects_busy_time(self, kernel):
        qpu = QPU(kernel, TOY)
        qpu.run(Circuit(4, 10), 1000)  # 2 s execution

        def idle(k):
            yield k.timeout(10.0)

        kernel.process(idle(kernel))
        kernel.run()
        assert qpu.utilisation == pytest.approx(0.2)

    def test_wait_and_service_series(self, kernel):
        qpu = QPU(kernel, TOY)
        qpu.run(Circuit(4, 10), 1000)
        qpu.run(Circuit(4, 10), 1000)
        kernel.run()
        assert qpu.wait_times.count == 2
        assert qpu.service_times.mean == pytest.approx(2.0)

    def test_jitter_changes_duration(self, kernel):
        tech = QPUTechnology(
            name="jittery",
            num_qubits=8,
            one_qubit_gate_time=0.0,
            two_qubit_gate_time=0.0,
            readout_time=0.0,
            reset_time=0.0,
            per_shot_overhead=0.001,
            job_overhead=1.0,
            calibration_interval=float("inf"),
            calibration_duration=0.0,
            duration_jitter=0.2,
        )
        qpu = QPU(kernel, tech, streams=RandomStreams(1))
        result = qpu.run(Circuit(4, 10), 1000)
        kernel.run()
        assert result.value.execution_time != pytest.approx(2.0)

    def test_repr(self, kernel):
        qpu = QPU(kernel, TOY, name="dev0")
        assert "dev0" in repr(qpu)
