"""Tests for heterogeneous fleet routing."""

import pytest

from repro.errors import ConfigurationError, QuantumDeviceError
from repro.quantum.circuit import Circuit
from repro.quantum.fleet import QPUFleet
from repro.quantum.qpu import QPU
from repro.quantum.technology import (
    NEUTRAL_ATOM,
    PHOTONIC,
    SUPERCONDUCTING,
    TRAPPED_ION,
)


@pytest.fixture
def fleet_devices(kernel):
    return [
        QPU(kernel, SUPERCONDUCTING, name="sc0"),
        QPU(kernel, TRAPPED_ION, name="ti0"),
        QPU(kernel, NEUTRAL_ATOM, name="na0"),
    ]


class TestConstruction:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            QPUFleet([])

    def test_unknown_policy_rejected(self, fleet_devices):
        with pytest.raises(ConfigurationError):
            QPUFleet(fleet_devices, policy="psychic")

    def test_duplicate_names_rejected(self, kernel):
        devices = [
            QPU(kernel, SUPERCONDUCTING, name="dup"),
            QPU(kernel, TRAPPED_ION, name="dup"),
        ]
        with pytest.raises(ConfigurationError):
            QPUFleet(devices)


class TestCapability:
    def test_wide_circuit_filters_devices(self, fleet_devices):
        fleet = QPUFleet(fleet_devices)
        wide = Circuit(200, 10)  # only neutral atom (256q) fits
        capable = fleet.capable_devices(wide)
        assert [q.name for q in capable] == ["na0"]

    def test_impossible_circuit_raises(self, fleet_devices):
        fleet = QPUFleet(fleet_devices)
        with pytest.raises(QuantumDeviceError):
            fleet.select_device(Circuit(1000, 10), 100)

    def test_capability_policy_takes_first_fit(self, fleet_devices):
        fleet = QPUFleet(fleet_devices, policy="capability")
        assert fleet.select_device(Circuit(10, 10), 100).name == "sc0"


class TestRoundRobin:
    def test_cycles_through_capable(self, kernel, fleet_devices):
        fleet = QPUFleet(fleet_devices, policy="round_robin")
        names = []
        for _ in range(6):
            event = fleet.run(Circuit(10, 10), 10)
            names.append(
                [n for n, c in fleet.routed_counts.items() if c][0]
            )
            del event
        assert fleet.routed_counts == {"sc0": 2, "ti0": 2, "na0": 2}


class TestLeastLoaded:
    def test_prefers_empty_queue(self, kernel, fleet_devices):
        fleet = QPUFleet(fleet_devices, policy="least_loaded")
        # Pile jobs directly onto sc0's inbox.
        sc0 = fleet_devices[0]
        for _ in range(3):
            sc0.run(Circuit(10, 10), 1000)
        chosen = fleet.select_device(Circuit(10, 10), 100)
        assert chosen.name in ("ti0", "na0")


class TestFastestCompletion:
    def test_prefers_fast_technology(self, fleet_devices):
        fleet = QPUFleet(fleet_devices, policy="fastest_completion")
        chosen = fleet.select_device(Circuit(10, 50), 1000)
        assert chosen.name == "sc0"

    def test_accounts_for_geometry_calibration(self, fleet_devices):
        fleet = QPUFleet(fleet_devices, policy="fastest_completion")
        na0 = fleet_devices[2]
        circuit = Circuit(10, 50, geometry="ring")
        with_cal = fleet.execution_estimate(na0, circuit, 100)
        na0._calibrated_geometry = "ring"
        without_cal = fleet.execution_estimate(na0, circuit, 100)
        assert with_cal - without_cal == pytest.approx(
            NEUTRAL_ATOM.geometry_calibration_duration
        )

    def test_backlog_steers_away(self, kernel):
        # Two identical devices: backlog on the first pushes kernels to
        # the second.
        devices = [
            QPU(kernel, SUPERCONDUCTING, name="sc0"),
            QPU(kernel, SUPERCONDUCTING, name="sc1"),
        ]
        fleet = QPUFleet(devices, policy="fastest_completion")
        fleet.run(Circuit(10, 10), 5000)
        chosen = fleet.select_device(Circuit(10, 10), 100)
        assert chosen.name == "sc1"

    def test_committed_backlog_settles_after_completion(
        self, kernel
    ):
        devices = [QPU(kernel, SUPERCONDUCTING, name="sc0")]
        fleet = QPUFleet(devices)
        fleet.run(Circuit(10, 10), 1000)
        assert fleet._committed["sc0"] > 0
        kernel.run()
        assert fleet._committed["sc0"] == 0.0


class TestAvailabilityAwareRouting:
    """Calibration and maintenance must steer ``fastest_completion``:
    a drained/calibrating device cannot keep winning on paper while
    its inbox stalls."""

    def _twin_fleet(self, kernel):
        devices = [
            QPU(kernel, SUPERCONDUCTING, name="sc0"),
            QPU(kernel, SUPERCONDUCTING, name="sc1"),
        ]
        return devices, QPUFleet(devices, policy="fastest_completion")

    def test_booked_maintenance_window_steers_away(self, kernel):
        devices, fleet = self._twin_fleet(kernel)
        # Ties break by name, so sc0 would win without the window.
        devices[0].schedule_maintenance(start=0.0, duration=600.0)
        chosen = fleet.select_device(Circuit(10, 10), 100)
        assert chosen.name == "sc1"
        assert fleet.availability_delay(devices[0]) == 600.0
        assert fleet.availability_delay(devices[1]) == 0.0

    def test_window_beyond_backlog_is_ignored(self, kernel):
        devices, fleet = self._twin_fleet(kernel)
        # A window opening far after the backlog clears does not delay
        # a kernel dispatched now.
        devices[0].schedule_maintenance(start=9e6, duration=600.0)
        assert fleet.availability_delay(devices[0]) == 0.0
        assert fleet.select_device(Circuit(10, 10), 100).name == "sc0"

    def test_in_progress_maintenance_counts_its_remainder(self, kernel):
        devices, fleet = self._twin_fleet(kernel)
        devices[0].schedule_maintenance(start=5.0, duration=600.0)

        def client():
            # Arrive after the window opens: the device performs the
            # overdue maintenance before serving this kernel.
            yield kernel.timeout(10.0)
            devices[0].run(Circuit(4, 10), 100)

        kernel.process(client())
        kernel.run(until=100.0)  # inside the pass (t=10 .. t=610)
        delay = fleet.availability_delay(devices[0])
        assert delay == pytest.approx(510.0)
        assert delay == pytest.approx(devices[0].unavailable_for)
        assert fleet.select_device(Circuit(10, 10), 100).name == "sc1"

    def test_maintained_device_stops_winning_end_to_end(self, kernel):
        """With the window booked, every kernel submitted during it
        lands on the healthy twin."""
        devices, fleet = self._twin_fleet(kernel)
        devices[0].schedule_maintenance(start=0.0, duration=3600.0)

        routed = []

        def client():
            for _ in range(5):
                fleet.run(Circuit(10, 10), 100)
                routed.append(dict(fleet.routed_counts))
                yield kernel.timeout(60.0)

        kernel.process(client())
        kernel.run(until=600.0)
        assert fleet.routed_counts["sc0"] == 0
        assert fleet.routed_counts["sc1"] == 5

    def test_scenario_maintenance_reaches_routing(self):
        """The FaultSchedule path: a QPUMaintenance window declared in
        a scenario steers the built environment's fleet."""
        from repro.scenarios import (
            DeviceSpec,
            FaultSchedule,
            FleetSpec,
            QPUMaintenance,
            ScenarioSpec,
            build,
        )

        env = build(
            ScenarioSpec(
                fleet=FleetSpec(
                    devices=(
                        DeviceSpec("superconducting", count=2),
                    )
                ),
                faults=FaultSchedule(
                    maintenance=(
                        QPUMaintenance(
                            qpu="superconducting-0",
                            start=0.0,
                            duration=1800.0,
                        ),
                    )
                ),
            )
        )
        chosen = env.fleet.select_device(Circuit(10, 10), 100)
        assert chosen.name == "superconducting-1"


class TestEndToEnd:
    def test_mixed_workload_all_complete(self, kernel, fleet_devices):
        fleet = QPUFleet(fleet_devices, policy="fastest_completion")
        events = []
        # Narrow fast kernels and one wide kernel only NA can run.
        for _ in range(4):
            events.append(fleet.run(Circuit(10, 50), 1000))
        events.append(fleet.run(Circuit(200, 20, geometry="g"), 100))
        kernel.run()
        assert all(event.processed for event in events)
        assert fleet.routed_counts["sc0"] >= 4
        assert fleet.routed_counts["na0"] == 1
        assert fleet.total_routed == 5

    def test_fleet_is_device_api_compatible(self, kernel):
        """A fleet can stand in for a QPU inside a gres binding."""
        from repro.cluster.builders import make_qpu_node

        devices = [
            QPU(kernel, SUPERCONDUCTING, name="sc0"),
            QPU(kernel, PHOTONIC, name="ph0"),
        ]
        fleet = QPUFleet(devices)
        node = make_qpu_node("qn0", [fleet])
        bound = node.all_gres("qpu")[0].device
        event = bound.run(Circuit(5, 10), 100)
        kernel.run()
        assert event.processed
