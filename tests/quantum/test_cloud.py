"""Tests for the vendor cloud endpoint model."""

import pytest

from repro.errors import ConfigurationError
from repro.quantum.circuit import Circuit
from repro.quantum.cloud import CloudQPUEndpoint
from repro.quantum.qpu import QPU
from repro.quantum.technology import QPUTechnology
from repro.sim.rng import RandomStreams

TOY = QPUTechnology(
    name="toy",
    num_qubits=8,
    one_qubit_gate_time=0.0,
    two_qubit_gate_time=0.0,
    readout_time=0.0,
    reset_time=0.0,
    per_shot_overhead=0.001,
    job_overhead=1.0,
    calibration_interval=float("inf"),
    calibration_duration=0.0,
)


class TestValidation:
    def test_negative_latency_rejected(self, kernel):
        qpu = QPU(kernel, TOY)
        with pytest.raises(ConfigurationError):
            CloudQPUEndpoint(kernel, qpu, submission_latency=-1)

    def test_zero_polling_rejected(self, kernel):
        qpu = QPU(kernel, TOY)
        with pytest.raises(ConfigurationError):
            CloudQPUEndpoint(kernel, qpu, polling_interval=0)


class TestExecution:
    def test_result_delivered_with_overheads(self, kernel):
        qpu = QPU(kernel, TOY)
        endpoint = CloudQPUEndpoint(
            kernel, qpu, submission_latency=0.5, polling_interval=2.0
        )

        def client(k):
            result = yield from endpoint.execute(Circuit(4, 10), 1000)
            return (result, k.now)

        process = kernel.process(client(kernel))
        kernel.run()
        result, end = process.value
        # 0.5 upload + 2.0 exec observed at next poll + 0.5 download.
        assert result.execution_time == pytest.approx(2.0)
        assert end >= 3.0
        assert result.queue_time > 0.0

    def test_polling_quantises_completion(self, kernel):
        qpu = QPU(kernel, TOY)
        endpoint = CloudQPUEndpoint(
            kernel, qpu, submission_latency=0.0, polling_interval=5.0
        )

        def client(k):
            yield from endpoint.execute(Circuit(4, 10), 1000)
            return k.now

        process = kernel.process(client(kernel))
        kernel.run()
        # 2 s execution is only observed at the 5 s poll.
        assert process.value == pytest.approx(5.0)

    def test_multi_user_queueing(self, kernel):
        qpu = QPU(kernel, TOY)
        endpoint = CloudQPUEndpoint(
            kernel, qpu, submission_latency=0.0, polling_interval=0.5
        )
        finish_times = {}

        def client(k, name):
            yield from endpoint.execute(Circuit(4, 10), 1000)
            finish_times[name] = k.now

        kernel.process(client(kernel, "u1"))
        kernel.process(client(kernel, "u2"))
        kernel.run()
        assert finish_times["u2"] > finish_times["u1"]
        assert endpoint.requests_served == 2

    def test_overhead_statistics_collected(self, kernel):
        qpu = QPU(kernel, TOY)
        endpoint = CloudQPUEndpoint(kernel, qpu)

        def client(k):
            yield from endpoint.execute(Circuit(4, 10), 100)

        kernel.process(client(kernel))
        kernel.run()
        assert endpoint.client_times.count == 1
        assert endpoint.overheads.count == 1
        assert endpoint.overheads.mean > 0

    def test_stochastic_latency_with_streams(self, kernel):
        qpu = QPU(kernel, TOY)
        endpoint = CloudQPUEndpoint(
            kernel,
            qpu,
            submission_latency=1.0,
            streams=RandomStreams(3),
        )
        assert endpoint._latency() != endpoint._latency()

    def test_repr(self, kernel):
        qpu = QPU(kernel, TOY)
        assert "CloudQPUEndpoint" in repr(CloudQPUEndpoint(kernel, qpu))
