"""Tests for circuit descriptions and synthetic results."""

import pytest

from repro.errors import ConfigurationError
from repro.quantum.circuit import Circuit, QuantumResult, sample_counts


class TestCircuit:
    def test_basic_construction(self):
        circuit = Circuit(num_qubits=5, depth=10)
        assert circuit.num_qubits == 5
        assert circuit.depth == 10

    def test_invalid_qubits(self):
        with pytest.raises(ConfigurationError):
            Circuit(num_qubits=0, depth=1)

    def test_negative_depth(self):
        with pytest.raises(ConfigurationError):
            Circuit(num_qubits=1, depth=-1)

    def test_two_qubit_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            Circuit(num_qubits=2, depth=1, two_qubit_fraction=1.5)

    def test_layer_split(self):
        circuit = Circuit(num_qubits=4, depth=100, two_qubit_fraction=0.25)
        assert circuit.one_qubit_layers == pytest.approx(75.0)
        assert circuit.two_qubit_layers == pytest.approx(25.0)

    def test_stable_hash_deterministic(self):
        a = Circuit(3, 10, geometry="g")
        b = Circuit(3, 10, geometry="g")
        assert a.stable_hash() == b.stable_hash()

    def test_stable_hash_sensitive_to_geometry(self):
        a = Circuit(3, 10, geometry="g1")
        b = Circuit(3, 10, geometry="g2")
        assert a.stable_hash() != b.stable_hash()

    def test_frozen(self):
        circuit = Circuit(3, 10)
        with pytest.raises(AttributeError):
            circuit.depth = 20


class TestSampleCounts:
    def test_counts_sum_to_shots(self):
        circuit = Circuit(5, 20)
        counts = sample_counts(circuit, 1000)
        assert sum(counts.values()) == 1000

    def test_deterministic_for_same_circuit(self):
        circuit = Circuit(5, 20, name="fixed")
        assert sample_counts(circuit, 500) == sample_counts(circuit, 500)

    def test_bitstring_width(self):
        circuit = Circuit(6, 20)
        counts = sample_counts(circuit, 100)
        assert all(len(bits) == 6 for bits in counts)

    def test_zero_shots(self):
        assert sample_counts(Circuit(3, 5), 0) == {}

    def test_wide_circuit_truncates_bitstring(self):
        circuit = Circuit(100, 5)
        counts = sample_counts(circuit, 10)
        assert all(len(bits) == 20 for bits in counts)


class TestQuantumResult:
    def test_total_time(self):
        result = QuantumResult(
            execution_time=3.0, queue_time=2.0, calibration_time=1.0
        )
        assert result.total_time == 6.0

    def test_most_frequent(self):
        result = QuantumResult(counts={"00": 5, "11": 10, "01": 10})
        # Ties break lexicographically (larger string wins).
        assert result.most_frequent() == "11"

    def test_most_frequent_empty(self):
        assert QuantumResult().most_frequent() is None
