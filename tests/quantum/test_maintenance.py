"""Tests for QPU maintenance windows."""

import pytest

from repro.errors import QuantumDeviceError
from repro.quantum.circuit import Circuit
from repro.quantum.qpu import QPU
from repro.quantum.technology import QPUTechnology

TOY = QPUTechnology(
    name="toy",
    num_qubits=8,
    one_qubit_gate_time=0.0,
    two_qubit_gate_time=0.0,
    readout_time=0.0,
    reset_time=0.0,
    per_shot_overhead=0.001,
    job_overhead=1.0,
    calibration_interval=float("inf"),
    calibration_duration=0.0,
)


class TestScheduling:
    def test_past_window_rejected(self, kernel):
        qpu = QPU(kernel, TOY)
        kernel.timeout(10.0)
        kernel.run()
        with pytest.raises(QuantumDeviceError):
            qpu.schedule_maintenance(5.0, 10.0)

    def test_zero_duration_rejected(self, kernel):
        qpu = QPU(kernel, TOY)
        with pytest.raises(QuantumDeviceError):
            qpu.schedule_maintenance(10.0, 0.0)

    def test_overlapping_windows_rejected(self, kernel):
        qpu = QPU(kernel, TOY)
        qpu.schedule_maintenance(100.0, 50.0)
        with pytest.raises(QuantumDeviceError):
            qpu.schedule_maintenance(120.0, 10.0)
        # Adjacent is fine.
        qpu.schedule_maintenance(150.0, 10.0)


class TestServiceInteraction:
    def test_job_after_window_waits(self, kernel):
        qpu = QPU(kernel, TOY)
        qpu.schedule_maintenance(10.0, 100.0)

        def client(k):
            yield k.timeout(20.0)  # submit while window is open
            result = yield qpu.run(Circuit(4, 10), 1000)
            return (k.now, result.queue_time)

        process = kernel.process(client(kernel))
        kernel.run()
        end, _ = process.value
        # 100 s maintenance from the job's arrival at 20, then 2 s job.
        assert end == pytest.approx(122.0)
        assert qpu.maintenance_performed == 1

    def test_window_does_not_interrupt_running_job(self, kernel):
        qpu = QPU(kernel, TOY)
        first = qpu.run(Circuit(4, 10), 5000)  # 6 s execution
        qpu.schedule_maintenance(1.0, 10.0)
        second = qpu.run(Circuit(4, 10), 1000)
        kernel.run()
        # First job ran to completion (no preemption)...
        assert first.value.execution_time == pytest.approx(6.0)
        # ...maintenance then delayed the second job.
        assert second.value.queue_time >= 10.0
        assert qpu.maintenance_performed == 1

    def test_job_before_window_unaffected(self, kernel):
        qpu = QPU(kernel, TOY)
        qpu.schedule_maintenance(1000.0, 100.0)
        result = qpu.run(Circuit(4, 10), 1000)
        kernel.run(until=50.0)
        assert result.processed
        assert result.value.queue_time == 0.0
        assert qpu.maintenance_performed == 0

    def test_consecutive_windows_drain_in_order(self, kernel):
        qpu = QPU(kernel, TOY)
        qpu.schedule_maintenance(5.0, 10.0)
        qpu.schedule_maintenance(15.0, 10.0)

        def client(k):
            yield k.timeout(20.0)
            yield qpu.run(Circuit(4, 10), 100)
            return k.now

        process = kernel.process(client(kernel))
        kernel.run()
        assert qpu.maintenance_performed == 2
        # 10 + 10 maintenance from t=20, then 1.1 s job.
        assert process.value == pytest.approx(41.1)

    def test_maintenance_counts_as_downtime_not_busy(self, kernel):
        qpu = QPU(kernel, TOY)
        qpu.schedule_maintenance(0.0, 50.0)

        def client(k):
            yield k.timeout(1.0)
            yield qpu.run(Circuit(4, 10), 1000)

        kernel.process(client(kernel))
        kernel.run()
        assert qpu.calibrating.integral() >= 50.0
        assert qpu.busy.integral() == pytest.approx(2.0)
