"""Determinism suite for the parallel sweep engine.

The engine's contract: for a fixed seed, sweep results are
*byte-identical* no matter how they were produced — serial, any worker
count, cold cache or warm cache — and aggregation order is the point
order, never the completion order.
"""

import time

import pytest

from repro.errors import ConfigurationError
from repro.experiments import fig3_vqpu
from repro.experiments.sweep import (
    SweepCache,
    SweepSpec,
    canonical_bytes,
    derive_point_seed,
    resolve_workers,
    run_sweep,
    sweep_values,
)


def _simulate(params, seed):
    """A tiny but real discrete-event campaign (picklable, ~10 ms)."""
    return fig3_vqpu._run_point(
        {
            "case": params["case"],
            "vqpus": params["vqpus"],
            "tenants": 2,
            "iterations": 1,
        },
        seed,
    )


def _slow_early_points(params, seed):
    """Completion order is the *reverse* of point order under >1 worker."""
    time.sleep(0.2 * (2 - params["i"]))
    return {"i": params["i"], "seed": seed}


def _record_seed(params, seed):
    return seed


def _mutating_runner(params, seed):
    params["scratch"] = seed  # must not leak into the point's identity
    return params["i"]


def _small_spec(seed=0, replications=1, seed_mode="derived"):
    return SweepSpec(
        experiment_id="test-sweep",
        axes={"case": ["classical"], "vqpus": [1, 2]},
        replications=replications,
        base_seed=seed,
        seed_mode=seed_mode,
    )


class TestSweepSpec:
    def test_grid_enumeration_row_major(self):
        spec = SweepSpec(
            experiment_id="x",
            axes={"a": [1, 2], "b": ["u", "v"]},
        )
        assert [p.params for p in spec.points()] == [
            {"a": 1, "b": "u"},
            {"a": 1, "b": "v"},
            {"a": 2, "b": "u"},
            {"a": 2, "b": "v"},
        ]
        assert [p.index for p in spec.points()] == [0, 1, 2, 3]
        assert len(spec) == 4

    def test_explicit_points_preserve_order(self):
        explicit = [{"k": 3}, {"k": 1}, {"k": 2}]
        spec = SweepSpec(experiment_id="x", explicit=explicit)
        assert [p.params for p in spec.points()] == explicit

    def test_constants_merged_into_every_point(self):
        spec = SweepSpec(
            experiment_id="x", axes={"a": [1]}, constants={"c": 9}
        )
        assert spec.points()[0].params == {"a": 1, "c": 9}

    def test_constants_clash_rejected(self):
        spec = SweepSpec(
            experiment_id="x", axes={"a": [1]}, constants={"a": 2}
        )
        with pytest.raises(ConfigurationError):
            spec.points()

    def test_needs_exactly_one_grid_source(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(experiment_id="x")
        with pytest.raises(ConfigurationError):
            SweepSpec(experiment_id="x", axes={"a": [1]}, explicit=[{}])

    def test_replications_enumerate_outermost(self):
        spec = SweepSpec(
            experiment_id="x", axes={"a": [1, 2]}, replications=2
        )
        points = spec.points()
        assert [(p.replication, p.params["a"]) for p in points] == [
            (0, 1),
            (0, 2),
            (1, 1),
            (1, 2),
        ]
        assert len(spec) == 4


class TestSeedDerivation:
    def test_shared_mode_replication_zero_uses_base_seed(self):
        spec = _small_spec(seed=7, seed_mode="shared")
        assert all(p.seed == 7 for p in spec.points())

    def test_shared_mode_replications_get_distinct_shared_seeds(self):
        spec = _small_spec(seed=7, replications=2, seed_mode="shared")
        seeds = {p.replication: set() for p in spec.points()}
        for p in spec.points():
            seeds[p.replication].add(p.seed)
        assert seeds[0] == {7}
        assert len(seeds[1]) == 1
        assert seeds[1] != {7}

    def test_derived_mode_gives_every_point_its_own_seed(self):
        spec = _small_spec(seed=7, replications=2, seed_mode="derived")
        seeds = [p.seed for p in spec.points()]
        assert len(set(seeds)) == len(seeds)

    def test_derivation_is_param_order_independent(self):
        assert derive_point_seed(
            0, "x", {"a": 1, "b": 2}
        ) == derive_point_seed(0, "x", {"b": 2, "a": 1})

    def test_derivation_is_stable_across_calls(self):
        first = derive_point_seed(3, "x", {"a": 1}, replication=1)
        assert derive_point_seed(3, "x", {"a": 1}, replication=1) == first
        assert derive_point_seed(3, "x", {"a": 1}, replication=2) != first
        assert derive_point_seed(3, "y", {"a": 1}, replication=1) != first

    def test_non_json_params_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_point_seed(0, "x", {"a": object()})


class TestByteIdentity:
    """The acceptance criterion, asserted literally."""

    def test_serial_and_parallel_results_are_byte_identical(self):
        spec = _small_spec(seed=0, seed_mode="shared")
        serial = run_sweep(spec, _simulate, workers=1)
        for workers in (2, 4):
            parallel = run_sweep(spec, _simulate, workers=workers)
            assert canonical_bytes(parallel.values) == canonical_bytes(
                serial.values
            )

    def test_cold_and_warm_cache_are_byte_identical(self, tmp_path):
        spec = _small_spec(seed=0)
        cache = SweepCache(tmp_path)
        cold = run_sweep(spec, _simulate, workers=1, cache=cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(spec)
        warm = run_sweep(spec, _simulate, workers=1, cache=cache)
        assert warm.cache_hits == len(spec)
        assert warm.cache_misses == 0
        assert canonical_bytes(warm.values) == canonical_bytes(cold.values)

    def test_worker_count_change_on_warm_cache_is_byte_identical(
        self, tmp_path
    ):
        spec = _small_spec(seed=0)
        cache = SweepCache(tmp_path)
        cold = run_sweep(spec, _simulate, workers=1, cache=cache)
        warm_parallel = run_sweep(spec, _simulate, workers=4, cache=cache)
        assert warm_parallel.cache_hits == len(spec)
        assert canonical_bytes(warm_parallel.values) == canonical_bytes(
            cold.values
        )

    def test_partial_cache_only_simulates_new_points(self, tmp_path):
        cache = SweepCache(tmp_path)
        small = SweepSpec(
            experiment_id="test-sweep",
            axes={"case": ["classical"], "vqpus": [1]},
        )
        run_sweep(small, _simulate, cache=cache)
        grown = SweepSpec(
            experiment_id="test-sweep",
            axes={"case": ["classical"], "vqpus": [1, 2]},
        )
        result = run_sweep(grown, _simulate, cache=cache)
        assert result.cache_hits == 1
        assert result.cache_misses == 1
        fresh = run_sweep(grown, _simulate)
        assert canonical_bytes(result.values) == canonical_bytes(
            fresh.values
        )


class TestOrdering:
    def test_streaming_follows_point_order_not_completion_order(self):
        spec = SweepSpec(
            experiment_id="order", axes={"i": [0, 1, 2]}
        )
        delivered = []
        result = run_sweep(
            spec,
            _slow_early_points,
            workers=3,
            on_result=lambda point, value: delivered.append(
                point.params["i"]
            ),
        )
        assert delivered == [0, 1, 2]
        assert [value["i"] for value in result.values] == [0, 1, 2]

    def test_values_align_with_points(self):
        spec = _small_spec(seed=5, seed_mode="derived")
        result = run_sweep(spec, _record_seed, workers=2)
        assert result.values == [p.seed for p in result.points]


class TestCodeVersion:
    """The default cache code-version must never alias distinct code."""

    def _version_with(self, monkeypatch, outputs):
        """Compute _default_code_version with git outputs stubbed."""
        from repro.experiments import sweep as sweep_module

        def fake_git(args):
            return outputs.get(args[0], "")

        monkeypatch.setattr(sweep_module, "_git_output", fake_git)
        monkeypatch.setattr(sweep_module, "_CODE_VERSION", None)
        monkeypatch.delenv(
            sweep_module.CODE_VERSION_ENV_VAR, raising=False
        )
        return sweep_module._default_code_version()

    def test_clean_tree_keys_to_revision_only(self, monkeypatch):
        version = self._version_with(
            monkeypatch, {"rev-parse": "abc123\n", "status": ""}
        )
        assert version.endswith("+gabc123")
        assert "dirty" not in version

    def test_dirty_tree_appends_content_marker(self, monkeypatch):
        clean = self._version_with(
            monkeypatch, {"rev-parse": "abc123\n", "status": ""}
        )
        dirty = self._version_with(
            monkeypatch,
            {
                "rev-parse": "abc123\n",
                "status": " M src/repro/foo.py\n",
                "diff": "-old\n+new\n",
            },
        )
        assert dirty != clean
        assert ".dirty." in dirty

    def test_different_edits_get_different_markers(self, monkeypatch):
        first = self._version_with(
            monkeypatch,
            {
                "rev-parse": "abc123\n",
                "status": " M a.py\n",
                "diff": "-x\n+y\n",
            },
        )
        second = self._version_with(
            monkeypatch,
            {
                "rev-parse": "abc123\n",
                "status": " M a.py\n",
                "diff": "-x\n+z\n",
            },
        )
        assert first != second

    def test_untracked_files_count_as_dirty(self, monkeypatch):
        version = self._version_with(
            monkeypatch,
            {"rev-parse": "abc123\n", "status": "?? new_file.py\n"},
        )
        assert ".dirty." in version

    def test_untracked_content_changes_the_marker(
        self, monkeypatch, tmp_path
    ):
        """Editing an untracked file must invalidate cache keys even
        though neither `status` nor `diff HEAD` sees its contents."""
        untracked = tmp_path / "new_module.py"

        def version_for(content):
            untracked.write_text(content)
            return self._version_with(
                monkeypatch,
                {
                    # rev-parse is called for HEAD and --show-toplevel;
                    # both resolve through the same stub output.
                    "rev-parse": f"{tmp_path}\n",
                    "status": "?? new_module.py\n",
                    "ls-files": "new_module.py\n",
                },
            )

        assert version_for("x = 1\n") != version_for("x = 2\n")

    def test_env_override_wins(self, monkeypatch):
        from repro.experiments import sweep as sweep_module

        monkeypatch.setenv(
            sweep_module.CODE_VERSION_ENV_VAR, "pinned-v9"
        )
        assert sweep_module._default_code_version() == "pinned-v9"


class TestCacheKeying:
    def test_code_version_invalidates(self, tmp_path):
        spec = _small_spec()
        old = SweepCache(tmp_path, code_version="v1")
        run_sweep(spec, _simulate, cache=old)
        new = SweepCache(tmp_path, code_version="v2")
        result = run_sweep(spec, _simulate, cache=new)
        assert result.cache_hits == 0

    def test_different_seeds_never_collide(self, tmp_path):
        cache = SweepCache(tmp_path)
        a = run_sweep(
            _small_spec(seed=0, seed_mode="derived"), _record_seed,
            cache=cache,
        )
        b = run_sweep(
            _small_spec(seed=1, seed_mode="derived"), _record_seed,
            cache=cache,
        )
        assert b.cache_hits == 0
        assert a.values != b.values

    def test_runner_mutating_params_cannot_poison_identity(
        self, tmp_path
    ):
        """Runners get a copy: the point's params (and thus its cache
        key and report coordinates) stay pristine, and a warm re-run
        hits every entry."""
        spec = SweepSpec(
            experiment_id="mut", axes={"i": [1, 2]}, replications=2
        )
        cache = SweepCache(tmp_path)
        cold = run_sweep(spec, _mutating_runner, cache=cache)
        assert all(
            set(p.params) == {"i"} for p in cold.points
        )
        warm = run_sweep(spec, _mutating_runner, cache=cache)
        assert warm.cache_hits == len(spec)
        assert warm.values == cold.values

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        spec = _small_spec()
        cache = SweepCache(tmp_path)
        run_sweep(spec, _record_seed, cache=cache)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        result = run_sweep(spec, _record_seed, cache=cache)
        assert result.cache_hits == 0
        assert result.cache_misses == len(spec)

    def test_corrupt_entry_is_quarantined_not_left_in_place(self, tmp_path):
        spec = _small_spec()
        cache = SweepCache(tmp_path)
        run_sweep(spec, _record_seed, cache=cache)
        entries = sorted(tmp_path.glob("*.pkl"))
        for entry in entries:
            entry.write_bytes(b"not a pickle")
        run_sweep(spec, _record_seed, cache=cache)
        # The bad files moved aside (named for the slot they poisoned)
        # and the re-simulated values repopulated every slot.
        corpses = sorted(tmp_path.glob("*.pkl.corrupt"))
        assert [c.name for c in corpses] == [
            e.name + ".corrupt" for e in entries
        ]
        third = run_sweep(spec, _record_seed, cache=cache)
        assert third.cache_hits == len(spec)

    def test_truncated_entry_counts_as_miss(self, tmp_path):
        spec = _small_spec()
        cache = SweepCache(tmp_path)
        run_sweep(spec, _record_seed, cache=cache)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(entry.read_bytes()[:3])  # torn write
        result = run_sweep(spec, _record_seed, cache=cache)
        assert result.cache_hits == 0


class TestWorkersResolution:
    def test_explicit_wins(self):
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)

    def test_cli_strings_resolve(self):
        # argparse hands '--workers 2' through as a string.
        assert resolve_workers("2") == 2
        assert resolve_workers("auto") >= 1

    def test_bad_string_rejected(self):
        with pytest.raises(ConfigurationError, match="'auto' or an"):
            resolve_workers("lots")


class TestExperimentLevelDeterminism:
    """Full experiment artefacts agree serial vs parallel (E4 is the
    cheapest sweep experiment; E5-E7 are covered by their own tests
    plus the engine-level identity above)."""

    def test_e4_serial_vs_parallel(self):
        serial = fig3_vqpu.run(seed=0, workers=1)
        parallel = fig3_vqpu.run(seed=0, workers=2)
        assert canonical_bytes(serial) == canonical_bytes(parallel)

    def test_e4_cold_vs_warm_cache(self, tmp_path):
        cold = fig3_vqpu.run(seed=0, cache_dir=str(tmp_path))
        warm = fig3_vqpu.run(seed=0, cache_dir=str(tmp_path))
        assert canonical_bytes(cold) == canonical_bytes(warm)

    def test_sweep_values_honours_env_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path))
        spec = _small_spec()
        sweep_values(spec, _record_seed)
        assert list(tmp_path.glob("*.pkl"))
