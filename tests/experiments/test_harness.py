"""Tests for the experiment harness objects."""

import pytest

from repro.experiments.harness import (
    ClaimCheck,
    ExperimentResult,
    assert_all_claims,
)


def make_result():
    return ExperimentResult(
        experiment_id="EX",
        title="Test experiment",
        description="A test.",
        parameters={"seed": 0},
    )


class TestClaimCheck:
    def test_str_pass(self):
        check = ClaimCheck("it works", True, "detail")
        assert "[PASS]" in str(check)
        assert "detail" in str(check)

    def test_str_fail(self):
        assert "[FAIL]" in str(ClaimCheck("broken", False))


class TestExperimentResult:
    def test_add_table_and_render(self):
        result = make_result()
        result.add_table("T", ["a", "b"], [[1, 2]])
        text = result.render()
        assert "EX: Test experiment" in text
        assert "T" in text
        assert "seed=0" in text

    def test_checks_and_all_passed(self):
        result = make_result()
        result.check("ok", True)
        assert result.all_passed
        result.check("bad", False, "why")
        assert not result.all_passed
        assert len(result.failed_checks()) == 1

    def test_render_includes_checks(self):
        result = make_result()
        result.check("claim text", True)
        assert "claim text" in result.render()

    def test_render_markdown(self):
        result = make_result()
        result.add_table("T", ["a"], [[1]])
        result.check("c", True)
        markdown = result.render_markdown()
        assert "### EX" in markdown
        assert "| a |" in markdown
        assert "- [PASS] c" in markdown

    def test_assert_all_claims_raises_on_failure(self):
        result = make_result()
        result.check("fails", False, "reason")
        with pytest.raises(AssertionError, match="fails"):
            assert_all_claims(result)

    def test_assert_all_claims_silent_on_success(self):
        result = make_result()
        result.check("ok", True)
        assert_all_claims(result)
