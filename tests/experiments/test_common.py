"""Tests for the shared experiment scenario builders."""

import pytest

from repro.experiments.common import (
    make_background_trace,
    offered_load_interarrival,
    run_campaign,
    standard_hybrid_app,
    start_background,
)
from repro.quantum.technology import NEUTRAL_ATOM, SUPERCONDUCTING
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.envs import make_environment


class TestOfferedLoad:
    def test_definition(self):
        # rho = nodes*runtime / (interarrival*cluster) => solve for IA.
        interarrival = offered_load_interarrival(
            rho=0.5, cluster_nodes=32, mean_job_nodes=8,
            mean_job_runtime=400.0,
        )
        assert interarrival == pytest.approx(
            (8 * 400.0) / (0.5 * 32)
        )

    def test_higher_rho_means_faster_arrivals(self):
        slow = offered_load_interarrival(0.2, 32, 8, 400.0)
        fast = offered_load_interarrival(0.9, 32, 8, 400.0)
        assert fast < slow

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            offered_load_interarrival(0.0, 32, 8, 400.0)


class TestBackgroundTrace:
    def test_covers_horizon(self):
        env = make_environment(classical_nodes=32, seed=0)
        trace = make_background_trace(env, rho=0.5, horizon=7200.0)
        assert trace
        assert trace[-1].submit_time < 7200.0 * 10

    def test_start_background_submits(self):
        env = make_environment(classical_nodes=32, seed=0)
        jobs = start_background(env, rho=0.5, horizon=3600.0)
        env.kernel.run(until=3600.0)
        assert jobs  # replay processes have materialised submissions

    def test_deterministic_per_seed(self):
        env_a = make_environment(classical_nodes=32, seed=5)
        env_b = make_environment(classical_nodes=32, seed=5)
        trace_a = make_background_trace(env_a, 0.5, 3600.0)
        trace_b = make_background_trace(env_b, 0.5, 3600.0)
        assert [(j.submit_time, j.nodes) for j in trace_a] == [
            (j.submit_time, j.nodes) for j in trace_b
        ]


class TestStandardHybridApp:
    def test_phase_wall_duration_matches_request(self):
        app = standard_hybrid_app(
            SUPERCONDUCTING,
            iterations=3,
            classical_phase_seconds=120.0,
            classical_nodes=8,
        )
        phase = app.phases[0]
        assert app.classical_time(phase, 8) == pytest.approx(120.0)

    def test_circuit_clamped_to_technology(self):
        app = standard_hybrid_app(NEUTRAL_ATOM, iterations=1)
        quantum_phase = app.phases[1]
        assert quantum_phase.circuit.num_qubits <= (
            NEUTRAL_ATOM.num_qubits
        )

    def test_geometry_propagates(self):
        app = standard_hybrid_app(
            NEUTRAL_ATOM, iterations=1, geometry="ring"
        )
        assert app.phases[1].circuit.geometry == "ring"


class TestRunCampaign:
    def test_returns_records_and_env(self):
        app = standard_hybrid_app(
            SUPERCONDUCTING, iterations=2, classical_phase_seconds=30.0,
            classical_nodes=2,
        )
        records, env = run_campaign(
            CoScheduleStrategy(), [app, app], SUPERCONDUCTING,
            classical_nodes=8, seed=0,
        )
        assert len(records) == 2
        assert env.kernel.now > 0

    def test_background_injection(self):
        app = standard_hybrid_app(
            SUPERCONDUCTING, iterations=1, classical_phase_seconds=30.0,
            classical_nodes=2,
        )
        records, env = run_campaign(
            CoScheduleStrategy(),
            [app],
            SUPERCONDUCTING,
            classical_nodes=16,
            background_rho=0.5,
            background_horizon=1800.0,
            seed=0,
        )
        env.kernel.run()  # drain the remaining background replay
        trace_jobs = [
            j
            for j in (
                env.scheduler.finished_jobs + env.scheduler.running
                + env.scheduler.pending
            )
            if j.spec.tags.get("source") == "trace"
        ]
        assert trace_jobs
