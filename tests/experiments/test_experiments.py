"""Integration tests: every experiment reproduces its paper claims.

These are the reproduction's acceptance tests — each experiment module
must run end to end and every claim check derived from the paper must
hold.  E1/E2 run at full scale (fast); the sweep experiments run here
too since the whole suite stays within tens of seconds of wall time.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.harness import assert_all_claims


class TestRegistry:
    def test_all_seven_experiments_registered(self):
        assert sorted(EXPERIMENTS) == [
            "E1",
            "E2",
            "E3",
            "E4",
            "E5",
            "E6",
            "E7",
        ]


class TestE1Timescales:
    def test_all_claims(self):
        result = EXPERIMENTS["E1"](seed=0)
        assert_all_claims(result)

    def test_has_band_table(self):
        result = EXPERIMENTS["E1"](seed=0)
        assert result.tables
        assert len(result.tables[0].rows) == 5  # five technologies

    def test_custom_shot_count(self):
        result = EXPERIMENTS["E1"](seed=0, shots=2000)
        # Bands are wide enough for a 2x shot change.
        assert_all_claims(result)


class TestE2Listing1:
    def test_all_claims(self):
        result = EXPERIMENTS["E2"](seed=0)
        assert_all_claims(result)

    def test_covers_three_technologies(self):
        result = EXPERIMENTS["E2"](seed=0)
        technologies = {row[0] for row in result.tables[0].rows}
        assert technologies == {
            "superconducting",
            "trapped_ion",
            "neutral_atom",
        }


class TestE3Workflow:
    def test_all_claims(self):
        result = EXPERIMENTS["E3"](seed=0)
        assert_all_claims(result)


class TestE4Vqpu:
    def test_all_claims(self):
        result = EXPERIMENTS["E4"](seed=0)
        assert_all_claims(result)

    def test_makespan_monotone_in_vqpus(self):
        result = EXPERIMENTS["E4"](seed=0)
        makespans = [row[1] for row in result.tables[0].rows]
        assert makespans == sorted(makespans, reverse=True)


class TestE5Malleability:
    def test_all_claims(self):
        result = EXPERIMENTS["E5"](seed=0)
        assert_all_claims(result)


@pytest.mark.slow
class TestE6Crossover:
    def test_all_claims(self):
        result = EXPERIMENTS["E6"](seed=0)
        assert_all_claims(result)


class TestE7AccessModel:
    def test_all_claims(self):
        result = EXPERIMENTS["E7"](seed=0)
        assert_all_claims(result)


class TestSeedRobustness:
    """No claim is an artefact of seed 0: every experiment's checks
    hold across multiple random universes."""

    @pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
    @pytest.mark.parametrize("seed", [1, 2])
    def test_claims_hold_across_seeds(self, experiment_id, seed):
        result = EXPERIMENTS[experiment_id](seed=seed)
        assert_all_claims(result)
