"""Fault-tolerance suite: retries, timeouts, crashes, journal, chaos.

The engine's resilience contract, exercised end to end with the
deterministic chaos harness:

- every point that *completes* is byte-identical to a serial,
  chaos-free run — retries, worker deaths and timeouts never perturb
  per-point seed derivation;
- every point that *fails* ends in a structured ``PointOutcome`` with
  the real error and traceback, and under ``on_error="collect"`` the
  rest of the campaign still completes;
- the run journal survives a SIGKILL mid-campaign and a resumed run
  re-executes zero already-journaled points.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import multiprocessing

import pytest

from repro.errors import (
    ChaosError,
    ConfigurationError,
    JournalLockedError,
    PointFailedError,
)
from repro.experiments.resilience import (
    CHAOS_EXIT_CODE,
    ChaosSpec,
    FailurePolicy,
    PointOutcome,
    RunJournal,
    failure_rows,
)
from repro.experiments.sweep import (
    SweepCache,
    SweepSpec,
    canonical_bytes,
    run_sweep,
)

#: Env var the chaos-free reference runner uses to drop exec markers.
MARKER_DIR_VAR = "REPRO_TEST_MARKER_DIR"


def _mark_execution(params, seed):
    """Touch a unique marker file per execution (visible across procs)."""
    directory = os.environ.get(MARKER_DIR_VAR)
    if directory:
        name = f"exec-{params['i']}-{os.getpid()}-{time.monotonic_ns()}"
        Path(directory, name).touch()


def _arith(params, seed):
    """Pure-math runner: fast, picklable, value depends on params+seed."""
    i = params["i"]
    return {"i": i, "value": i * 10 + (seed % 7), "seed": seed}


def _arith_marked(params, seed):
    _mark_execution(params, seed)
    return _arith(params, seed)


def _fail_multiples_of_five(params, seed):
    """Permanently fails 20% of a 30-point i-grid (i % 5 == 4)."""
    _mark_execution(params, seed)
    if params["i"] % 5 == 4:
        raise ValueError(f"point {params['i']} is permanently bad")
    return _arith(params, seed)


def _slow_arith(params, seed):
    time.sleep(0.2)
    return _arith(params, seed)


def _spec(n, experiment_id="test-resilience", seed=0):
    return SweepSpec(experiment_id, axes={"i": list(range(n))}, base_seed=seed)


def _reference_values(n, seed=0):
    """Serial, chaos-free ground truth for the ``_arith`` family."""
    return run_sweep(_spec(n, seed=seed), _arith, workers=1).values


def _no_orphans(timeout=5.0):
    """True once no worker children of this process remain alive."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return not multiprocessing.active_children()


class TestFailurePolicy:
    def test_defaults_reproduce_historical_behaviour(self):
        policy = FailurePolicy()
        assert policy.max_attempts == 1
        assert policy.timeout_seconds is None
        assert not policy.collects

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_seconds": 0.0},
            {"timeout_seconds": -1.0},
            {"on_error": "explode"},
            {"backoff_seconds": -1.0},
            {"backoff_multiplier": 0.5},
            {"max_crashes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FailurePolicy(**kwargs)

    def test_backoff_doubles_and_saturates(self):
        policy = FailurePolicy(
            max_attempts=6, backoff_seconds=1.0, max_backoff_seconds=3.0
        )
        assert [policy.backoff_for(n) for n in range(5)] == [
            0.0,
            1.0,
            2.0,
            3.0,
            3.0,
        ]

    def test_zero_backoff_is_free(self):
        assert FailurePolicy(max_attempts=3).backoff_for(2) == 0.0

    def test_keyed_jitter_is_deterministic_and_bounded(self):
        policy = FailurePolicy(
            max_attempts=4,
            backoff_seconds=1.0,
            max_backoff_seconds=8.0,
            backoff_jitter=0.25,
        )
        for failures in (1, 2, 3):
            base = policy.backoff_for(failures)
            jittered = policy.backoff_for(failures, key="point-a")
            # Same (key, failures) -> same delay, every time.
            assert jittered == policy.backoff_for(failures, key="point-a")
            # Jitter only ever shortens, within [1 - jitter, 1] * base.
            assert base * 0.75 <= jittered <= base

    def test_jitter_spreads_distinct_keys(self):
        policy = FailurePolicy(
            max_attempts=3, backoff_seconds=2.0, backoff_jitter=0.5
        )
        delays = {
            policy.backoff_for(1, key=f"point-{i}") for i in range(16)
        }
        assert len(delays) > 1  # the herd does not retry in lockstep

    def test_no_key_or_zero_jitter_reproduces_plain_backoff(self):
        jittered = FailurePolicy(
            max_attempts=3, backoff_seconds=1.0, backoff_jitter=0.25
        )
        flat = FailurePolicy(
            max_attempts=3, backoff_seconds=1.0, backoff_jitter=0.0
        )
        assert jittered.backoff_for(2, key=None) == 2.0
        assert flat.backoff_for(2, key="point-a") == 2.0

    def test_jitter_outside_unit_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            FailurePolicy(backoff_jitter=1.5)
        with pytest.raises(ConfigurationError):
            FailurePolicy(backoff_jitter=-0.1)


class TestPointOutcome:
    def test_json_round_trip(self):
        outcome = PointOutcome(
            index=3,
            key='{"i":3}:rep0',
            status="failed",
            attempts=2,
            error="ValueError: nope",
            traceback="Traceback...\nValueError: nope",
            attempt_seconds=[0.1, 0.2],
        )
        back = PointOutcome.from_json_dict(outcome.to_json_dict())
        assert back == outcome

    def test_from_json_ignores_unknown_fields(self):
        back = PointOutcome.from_json_dict(
            {"index": 0, "key": "k", "status": "ok", "future_field": 1}
        )
        assert back.ok and back.attempts == 1

    def test_describe_and_failure_rows(self):
        ok = PointOutcome(index=0, key="a", status="ok")
        bad = PointOutcome(
            index=1, key="b", status="crashed", attempts=3, error="boom"
        )
        assert "crashed" in bad.describe() and "boom" in bad.describe()
        rows = failure_rows([ok, bad])
        assert len(rows) == 1
        assert rows[0][0] == 1 and rows[0][2] == "crashed"


class TestChaosSpec:
    def test_plan_mode_targets_point_and_attempt(self):
        chaos = ChaosSpec(plan={2: ("raise", "ok")})
        assert [chaos.action_for(i, 1) for i in range(4)] == [
            "ok",
            "ok",
            "raise",
            "ok",
        ]
        assert chaos.action_for(2, 2) == "ok"
        assert chaos.action_for(2, 3) == "ok"

    def test_rate_mode_is_deterministic_and_seeded(self):
        a = ChaosSpec(seed=7, raise_rate=0.5)
        b = ChaosSpec(seed=7, raise_rate=0.5)
        assert [a.action_for(i, 1) for i in range(64)] == [
            b.action_for(i, 1) for i in range(64)
        ]
        actions = {a.action_for(i, 1) for i in range(64)}
        assert actions == {"ok", "raise"}

    def test_rates_stop_after_attempts_affected(self):
        chaos = ChaosSpec(seed=1, raise_rate=1.0, attempts_affected=2)
        assert chaos.action_for(0, 1) == "raise"
        assert chaos.action_for(0, 2) == "raise"
        assert chaos.action_for(0, 3) == "ok"

    def test_from_dict_normalises_string_keys(self):
        chaos = ChaosSpec.from_dict({"plan": {"3": ["die", "ok"]}})
        assert chaos.action_for(3, 1) == "die"
        assert chaos.needs_isolation()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec.from_dict({"rais_rate": 0.5})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"plan": {0: ("explode",)}},
            {"raise_rate": 0.8, "die_rate": 0.4},
            {"raise_rate": -0.1},
            {"attempts_affected": -1},
            {"hang_seconds": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChaosSpec(**kwargs)

    def test_needs_isolation(self):
        assert not ChaosSpec(raise_rate=0.5).needs_isolation()
        assert ChaosSpec(hang_rate=0.1).needs_isolation()
        assert ChaosSpec(plan={0: ("hang",)}).needs_isolation()
        assert not ChaosSpec(plan={0: ("raise",)}).needs_isolation()

    def test_inject_raise(self):
        with pytest.raises(ChaosError):
            ChaosSpec(plan={0: ("raise",)}).inject(0, 1)
        ChaosSpec(plan={0: ("raise",)}).inject(1, 1)  # other points clean


class TestRunJournal:
    def test_record_load_round_trip(self, tmp_path):
        journal = RunJournal(tmp_path / "run.journal.jsonl")
        first = PointOutcome(index=0, key="a", status="ok", attempts=1)
        second = PointOutcome(
            index=1, key="b", status="failed", attempts=2, error="boom"
        )
        journal.record(first)
        journal.record(second)
        journal.close()
        loaded = RunJournal(journal.path).load()
        assert loaded == {"a": first, "b": second}

    def test_last_record_for_a_key_wins(self, tmp_path):
        journal = RunJournal(tmp_path / "run.journal.jsonl")
        journal.record(PointOutcome(index=0, key="a", status="failed"))
        journal.record(PointOutcome(index=0, key="a", status="ok"))
        journal.close()
        assert journal.load()["a"].status == "ok"

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        journal = RunJournal(tmp_path / "run.journal.jsonl")
        journal.record(PointOutcome(index=0, key="a", status="ok"))
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 1, "key": "b", "sta')  # SIGKILL tear
        loaded = journal.load()
        assert set(loaded) == {"a"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert RunJournal(tmp_path / "absent.jsonl").load() == {}

    def test_reset_truncates(self, tmp_path):
        journal = RunJournal(tmp_path / "run.journal.jsonl")
        journal.record(PointOutcome(index=0, key="a", status="ok"))
        journal.reset()
        assert journal.load() == {}
        assert not journal.path.exists()

    def test_for_sweep_binds_code_version(self, tmp_path):
        one = RunJournal.for_sweep(tmp_path, "E1", "mod:run", "v1")
        two = RunJournal.for_sweep(tmp_path, "E1", "mod:run", "v2")
        assert one.path != two.path
        assert one.path.name.startswith("E1-")
        assert one.path.name.endswith(".journal.jsonl")

    def test_compact_keeps_only_the_latest_record_per_key(self, tmp_path):
        journal = RunJournal(tmp_path / "run.journal.jsonl")
        for attempt in range(4):
            journal.record(
                PointOutcome(
                    index=0, key="a", status="failed", attempts=attempt + 1
                )
            )
        journal.record(PointOutcome(index=0, key="a", status="ok"))
        journal.record(PointOutcome(index=1, key="b", status="ok"))
        dropped = journal.compact()
        assert dropped == 4
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        loaded = journal.load()
        assert loaded["a"].status == "ok"
        assert loaded["b"].status == "ok"
        # A second compaction has nothing to drop.
        assert journal.compact() == 0
        journal.close()

    def test_close_compacts_only_when_the_run_wrote(self, tmp_path):
        journal = RunJournal(tmp_path / "run.journal.jsonl")
        journal.record(PointOutcome(index=0, key="a", status="failed"))
        journal.record(PointOutcome(index=0, key="a", status="ok"))
        journal.close()
        lines = journal.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        # A read-only reopen must not rewrite the file behind a
        # concurrent writer's back.
        before = journal.path.stat().st_mtime_ns
        reader = RunJournal(journal.path)
        assert reader.load()["a"].status == "ok"
        reader.close()
        assert journal.path.stat().st_mtime_ns == before

    def test_compact_on_a_missing_file_is_a_no_op(self, tmp_path):
        assert RunJournal(tmp_path / "absent.jsonl").compact() == 0

    def test_second_writer_raises_journal_locked(self, tmp_path):
        journal = RunJournal(tmp_path / "run.journal.jsonl")
        journal.record(PointOutcome(index=0, key="a", status="ok"))
        rival = RunJournal(journal.path)
        with pytest.raises(JournalLockedError) as info:
            rival.acquire()
        assert str(os.getpid()) in str(info.value)
        # Closing the holder releases the lock for the next writer.
        journal.close()
        rival.acquire()
        rival.record(PointOutcome(index=1, key="b", status="ok"))
        rival.close()

    def test_lock_dies_with_a_killed_holder(self, tmp_path):
        """flock is released by the kernel when the holder is SIGKILLed."""
        journal_path = tmp_path / "run.journal.jsonl"
        script = (
            "import os, sys, time\n"
            "from repro.experiments.resilience import RunJournal\n"
            "from repro.experiments.resilience import PointOutcome\n"
            f"journal = RunJournal({str(journal_path)!r})\n"
            "journal.record(PointOutcome(index=0, key='a', status='ok'))\n"
            "print('locked', flush=True)\n"
            "time.sleep(60)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        holder = subprocess.Popen(
            [sys.executable, "-c", script],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "locked"
            rival = RunJournal(journal_path)
            with pytest.raises(JournalLockedError):
                rival.acquire()
            holder.kill()
            holder.wait(timeout=30)
            rival.acquire()  # stale lockfile, lock itself died
            rival.close()
        finally:
            if holder.poll() is None:
                holder.kill()
                holder.wait(timeout=30)


class TestRetriesSerial:
    def test_retry_recovers_and_counts_attempts(self):
        chaos = ChaosSpec(plan={1: ("raise", "raise")})
        result = run_sweep(
            _spec(4),
            _arith,
            workers=1,
            policy=FailurePolicy(max_attempts=3),
            chaos=chaos,
        )
        assert result.values == _reference_values(4)
        assert [o.status for o in result.outcomes] == ["ok"] * 4
        assert [o.attempts for o in result.outcomes] == [1, 3, 1, 1]
        assert len(result.outcomes[1].attempt_seconds) == 3
        assert result.ok_count == 4 and result.failure_count == 0

    def test_terminal_failure_raises_original_exception(self):
        spec = SweepSpec("boom", axes={"i": [4, 9]})
        with pytest.raises(ValueError, match="permanently bad"):
            run_sweep(
                spec,
                _fail_multiples_of_five,
                workers=1,
                policy=FailurePolicy(max_attempts=2),
            )

    def test_chaos_terminal_failure_raises_chaos_error(self):
        with pytest.raises(ChaosError):
            run_sweep(
                _spec(2),
                _arith,
                workers=1,
                chaos=ChaosSpec(plan={0: ("raise",)}),
            )

    def test_collect_records_error_and_traceback(self):
        spec = SweepSpec("boom", axes={"i": [3, 4, 5]})
        result = run_sweep(
            spec,
            _fail_multiples_of_five,
            workers=1,
            policy=FailurePolicy(max_attempts=2, on_error="collect"),
        )
        assert [o.status for o in result.outcomes] == ["ok", "failed", "ok"]
        failed = result.outcomes[1]
        assert result.values[1] is None
        assert failed.attempts == 2
        assert "ValueError: point 4 is permanently bad" in failed.error
        assert "Traceback" in failed.traceback
        assert result.failures() == [failed]
        with pytest.raises(PointFailedError):
            result.raise_if_failed()

    def test_on_result_streams_only_ok_points_in_order(self):
        delivered = []
        outcomes_seen = []
        result = run_sweep(
            SweepSpec("boom", axes={"i": [3, 4, 5, 9]}),
            _fail_multiples_of_five,
            workers=1,
            policy=FailurePolicy(on_error="collect"),
            on_result=lambda point, value: delivered.append(
                point.params["i"]
            ),
            on_outcome=lambda point, outcome: outcomes_seen.append(
                (point.params["i"], outcome.status)
            ),
        )
        assert delivered == [3, 5]
        assert outcomes_seen == [
            (3, "ok"),
            (4, "failed"),
            (5, "ok"),
            (9, "failed"),
        ]
        assert result.ok_count == 2

    def test_backoff_sleeps_between_attempts(self):
        start = time.perf_counter()
        result = run_sweep(
            _spec(1),
            _arith,
            workers=1,
            policy=FailurePolicy(max_attempts=3, backoff_seconds=0.05),
            chaos=ChaosSpec(plan={0: ("raise", "raise")}),
        )
        elapsed = time.perf_counter() - start
        assert result.outcomes[0].attempts == 3
        # 0.05 + 0.10 of backoff, shrunk by at most 25% of per-key
        # jitter (backoff_jitter=0.25 default).
        assert elapsed >= 0.75 * 0.15


class TestTimeouts:
    def test_hung_point_times_out_and_pool_recovers(self):
        chaos = ChaosSpec(plan={1: ("hang",)})
        start = time.perf_counter()
        result = run_sweep(
            _spec(3),
            _arith,
            workers=2,
            policy=FailurePolicy(
                timeout_seconds=0.5, on_error="collect"
            ),
            chaos=chaos,
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0  # nothing waited for the 3600 s hang
        assert [o.status for o in result.outcomes] == [
            "ok",
            "timed_out",
            "ok",
        ]
        assert result.values[0] == _reference_values(3)[0]
        assert result.values[1] is None
        assert "wall-clock timeout" in result.outcomes[1].error
        assert _no_orphans()

    def test_retry_after_timeout_recovers(self):
        chaos = ChaosSpec(plan={0: ("hang", "ok")})
        result = run_sweep(
            _spec(2),
            _arith,
            workers=2,
            policy=FailurePolicy(
                max_attempts=2, timeout_seconds=0.5, on_error="collect"
            ),
            chaos=chaos,
        )
        assert [o.status for o in result.outcomes] == ["ok", "ok"]
        assert result.outcomes[0].attempts == 2
        assert result.values == _reference_values(2)

    def test_timeout_forces_isolation_even_at_workers_1(self):
        chaos = ChaosSpec(plan={0: ("hang",)})
        result = run_sweep(
            _spec(2),
            _arith,
            workers=1,
            policy=FailurePolicy(
                timeout_seconds=0.5, on_error="collect"
            ),
            chaos=chaos,
        )
        assert [o.status for o in result.outcomes] == ["timed_out", "ok"]
        assert _no_orphans()


class TestCrashRecovery:
    def test_worker_death_is_retried_transparently(self):
        chaos = ChaosSpec(plan={2: ("die", "ok")})
        result = run_sweep(
            _spec(6),
            _arith,
            workers=3,
            policy=FailurePolicy(max_attempts=3, on_error="collect"),
            chaos=chaos,
        )
        assert [o.status for o in result.outcomes] == ["ok"] * 6
        assert result.values == _reference_values(6)
        assert result.outcomes[2].attempts >= 2
        assert _no_orphans()

    def test_repeat_killer_goes_terminal_without_convicting_innocents(self):
        chaos = ChaosSpec(plan={1: ("die", "die", "die", "die")})
        result = run_sweep(
            _spec(8),
            _arith,
            workers=4,
            policy=FailurePolicy(
                max_attempts=4, max_crashes=2, on_error="collect"
            ),
            chaos=chaos,
        )
        statuses = [o.status for o in result.outcomes]
        assert statuses[1] == "crashed"
        assert statuses[:1] + statuses[2:] == ["ok"] * 7
        assert result.outcomes[1].attempts == 2
        assert "worker process died" in result.outcomes[1].error
        reference = _reference_values(8)
        for index in range(8):
            if index != 1:
                assert result.values[index] == reference[index]
        assert _no_orphans()

    def test_crash_in_raise_mode_aborts_with_point_failed_error(self):
        chaos = ChaosSpec(plan={0: ("die", "die")})
        with pytest.raises(PointFailedError) as excinfo:
            run_sweep(
                _spec(2),
                _arith,
                workers=2,
                policy=FailurePolicy(max_attempts=2, max_crashes=1),
                chaos=chaos,
            )
        assert excinfo.value.outcome.status == "crashed"
        assert _no_orphans()


class TestCleanShutdown:
    def test_on_result_exception_terminates_workers(self):
        def explode(point, value):
            raise RuntimeError("aggregation bug")

        with pytest.raises(RuntimeError, match="aggregation bug"):
            run_sweep(
                _spec(8),
                _slow_arith,
                workers=4,
                on_result=explode,
            )
        assert _no_orphans()

    def test_keyboard_interrupt_terminates_workers(self):
        def interrupt(point, value):
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                _spec(8),
                _slow_arith,
                workers=4,
                on_result=interrupt,
            )
        assert _no_orphans()


class TestByteIdentityUnderChaos:
    """The chaos matrix: every completed value is byte-identical to a
    serial, chaos-free run, at any worker count, under any injected
    fault mix the retry budget can absorb."""

    N = 12

    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize(
        "chaos",
        [
            ChaosSpec(plan={1: ("raise",), 5: ("raise", "raise")}),
            ChaosSpec(seed=11, raise_rate=0.5),
            ChaosSpec(plan={2: ("die", "ok"), 7: ("raise",)}),
            ChaosSpec(plan={0: ("hang", "ok"), 9: ("raise",)}),
        ],
        ids=["plan-raise", "rate-raise", "die", "hang"],
    )
    def test_completed_points_byte_identical(self, workers, chaos):
        policy = FailurePolicy(
            max_attempts=3,
            on_error="collect",
            timeout_seconds=(
                0.5 if chaos.needs_isolation() else None
            ),
        )
        reference = _reference_values(self.N, seed=42)
        result = run_sweep(
            _spec(self.N, seed=42),
            _arith,
            workers=workers,
            policy=policy,
            chaos=chaos,
        )
        assert [o.status for o in result.outcomes] == ["ok"] * self.N
        assert canonical_bytes(result.values) == canonical_bytes(
            reference
        )
        assert _no_orphans()


class TestJournalResume:
    def _marker_env(self, tmp_path, monkeypatch):
        markers = tmp_path / "executions"
        markers.mkdir()
        monkeypatch.setenv(MARKER_DIR_VAR, str(markers))
        return markers

    def test_resume_skips_ok_and_failed_points(self, tmp_path, monkeypatch):
        markers = self._marker_env(tmp_path, monkeypatch)
        spec = _spec(10, experiment_id="resume-test")
        cache = SweepCache(tmp_path / "cache", code_version="pinned")
        policy = FailurePolicy(max_attempts=2, on_error="collect")

        first = run_sweep(
            spec,
            _fail_multiples_of_five,
            workers=1,
            cache=cache,
            policy=policy,
            journal=tmp_path / "cache",
        )
        assert first.ok_count == 8 and first.failure_count == 2
        executed_first = len(list(markers.iterdir()))
        assert executed_first == 8 + 2 * 2  # 2 attempts per bad point

        second = run_sweep(
            spec,
            _fail_multiples_of_five,
            workers=1,
            cache=cache,
            policy=policy,
            journal=tmp_path / "cache",
            resume=True,
        )
        assert len(list(markers.iterdir())) == executed_first  # 0 re-runs
        assert second.values == first.values
        assert [o.status for o in second.outcomes] == [
            o.status for o in first.outcomes
        ]
        assert all(o.resumed for o in second.outcomes)
        assert all(o.cached for o in second.outcomes if o.ok)
        failed = [o for o in second.outcomes if not o.ok]
        assert all(
            "permanently bad" in o.error and o.attempts == 2
            for o in failed
        )

    def test_resume_false_retries_failed_points(self, tmp_path, monkeypatch):
        markers = self._marker_env(tmp_path, monkeypatch)
        spec = _spec(10, experiment_id="reset-test")
        cache = SweepCache(tmp_path / "cache", code_version="pinned")
        policy = FailurePolicy(max_attempts=2, on_error="collect")
        run_sweep(
            spec,
            _fail_multiples_of_five,
            workers=1,
            cache=cache,
            policy=policy,
            journal=tmp_path / "cache",
        )
        before = len(list(markers.iterdir()))
        result = run_sweep(
            spec,
            _fail_multiples_of_five,
            workers=1,
            cache=cache,
            policy=policy,
            journal=tmp_path / "cache",
            resume=False,
        )
        # Cached ok points still skip; only the 2 bad points re-burn
        # their 2 attempts each.
        assert len(list(markers.iterdir())) == before + 4
        assert result.failure_count == 2
        assert not any(o.resumed for o in result.outcomes if not o.ok)

    def test_journal_ok_without_cache_reexecutes(
        self, tmp_path, monkeypatch
    ):
        markers = self._marker_env(tmp_path, monkeypatch)
        spec = _spec(3, experiment_id="no-cache-test")
        run_sweep(
            spec,
            _arith_marked,
            workers=1,
            journal=tmp_path / "journal",
        )
        before = len(list(markers.iterdir()))
        assert before == 3
        # No cache: journaled ok points have no stored value to serve,
        # so a resumed run must re-execute them (values matter).
        result = run_sweep(
            spec,
            _arith_marked,
            workers=1,
            journal=tmp_path / "journal",
            resume=True,
        )
        assert len(list(markers.iterdir())) == before + 3
        # Seeds derive from the experiment id too, so the ground truth
        # must come from the same spec.
        assert result.values == run_sweep(spec, _arith, workers=1).values


class TestAcceptanceScenario:
    """The ISSUE acceptance bar: a 30-point sweep with chaos worker
    crashes and 20% permanently-failing points completes under
    ``collect`` with 24 ok outcomes and full error records, and the
    completed values are byte-identical serial vs parallel with
    retries enabled."""

    def test_thirty_point_chaos_campaign(self, tmp_path, monkeypatch):
        markers = tmp_path / "executions"
        markers.mkdir()
        monkeypatch.setenv(MARKER_DIR_VAR, str(markers))
        spec = _spec(30, experiment_id="acceptance")
        chaos = ChaosSpec(
            plan={3: ("die", "ok"), 11: ("raise",), 17: ("die", "ok")}
        )
        policy = FailurePolicy(max_attempts=3, on_error="collect")
        result = run_sweep(
            spec,
            _fail_multiples_of_five,
            workers=4,
            policy=policy,
            chaos=chaos,
        )
        assert result.ok_count == 24
        assert result.failure_count == 6
        for outcome in result.failures():
            assert outcome.status == "failed"
            assert outcome.attempts == 3
            assert "permanently bad" in outcome.error
            assert "Traceback" in outcome.traceback
            assert len(outcome.attempt_seconds) == 3

        serial = run_sweep(
            spec,
            _fail_multiples_of_five,
            workers=1,
            policy=FailurePolicy(max_attempts=3, on_error="collect"),
        )
        assert canonical_bytes(result.values) == canonical_bytes(
            serial.values
        )
        assert _no_orphans()


#: Driver script for the SIGKILL-resume round trip.  Both the first
#: (killed) run and the resumed run execute it in a fresh interpreter,
#: so the runner's name — part of the journal identity — matches.
_KILL_DRIVER = """
import json, os, sys, time
from pathlib import Path

from repro.experiments.resilience import FailurePolicy
from repro.experiments.sweep import SweepCache, SweepSpec, run_sweep

workdir = Path(sys.argv[1])
mode = sys.argv[2]  # "first" (slow, killed) or "resume"
markers = workdir / "executions"
markers.mkdir(exist_ok=True)


def runner(params, seed):
    name = f"exec-{params['i']}-{os.getpid()}-{time.monotonic_ns()}"
    (markers / name).touch()
    if params["i"] == 2:
        raise ValueError("permanently bad point")
    if mode == "first":
        time.sleep(0.2)
    return params["i"] * 10 + (seed % 7)


spec = SweepSpec("kill-resume", axes={"i": list(range(8))})
cache = SweepCache(workdir / "cache", code_version="pinned")
result = run_sweep(
    spec,
    runner,
    workers=1,
    cache=cache,
    policy=FailurePolicy(on_error="collect"),
    journal=workdir / "cache",
    resume=True,
)
(workdir / f"result-{mode}.json").write_text(
    json.dumps(
        {
            "values": result.values,
            "statuses": [o.status for o in result.outcomes],
            "resumed": [o.resumed for o in result.outcomes],
        }
    )
)
"""


class TestSigkillResume:
    def test_resume_after_sigkill_reexecutes_zero_journaled_points(
        self, tmp_path
    ):
        driver = tmp_path / "driver.py"
        driver.write_text(_KILL_DRIVER)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        journal_dir = tmp_path / "cache"
        markers = tmp_path / "executions"

        first = subprocess.Popen(
            [sys.executable, str(driver), str(tmp_path), "first"],
            env=env,
        )
        try:
            # Let a few points journal durably, then SIGKILL mid-run.
            deadline = time.monotonic() + 30.0
            journaled = 0
            while time.monotonic() < deadline:
                files = list(journal_dir.glob("*.journal.jsonl"))
                if files:
                    journaled = sum(
                        1 for _ in open(files[0], encoding="utf-8")
                    )
                    if journaled >= 3:
                        break
                if first.poll() is not None:
                    break
                time.sleep(0.05)
            assert journaled >= 3, "first run never journaled 3 points"
            assert first.poll() is None, "first run finished too fast"
        finally:
            if first.poll() is None:
                first.send_signal(signal.SIGKILL)
            first.wait(timeout=10)
        assert not (tmp_path / "result-first.json").exists()

        journal_file = next(journal_dir.glob("*.journal.jsonl"))
        journaled_keys = set()
        with open(journal_file, encoding="utf-8") as handle:
            for line in handle:
                try:
                    journaled_keys.add(json.loads(line)["key"])
                except (ValueError, KeyError):
                    continue  # torn tail from the SIGKILL
        journaled_indices = {
            json.loads(key.split(":rep")[0])["i"]
            for key in journaled_keys
        }
        executed_before = {
            int(path.name.split("-")[1])
            for path in markers.iterdir()
        }

        resumed = subprocess.run(
            [sys.executable, str(driver), str(tmp_path), "resume"],
            env=env,
            timeout=60,
        )
        assert resumed.returncode == 0
        executed_after = {
            int(path.name.split("-")[1])
            for path in markers.iterdir()
        }
        report = json.loads(
            (tmp_path / "result-resume.json").read_text()
        )
        # Zero journaled points re-executed; the rest completed.
        new_executions = executed_after - executed_before
        assert not (new_executions & journaled_indices)
        expected_statuses = [
            "failed" if i == 2 else "ok" for i in range(8)
        ]
        assert report["statuses"] == expected_statuses
        assert report["values"] == [
            None if i == 2 else i * 10 + (i_seed % 7)
            for i, i_seed in (
                (i, _seed_of("kill-resume", i)) for i in range(8)
            )
        ]
        # Every point journaled before the kill was replayed, not rerun.
        for index, was_resumed in enumerate(report["resumed"]):
            if index in journaled_indices:
                assert was_resumed


def _seed_of(experiment_id, i):
    """Per-point seed the driver's spec derives (mirrors SweepSpec)."""
    spec = SweepSpec(experiment_id, axes={"i": list(range(8))})
    return spec.points()[i].seed
