"""Leased workers draining the store's submission queue.

The ``submissions`` table *is* the queue; :meth:`~repro.store.api.
ResultStore.run_claimed_submission` is the worker body.  What this
module adds is the lifecycle around it:

- :class:`Worker` — claim the oldest claimable submission (atomic
  ``BEGIN IMMEDIATE``; pending, or running with an expired lease),
  heartbeat from a side thread to keep the lease alive, execute the
  store-backed sweep, release with a fenced update.  A worker that
  dies mid-run simply stops heartbeating; after one lease window the
  submission is claimable again and the next worker resumes it,
  re-executing **only** points whose commits never landed (the store's
  per-point transactions make re-entry free).
- :class:`WorkerSupervisor` — N worker subprocesses with bounded
  restart-on-crash and graceful SIGTERM drain (each worker finishes
  its current *point*, requeues the submission, exits 0).

Runner resolution: a submission records its runner as the
``module:qualname`` string :func:`~repro.experiments.sweep.
runner_name` produces; :func:`resolve_runner` imports it back, so any
worker process with the right code checkout can execute any
submission.
"""

from __future__ import annotations

import importlib
import os
import socket
import subprocess
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import (
    LeaseLostError,
    ReproError,
    ServiceError,
    WorkerDrainError,
)
from repro.store import ResultStore
from repro.store.api import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_CLAIMS,
    DEFAULT_SHARD_POINTS,
)

#: Seconds an idle worker sleeps between claim attempts.
DEFAULT_POLL_SECONDS = 0.5

#: Heartbeats per lease window — 4 extensions before expiry leaves
#: room for a slow commit without risking a spurious takeover.
HEARTBEATS_PER_LEASE = 4


def default_worker_id() -> str:
    """A globally distinguishable worker identity (host:pid:nonce)."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


def resolve_runner(name: str) -> Any:
    """Import the runner a submission recorded (``module:qualname``).

    The inverse of :func:`~repro.experiments.sweep.runner_name` —
    raises :class:`~repro.errors.ServiceError` (never crashes the
    worker loop) when the module or attribute is missing in this
    checkout, so an unresolvable submission fails cleanly.

    >>> resolve_runner("repro.experiments.sweep:canonical_params").__name__
    'canonical_params'
    """
    module_name, sep, qualname = name.partition(":")
    if not sep or not module_name or not qualname:
        raise ServiceError(
            f"runner {name!r} is not a module:qualname reference"
        )
    try:
        target: Any = importlib.import_module(module_name)
    except ImportError as exc:
        raise ServiceError(
            f"cannot import runner module {module_name!r}: {exc}"
        ) from exc
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise ServiceError(
                f"runner {name!r} does not resolve: {module_name} has "
                f"no attribute path {qualname!r}"
            ) from None
    if not callable(target):
        raise ServiceError(f"runner {name!r} resolved to a non-callable")
    return target


class _Heartbeat:
    """Side thread extending one submission's lease until stopped.

    Uses its *own* store handle (own SQLite connection, own shared
    flock) so it never races the executing thread's transactions.
    A heartbeat that comes back unheld sets :attr:`lost`; the worker's
    ``on_outcome`` hook checks it between points and aborts.
    """

    def __init__(
        self,
        directory: os.PathLike,
        submission_id: int,
        worker_id: str,
        lease_seconds: float,
        code_version: Optional[str],
    ) -> None:
        self.directory = directory
        self.submission_id = submission_id
        self.worker_id = worker_id
        self.lease_seconds = lease_seconds
        self.code_version = code_version
        self.interval = max(
            lease_seconds / HEARTBEATS_PER_LEASE, 0.02
        )
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="lease-heartbeat", daemon=True
        )

    def start(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=max(self.interval * 4, 5.0))

    def _run(self) -> None:
        store = ResultStore(
            self.directory,
            code_version=self.code_version,
            shared_writer=True,
        )
        try:
            while not self._stop.wait(self.interval):
                held = store.heartbeat_submission(
                    self.submission_id,
                    self.worker_id,
                    lease_seconds=self.lease_seconds,
                )
                if not held:
                    self.lost.set()
                    return
        except ReproError:  # pragma: no cover - e.g. store torn down
            self.lost.set()
        finally:
            store.close()


class Worker:
    """One queue-draining worker over a shared-lock store handle.

    The loop: claim → execute (with heartbeats) → release → repeat;
    idle polls every ``poll_seconds``.  :meth:`stop` (wired to
    SIGTERM by the CLI) drains gracefully: the current point finishes
    and commits, the submission is requeued as ``pending``, the loop
    exits.
    """

    def __init__(
        self,
        directory: os.PathLike,
        worker_id: Optional[str] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        max_claims: Optional[int] = DEFAULT_MAX_CLAIMS,
        point_workers: Optional[int] = 1,
        shard_points: int = DEFAULT_SHARD_POINTS,
        code_version: Optional[str] = None,
        heartbeats: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.worker_id = worker_id or default_worker_id()
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.max_claims = max_claims
        self.point_workers = point_workers
        self.shard_points = shard_points
        self.heartbeats = heartbeats
        self.store = ResultStore(
            self.directory, code_version=code_version, shared_writer=True
        )
        self._stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def stop(self) -> None:
        """Request a graceful drain (safe from signal handlers)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "Worker":
        self.store.open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the loop ------------------------------------------------------------

    def run(
        self,
        max_submissions: Optional[int] = None,
        until_drained: bool = False,
        timeout: Optional[float] = None,
    ) -> int:
        """Drain the queue; returns the number of submissions executed.

        ``max_submissions`` bounds the executions; ``until_drained``
        exits once no submission is pending or running (waiting out
        live peers' leases); ``timeout`` bounds the wall clock.  With
        none of the three, runs until :meth:`stop` — service mode.
        """
        executed = 0
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while not self._stop.is_set():
            record = self.store.claim_next_submission(
                self.worker_id,
                lease_seconds=self.lease_seconds,
                max_claims=self.max_claims,
            )
            if record is not None:
                if self.execute(record):
                    executed += 1
                if (
                    max_submissions is not None
                    and executed >= max_submissions
                ):
                    break
                continue
            if until_drained and self._drained():
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            self._stop.wait(self.poll_seconds)
        return executed

    def _drained(self) -> bool:
        summary = self.store.queue_summary()
        return summary["pending"] == 0 and summary["running"] == 0

    # -- one submission ------------------------------------------------------

    def execute(self, record: Dict[str, Any]) -> bool:
        """Run one claimed submission; ``True`` if it reached a
        terminal state under our lease (``False``: requeued on drain,
        or fenced off after losing the lease)."""
        submission_id = record["id"]
        try:
            runner = resolve_runner(record["runner"])
        except ServiceError as exc:
            self.store.release_submission(
                submission_id, self.worker_id, "failed", error=str(exc)
            )
            return True
        heartbeat = None
        if self.heartbeats:
            heartbeat = _Heartbeat(
                self.directory,
                submission_id,
                self.worker_id,
                self.lease_seconds,
                self.store.code_version,
            ).start()

        def on_outcome(point: Any, outcome: Any) -> None:
            # Runs after the point's value and outcome committed —
            # aborting here never loses work.
            if heartbeat is not None and heartbeat.lost.is_set():
                raise LeaseLostError(
                    f"lease on submission {submission_id} was lost by "
                    f"{self.worker_id}; another worker owns it now"
                )
            if self._stop.is_set():
                raise WorkerDrainError(
                    f"worker {self.worker_id} draining; requeueing "
                    f"submission {submission_id}"
                )

        try:
            self.store.run_claimed_submission(
                submission_id,
                runner,
                self.worker_id,
                workers=self.point_workers,
                shard_points=self.shard_points,
                on_outcome=on_outcome,
            )
            return True
        except (WorkerDrainError, LeaseLostError):
            return False
        except ReproError:
            # run_claimed_submission already released the lease into
            # 'failed' with the error text; the pool stays alive.
            return True
        finally:
            if heartbeat is not None:
                heartbeat.stop()


class WorkerSupervisor:
    """N worker subprocesses draining one store, restart on crash.

    Subprocesses (not threads): a worker taken out by a fault dies
    alone, its flock and lease die with it, and the supervisor
    replaces it — up to ``restart_limit`` replacements, so a
    systematically crashing fleet stops instead of looping (poison
    *submissions* are already contained by the store's claim cap).

    :meth:`drain` implements graceful shutdown: SIGTERM to every
    worker (each finishes its current point and requeues), bounded
    wait, SIGKILL stragglers.
    """

    def __init__(
        self,
        directory: os.PathLike,
        workers: int,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        restart_limit: Optional[int] = None,
        extra_env: Optional[Dict[str, str]] = None,
    ) -> None:
        if workers < 0:
            raise ServiceError("workers must be >= 0")
        self.directory = Path(directory)
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.restart_limit = (
            restart_limit if restart_limit is not None else workers * 8
        )
        self.extra_env = dict(extra_env or {})
        self.restarts = 0
        self.draining = False
        self._procs: List[subprocess.Popen] = []

    # -- process management --------------------------------------------------

    def _spawn(self, index: int) -> subprocess.Popen:
        env = dict(os.environ)
        env.update(self.extra_env)
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--store",
                str(self.directory),
                "--lease-seconds",
                str(self.lease_seconds),
                "--poll-interval",
                str(self.poll_seconds),
                "--worker-id",
                f"{default_worker_id()}#w{index}",
            ],
            env=env,
        )

    def start(self) -> "WorkerSupervisor":
        for index in range(self.workers):
            self._procs.append(self._spawn(index))
        return self

    def poll(self) -> int:
        """Reap dead workers, replace them (bounded); returns the
        number currently alive."""
        for index, proc in enumerate(self._procs):
            if proc.poll() is None or self.draining:
                continue
            if self.restarts >= self.restart_limit:
                continue
            self.restarts += 1
            self._procs[index] = self._spawn(index)
        return self.alive_count()

    def alive_count(self) -> int:
        return sum(1 for proc in self._procs if proc.poll() is None)

    def drain(self, timeout: float = 30.0) -> None:
        """SIGTERM every worker, wait out the graceful window, then
        SIGKILL what is left.  Idempotent."""
        self.draining = True
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(remaining, 0.1))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
