"""The campaign service: an HTTP veneer + leased worker pool over
:mod:`repro.store`.

Two halves, both thin by design (every durable decision lives in the
store, pinned by the ``tests/store`` + ``tests/service`` batteries):

- :mod:`repro.service.http` — a stdlib-only JSON HTTP server
  (``ThreadingHTTPServer``) exposing ``POST /submissions``,
  ``GET /submissions/<id>``, ``GET /submissions/<id>/results``,
  ``GET /healthz`` and ``GET /queue`` over the existing
  submit/status/results API.
- :mod:`repro.service.workers` — :class:`Worker` (claim → heartbeat
  → execute → release, lease-fenced) and :class:`WorkerSupervisor`
  (N worker subprocesses with restart and graceful SIGTERM drain)
  draining the ``submissions`` table.

See ``docs/service.md`` for deployment, the API reference and the
lease semantics.
"""

from repro.service.http import (  # noqa: F401
    CampaignService,
    ServiceServer,
    make_server,
)
from repro.service.workers import (  # noqa: F401
    Worker,
    WorkerSupervisor,
    default_worker_id,
    resolve_runner,
)

__all__ = [
    "CampaignService",
    "ServiceServer",
    "make_server",
    "Worker",
    "WorkerSupervisor",
    "default_worker_id",
    "resolve_runner",
]
