"""Stdlib-only JSON HTTP veneer over the result store.

One :class:`CampaignService` object owns a shared-lock store handle
behind a mutex (SQLite connections are single-threaded by contract;
``ThreadingHTTPServer`` handler threads serialise on the mutex — every
operation is a few milliseconds, so the mutex is not a throughput
concern at this layer).  The HTTP handler is a pure router: parse,
delegate, map exceptions to status codes.

Routes::

    POST /submissions                 queue a sweep (scenario preset
                                      + axes, or raw spec + runner)
    GET  /submissions                 every submission, newest first
    GET  /submissions/<id>            one submission + lease state
    GET  /submissions/<id>/results    metric table (?metrics=a,b)
    GET  /queue                       pending/running/done/failed +
                                      stale-lease counts
    GET  /healthz                     liveness + drain state

Status codes: 201 created, 200 ok, 400 malformed body/params, 404
unknown submission (or route), 405 wrong method, 409 results requested
before the submission is ``done``, 500 anything unexpected.  Every
response body is JSON.
"""

from __future__ import annotations

import contextlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    ReproError,
    ServiceError,
    StoreError,
    UnknownSubmissionError,
)
from repro.store import ResultStore

#: Largest accepted request body; a sweep spec is a few KB, anything
#: bigger is a client bug, not a bigger sweep.
MAX_BODY_BYTES = 4 * 1024 * 1024


class CampaignService:
    """The application object behind the HTTP handler.

    Thin by contract: every method validates, delegates to the store
    under the mutex, and returns a JSON-ready dict.  ``draining``
    flips when a shutdown begins — ``/healthz`` advertises it so load
    balancers stop routing new submissions while in-flight requests
    finish.
    """

    def __init__(
        self,
        directory: Any,
        code_version: Optional[str] = None,
        supervisor: Optional[Any] = None,
    ) -> None:
        self.directory = Path(directory)
        self.store = ResultStore(
            self.directory, code_version=code_version, shared_writer=True
        ).open()
        self.supervisor = supervisor
        self.draining = False
        self._mutex = threading.RLock()

    def close(self) -> None:
        with self._mutex:
            self.store.close()

    # -- payload builders ----------------------------------------------------

    def submit_payload(self, payload: Any) -> Dict[str, Any]:
        """Queue one submission from a POST body; returns its record.

        Two body shapes:

        - ``{"preset": name, "axes": {path: [values...]}, ...}`` — a
          scenario sweep over a registered preset (optional ``name``,
          ``seed``, ``replications``, ``horizon``), exactly what
          ``repro-hpcqc store submit`` builds;
        - ``{"spec": SweepSpec.to_dict(), "runner":
          "module:qualname", ...}`` — a raw sweep for a runner the
          workers' checkout can import.
        """
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise ServiceError("'name' must be a string")
        if "spec" in payload:
            spec, runner = self._raw_spec(payload)
        elif "preset" in payload:
            spec, runner = self._preset_spec(payload)
        else:
            raise ServiceError(
                "request body needs either 'preset' (+'axes') or "
                "'spec' (+'runner')"
            )
        with self._mutex:
            submission_id = self.store.submit(
                name or payload.get("preset") or spec.experiment_id,
                spec,
                runner,
            )
            record = self.store.submission(submission_id)
        return self._public(record, points=len(spec.points()))

    def _raw_spec(self, payload: Dict[str, Any]) -> Tuple[Any, str]:
        from repro.experiments.sweep import SweepSpec

        runner = payload.get("runner")
        if not isinstance(runner, str) or ":" not in runner:
            raise ServiceError(
                "'runner' must be a module:qualname string"
            )
        try:
            spec = SweepSpec.from_dict(payload["spec"])
        except (ReproError, ValueError, TypeError, KeyError,
                AttributeError) as exc:
            raise ServiceError(f"bad 'spec': {exc}") from exc
        return spec, runner

    def _preset_spec(self, payload: Dict[str, Any]) -> Tuple[Any, str]:
        from repro.experiments.sweep import runner_name
        from repro.scenarios import get_scenario
        from repro.scenarios.sweeps import (
            run_scenario_point,
            scenario_sweep_spec,
        )

        # Preset resolution is lazy in the sweep layer (workers look
        # it up per point); the API validates eagerly so a typo is a
        # 400 now, not a failed submission minutes later.
        get_scenario(payload["preset"])
        axes = payload.get("axes")
        if not isinstance(axes, dict) or not axes:
            raise ServiceError(
                "'axes' must be a non-empty object of "
                "{dotted.path: [values, ...]}"
            )
        for path, values in axes.items():
            if not isinstance(values, list) or not values:
                raise ServiceError(
                    f"axis {path!r} must map to a non-empty list"
                )
        try:
            spec = scenario_sweep_spec(
                payload["preset"],
                axes,
                base_seed=int(payload.get("seed", 0)),
                replications=int(payload.get("replications", 1)),
                run_horizon=payload.get("horizon"),
            )
        except (ReproError, ValueError, TypeError) as exc:
            raise ServiceError(str(exc)) from exc
        return spec, runner_name(run_scenario_point)

    def submissions_payload(self) -> List[Dict[str, Any]]:
        with self._mutex:
            rows = self.store.status()
        return [self._public(row) for row in rows]

    def submission_payload(self, submission_id: int) -> Dict[str, Any]:
        with self._mutex:
            record = self.store.submission(submission_id)
        return self._public(record)

    def results_payload(
        self,
        submission_id: int,
        metrics: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        with self._mutex:
            record = self.store.submission(submission_id)
            if record["state"] != "done":
                raise _NotDone(record["state"])
            headers, rows = self.store.results_rows(
                submission_id, metrics=metrics
            )
        return {"id": submission_id, "headers": headers, "rows": rows}

    def queue_payload(self) -> Dict[str, Any]:
        with self._mutex:
            return self.store.queue_summary()

    def health_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "status": "draining" if self.draining else "ok",
            "version": __version__,
            "store": str(self.directory),
            "queue": self.queue_payload(),
        }
        if self.supervisor is not None:
            payload["workers_alive"] = self.supervisor.poll()
        return payload

    @staticmethod
    def _public(record: Dict[str, Any], **extra: Any) -> Dict[str, Any]:
        """A submission row for the wire (specs stay server-side)."""
        public = {
            key: value
            for key, value in record.items()
            if key != "spec_json"
        }
        public.update(extra)
        return public


class _NotDone(ServiceError):
    """Results requested before the submission finished (HTTP 409)."""

    def __init__(self, state: str) -> None:
        super().__init__(
            f"submission is {state!r}, results need state 'done'"
        )
        self.state = state


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service object."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: CampaignService):
        super().__init__(address, ServiceHandler)
        self.service = service


class ServiceHandler(BaseHTTPRequestHandler):
    """Router: paths → :class:`CampaignService` methods → JSON."""

    server_version = f"repro-hpcqc/{__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # Quiet by default; the CLI's --verbose re-enables it.
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def _respond(self, code: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        with contextlib.suppress(BrokenPipeError, ConnectionResetError):
            self.wfile.write(body)

    def _error(self, code: int, message: str, **extra: Any) -> None:
        self._respond(code, {"error": message, **extra})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("request body required")
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body over {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"body is not valid JSON: {exc}") from exc

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        query = parse_qs(parts.query)
        try:
            if segments == ["healthz"]:
                return self._respond(200, self.service.health_payload())
            if segments == ["queue"]:
                return self._respond(200, self.service.queue_payload())
            if segments == ["submissions"]:
                return self._respond(
                    200, self.service.submissions_payload()
                )
            if len(segments) >= 2 and segments[0] == "submissions":
                try:
                    submission_id = int(segments[1])
                except ValueError:
                    return self._error(404, "no such submission")
                if len(segments) == 2:
                    return self._respond(
                        200,
                        self.service.submission_payload(submission_id),
                    )
                if len(segments) == 3 and segments[2] == "results":
                    metrics = None
                    if "metrics" in query:
                        metrics = [
                            m.strip()
                            for value in query["metrics"]
                            for m in value.split(",")
                            if m.strip()
                        ]
                    return self._respond(
                        200,
                        self.service.results_payload(
                            submission_id, metrics=metrics
                        ),
                    )
            return self._error(404, f"no route for {parts.path!r}")
        except _NotDone as exc:
            return self._error(409, str(exc), state=exc.state)
        except UnknownSubmissionError as exc:
            return self._error(404, str(exc))
        except (ServiceError, ConfigurationError) as exc:
            return self._error(400, str(exc))
        except (StoreError, ReproError) as exc:
            return self._error(500, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        try:
            if segments == ["submissions"]:
                if self.service.draining:
                    return self._error(
                        503, "service is draining; resubmit elsewhere"
                    )
                payload = self._read_body()
                record = self.service.submit_payload(payload)
                return self._respond(201, record)
            return self._error(404, f"no route for {parts.path!r}")
        except (ServiceError, ConfigurationError) as exc:
            return self._error(400, str(exc))
        except (StoreError, ReproError) as exc:
            return self._error(500, str(exc))

    def do_PUT(self) -> None:  # noqa: N802
        self._error(405, "method not allowed")

    do_DELETE = do_PUT


def make_server(
    directory: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    code_version: Optional[str] = None,
    supervisor: Optional[Any] = None,
) -> ServiceServer:
    """A ready-to-serve :class:`ServiceServer` (port 0 = ephemeral;
    the bound port is ``server.server_address[1]``)."""
    service = CampaignService(
        directory, code_version=code_version, supervisor=supervisor
    )
    return ServiceServer((host, port), service)
