"""QPU technology models and the Fig 1 time-scale envelope.

The paper's central empirical input (Fig 1) is that the characteristic
duration of a *quantum job* varies by orders of magnitude across
technologies: a superconducting job lasts seconds ("each quantum task
will last ~10 s"), while a neutral-atom job — including calibration for
an arbitrary register geometry — "could easily last more than 30 min".

Each :class:`QPUTechnology` turns a :class:`~repro.quantum.circuit.Circuit`
and a shot count into execution time from first principles (gate
times × depth + readout + reset + per-shot overhead, plus per-job and
calibration overheads).  The predefined technology constants are
calibrated to public hardware characteristics so the resulting job
durations land in the Fig 1 bands; :func:`fig1_reference_bands`
records those bands explicitly for the E1 experiment to validate
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.quantum.circuit import Circuit


@dataclass(frozen=True)
class QPUTechnology:
    """Timing model for one quantum-hardware technology.

    All times are seconds of simulated time.

    Parameters
    ----------
    name:
        Technology label (also used as default device-name prefix).
    num_qubits:
        Device register size; circuits wider than this are rejected.
    one_qubit_gate_time / two_qubit_gate_time:
        Duration of one layer of the respective gate type.
    readout_time:
        Measurement duration per shot.
    reset_time:
        Qubit-reset / register-reload duration per shot.  For neutral
        atoms this models atom loading and rearrangement and dominates
        the shot cycle.
    per_shot_overhead:
        Additional fixed per-shot control-system overhead.
    job_overhead:
        Per-job fixed cost: compilation, waveform upload, electronics
        arming, parameter loading.
    calibration_interval:
        Wall-clock period after which the device recalibrates
        (drift-driven).  ``inf`` disables periodic calibration.
    calibration_duration:
        Duration of one periodic calibration pass.
    geometry_calibration_duration:
        Extra calibration required when a job's register geometry
        differs from the previously calibrated one (neutral atoms;
        zero for other technologies).
    duration_jitter:
        Relative sigma of lognormal jitter applied to job durations by
        the device model (0 = deterministic).
    """

    name: str
    num_qubits: int
    one_qubit_gate_time: float
    two_qubit_gate_time: float
    readout_time: float
    reset_time: float
    per_shot_overhead: float
    job_overhead: float
    calibration_interval: float
    calibration_duration: float
    geometry_calibration_duration: float = 0.0
    duration_jitter: float = 0.0

    def __post_init__(self) -> None:
        timings = (
            self.one_qubit_gate_time,
            self.two_qubit_gate_time,
            self.readout_time,
            self.reset_time,
            self.per_shot_overhead,
            self.job_overhead,
            self.calibration_duration,
            self.geometry_calibration_duration,
        )
        if any(value < 0 for value in timings):
            raise ConfigurationError(
                f"{self.name}: timing parameters must be non-negative"
            )
        if self.num_qubits <= 0:
            raise ConfigurationError(f"{self.name}: num_qubits must be > 0")
        if self.calibration_interval <= 0:
            raise ConfigurationError(
                f"{self.name}: calibration_interval must be > 0 (use inf "
                "to disable)"
            )
        if not 0.0 <= self.duration_jitter < 1.0:
            raise ConfigurationError(
                f"{self.name}: duration_jitter must be in [0, 1)"
            )

    # -- timing model ------------------------------------------------------------

    def shot_time(self, circuit: Circuit) -> float:
        """Duration of a single shot of ``circuit`` on this hardware."""
        self.validate_circuit(circuit)
        gates = (
            circuit.one_qubit_layers * self.one_qubit_gate_time
            + circuit.two_qubit_layers * self.two_qubit_gate_time
        )
        return (
            gates + self.readout_time + self.reset_time + self.per_shot_overhead
        )

    def execution_time(self, circuit: Circuit, shots: int) -> float:
        """Pure device-busy time of a job (no queueing, no calibration)."""
        if shots <= 0:
            raise ConfigurationError(f"shots must be positive, got {shots!r}")
        return self.job_overhead + shots * self.shot_time(circuit)

    def job_time_with_calibration(self, circuit: Circuit, shots: int) -> float:
        """Execution time plus a geometry calibration (Fig 1 convention
        for neutral atoms: the job duration *includes* register-geometry
        calibration)."""
        return (
            self.geometry_calibration_duration
            + self.execution_time(circuit, shots)
        )

    def validate_circuit(self, circuit: Circuit) -> None:
        if circuit.num_qubits > self.num_qubits:
            raise ConfigurationError(
                f"circuit needs {circuit.num_qubits} qubits; "
                f"{self.name} has {self.num_qubits}"
            )

    @property
    def needs_geometry_calibration(self) -> bool:
        return self.geometry_calibration_duration > 0.0


# ---------------------------------------------------------------------------
# Predefined technologies, calibrated to public hardware characteristics.
# Times in seconds.
# ---------------------------------------------------------------------------

#: Transmon-style superconducting QPU: ns gates, µs readout, kHz-scale
#: repetition rate; jobs land at seconds ("~10 s" in the paper's example).
SUPERCONDUCTING = QPUTechnology(
    name="superconducting",
    num_qubits=127,
    one_qubit_gate_time=35e-9,
    two_qubit_gate_time=300e-9,
    readout_time=4e-6,
    reset_time=250e-6,
    per_shot_overhead=750e-6,
    job_overhead=2.0,
    calibration_interval=3600.0,
    calibration_duration=120.0,
    duration_jitter=0.05,
)

#: Trapped-ion QPU: µs–ms gates, slow cooling/State-prep cycle; jobs land
#: at minutes.
TRAPPED_ION = QPUTechnology(
    name="trapped_ion",
    num_qubits=32,
    one_qubit_gate_time=10e-6,
    two_qubit_gate_time=200e-6,
    readout_time=1e-3,
    reset_time=20e-3,
    per_shot_overhead=30e-3,
    job_overhead=10.0,
    calibration_interval=4 * 3600.0,
    calibration_duration=300.0,
    duration_jitter=0.05,
)

#: Neutral-atom (Rydberg) QPU: per-shot register load/rearrangement in
#: the 100 ms range AND a per-geometry calibration of tens of minutes, so
#: a job on an arbitrary register geometry exceeds 30 min (Fig 1 caption).
NEUTRAL_ATOM = QPUTechnology(
    name="neutral_atom",
    num_qubits=256,
    one_qubit_gate_time=1e-6,
    two_qubit_gate_time=5e-6,
    readout_time=20e-3,
    reset_time=150e-3,
    per_shot_overhead=100e-3,
    job_overhead=60.0,
    calibration_interval=12 * 3600.0,
    calibration_duration=1800.0,
    geometry_calibration_duration=1500.0,
    duration_jitter=0.1,
)

#: Photonic sampler: MHz-scale shot rate, negligible reset; sub-second to
#: second jobs.
PHOTONIC = QPUTechnology(
    name="photonic",
    num_qubits=216,
    one_qubit_gate_time=0.0,
    two_qubit_gate_time=0.0,
    readout_time=1e-6,
    reset_time=0.0,
    per_shot_overhead=5e-6,
    job_overhead=0.5,
    calibration_interval=24 * 3600.0,
    calibration_duration=600.0,
    duration_jitter=0.02,
)

#: Quantum annealer: ~20 µs anneal + ms readout per read; second-scale jobs.
ANNEALER = QPUTechnology(
    name="annealer",
    num_qubits=5000,
    one_qubit_gate_time=0.0,
    two_qubit_gate_time=0.0,
    readout_time=0.25e-3,
    reset_time=20e-6,
    per_shot_overhead=0.5e-3,
    job_overhead=1.0,
    calibration_interval=24 * 3600.0,
    calibration_duration=300.0,
    duration_jitter=0.02,
)

#: All predefined technologies keyed by name.
TECHNOLOGIES: Dict[str, QPUTechnology] = {
    tech.name: tech
    for tech in (
        SUPERCONDUCTING,
        TRAPPED_ION,
        NEUTRAL_ATOM,
        PHOTONIC,
        ANNEALER,
    )
}


def fig1_reference_bands() -> Dict[str, Tuple[float, float]]:
    """Fig 1's qualitative job-duration bands, per technology (seconds).

    These are *validation targets* for experiment E1: a standard job
    (1000 shots of a representative circuit) must land inside the band.
    Bands are wide because Fig 1 is logarithmic and qualitative.
    """
    return {
        "photonic": (0.1, 30.0),
        "annealer": (0.5, 60.0),
        "superconducting": (1.0, 60.0),
        "trapped_ion": (30.0, 3600.0),
        "neutral_atom": (1800.0, 4 * 3600.0),
    }


def standard_job(technology: QPUTechnology, shots: int = 1000) -> Tuple[Circuit, int]:
    """A representative (circuit, shots) pair for cross-tech comparisons."""
    width = min(20, technology.num_qubits)
    circuit = Circuit(
        num_qubits=width,
        depth=100,
        two_qubit_fraction=0.3,
        geometry="standard",
        name=f"standard-{technology.name}",
    )
    return circuit, shots
