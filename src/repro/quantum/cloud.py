"""Cloud access model: vendor REST endpoint in front of a QPU.

The paper (Section 3, "Access and allocation model") observes that
current quantum machines sit behind vendor REST APIs with internal
queues, accessed over a public network — a model that clashes with
batch-scheduler-governed HPC resources.  This module gives that model a
concrete, measurable form so experiment E7 can compare it against
on-prem gres access:

- each request pays network submission latency,
- jobs enter the vendor's multi-user FIFO queue (the device inbox),
- completion is observed by *polling* with a fixed period, adding a
  discretisation delay on top of execution.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.quantum.circuit import Circuit, QuantumResult
from repro.quantum.qpu import QPU, QuantumJob
from repro.sim.kernel import Kernel
from repro.sim.monitor import SampleSeries
from repro.sim.rng import RandomStreams


class CloudQPUEndpoint:
    """Vendor-side REST facade over a physical :class:`QPU`.

    Parameters
    ----------
    submission_latency:
        Mean one-way network + API-gateway latency per request (seconds).
        Drawn from an exponential distribution when ``streams`` is given,
        constant otherwise.
    polling_interval:
        Client polling period for job status (seconds).
    """

    def __init__(
        self,
        kernel: Kernel,
        qpu: QPU,
        submission_latency: float = 0.25,
        polling_interval: float = 2.0,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        if submission_latency < 0:
            raise ConfigurationError("submission_latency must be >= 0")
        if polling_interval <= 0:
            raise ConfigurationError("polling_interval must be > 0")
        self.kernel = kernel
        self.qpu = qpu
        self.submission_latency = submission_latency
        self.polling_interval = polling_interval
        self._rng = (
            streams.stream(f"cloud:{qpu.name}") if streams is not None else None
        )
        #: End-to-end client-observed times (submit to observed-complete).
        self.client_times = SampleSeries(f"cloud:{qpu.name}:client")
        #: Pure overhead: client time minus device execution time.
        self.overheads = SampleSeries(f"cloud:{qpu.name}:overhead")
        self.requests_served = 0

    def _latency(self) -> float:
        if self._rng is None:
            return self.submission_latency
        return float(self._rng.exponential(self.submission_latency))

    def execute(self, circuit: Circuit, shots: int,
                submitter: Optional[str] = None):
        """Generator: run ``circuit`` through the cloud path.

        Use from a process as ``result = yield from endpoint.execute(...)``.
        Returns the :class:`QuantumResult` with ``queue_time`` reflecting
        the full client-observed wait (network, vendor queue, polling).
        """
        start = self.kernel.now
        # Upload request over the network.
        yield self.kernel.timeout(self._latency())
        job = QuantumJob(circuit, shots, submitter=submitter)
        completion = self.qpu.submit(job)

        # Poll until the device reports completion.
        while not completion.processed:
            yield self.kernel.timeout(self.polling_interval)
        result: QuantumResult = completion.value

        # Download the result.
        yield self.kernel.timeout(self._latency())
        elapsed = self.kernel.now - start
        self.client_times.record(elapsed)
        self.overheads.record(elapsed - result.execution_time)
        self.requests_served += 1
        # Expose the client-observed wait, not just the device-side queue.
        result.queue_time = elapsed - result.execution_time - result.calibration_time
        return result

    def __repr__(self) -> str:
        return (
            f"<CloudQPUEndpoint qpu={self.qpu.name} "
            f"served={self.requests_served}>"
        )
