"""Heterogeneous QPU fleets with kernel routing.

Facilities will not own a single QPU but a mixed fleet (the paper's
Section 3: "each quantum HW vendor provides its own API" and time
scales vary by orders of magnitude).  A :class:`QPUFleet` fronts a set
of devices and routes each kernel to one of them under a pluggable
policy:

- ``capability``: first device with enough qubits (submission order);
- ``round_robin``: cycle through capable devices;
- ``least_loaded``: capable device with the fewest queued kernels;
- ``fastest_completion``: capable device minimising *estimated*
  completion time (unavailability from calibration/maintenance +
  committed backlog + this kernel's execution estimate, including any
  geometry calibration the device would pay) — an EFT
  (earliest-finish-time) heuristic.

Routing is a dispatch decision only: the chosen device's own FIFO
semantics, calibrations and monitors are untouched.

>>> ROUTING_POLICIES
('capability', 'round_robin', 'least_loaded', 'fastest_completion')
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError, QuantumDeviceError
from repro.quantum.circuit import Circuit
from repro.quantum.qpu import QPU
from repro.sim.events import Event

#: Known routing policy names.
ROUTING_POLICIES = (
    "capability",
    "round_robin",
    "least_loaded",
    "fastest_completion",
)

#: One-line summary per routing policy (rendered by the CLI's
#: ``fleet policies`` verb and the docs chapter).
POLICY_DESCRIPTIONS = {
    "capability": (
        "first device whose register fits the kernel, in fleet "
        "declaration order"
    ),
    "round_robin": "cycle through the capable devices",
    "least_loaded": "capable device with the fewest queued kernels",
    "fastest_completion": (
        "capable device minimising estimated finish time: "
        "unavailability (calibration/maintenance) + committed backlog "
        "+ this kernel's execution estimate (EFT)"
    ),
}


class QPUFleet:
    """A set of heterogeneous QPUs behind one submission interface.

    The fleet mirrors the single-device ``run(circuit, shots)`` API, so
    it can stand anywhere a :class:`~repro.quantum.qpu.QPU` is
    expected; each kernel is dispatched to one device under the
    configured routing policy.

    >>> from repro.quantum.qpu import QPU
    >>> from repro.quantum.circuit import Circuit
    >>> from repro.quantum.technology import SUPERCONDUCTING, TRAPPED_ION
    >>> from repro.sim.kernel import Kernel
    >>> kernel = Kernel()
    >>> fleet = QPUFleet(
    ...     [QPU(kernel, SUPERCONDUCTING, name="sc0"),
    ...      QPU(kernel, TRAPPED_ION, name="ti0")],
    ...     policy="fastest_completion",
    ... )
    >>> fleet.select_device(Circuit(12, 80), shots=1000).name
    'sc0'
    >>> event = fleet.run(Circuit(12, 80), shots=1000)
    >>> kernel.run()
    >>> fleet.routed_counts
    {'sc0': 1, 'ti0': 0}
    """

    def __init__(self, qpus: List[QPU], policy: str = "fastest_completion"
                 ) -> None:
        if not qpus:
            raise ConfigurationError("a fleet needs at least one QPU")
        if policy not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {policy!r}; "
                f"known: {ROUTING_POLICIES}"
            )
        names = [qpu.name for qpu in qpus]
        if len(set(names)) != len(names):
            raise ConfigurationError("fleet devices must have unique names")
        self.qpus = list(qpus)
        self.policy = policy
        self.kernel = qpus[0].kernel
        self._round_robin_index = 0
        #: Estimated outstanding execution seconds per device.
        self._committed: Dict[str, float] = {q.name: 0.0 for q in qpus}
        #: Kernels routed per device (for reporting).
        self.routed_counts: Dict[str, int] = {q.name: 0 for q in qpus}

    # -- capability & estimates --------------------------------------------------

    def capable_devices(self, circuit: Circuit) -> List[QPU]:
        """Devices whose register fits ``circuit``."""
        return [
            qpu
            for qpu in self.qpus
            if circuit.num_qubits <= qpu.technology.num_qubits
        ]

    def execution_estimate(
        self, qpu: QPU, circuit: Circuit, shots: int
    ) -> float:
        """Estimated device-busy time of the kernel on ``qpu``.

        Includes the geometry calibration the device would pay if the
        kernel's geometry differs from its currently calibrated one.
        """
        estimate = qpu.technology.execution_time(circuit, shots)
        if (
            qpu.technology.needs_geometry_calibration
            and circuit.geometry is not None
            and circuit.geometry != qpu._calibrated_geometry
        ):
            estimate += qpu.technology.geometry_calibration_duration
        return estimate

    def availability_delay(self, qpu: QPU) -> float:
        """Estimated seconds ``qpu`` is withheld from new work.

        The remainder of any in-progress calibration or maintenance
        pass, plus every booked maintenance window that opens before
        the device would clear its committed backlog.  This is what
        stops a device that is down for maintenance from winning
        ``fastest_completion`` on paper while its inbox stalls.
        """
        delay = qpu.unavailable_for
        backlog_clear = (
            self.kernel.now + delay + self._committed[qpu.name]
        )
        for start, duration in qpu.pending_maintenance:
            if start <= backlog_clear:
                delay += duration
                backlog_clear += duration
        return delay

    def completion_estimate(
        self, qpu: QPU, circuit: Circuit, shots: int
    ) -> float:
        """Backlog- and availability-aware estimated finish time."""
        return (
            self.availability_delay(qpu)
            + self._committed[qpu.name]
            + self.execution_estimate(qpu, circuit, shots)
        )

    # -- routing ---------------------------------------------------------------------

    def select_device(self, circuit: Circuit, shots: int) -> QPU:
        """Pick a device under the fleet's policy (no side effects)."""
        capable = self.capable_devices(circuit)
        if not capable:
            raise QuantumDeviceError(
                f"no fleet device has {circuit.num_qubits} qubits "
                f"(largest: "
                f"{max(q.technology.num_qubits for q in self.qpus)})"
            )
        if self.policy == "capability":
            return capable[0]
        if self.policy == "round_robin":
            choice = capable[self._round_robin_index % len(capable)]
            return choice
        if self.policy == "least_loaded":
            return min(capable, key=lambda q: (q.queue_length, q.name))
        return min(
            capable,
            key=lambda q: (
                self.completion_estimate(q, circuit, shots),
                q.name,
            ),
        )

    def run(
        self, circuit: Circuit, shots: int,
        submitter: Optional[str] = None,
    ) -> Event:
        """Route and submit the kernel; fires with its result.

        Mirrors the device API so a fleet can stand anywhere a single
        QPU (or virtual QPU) is expected.
        """
        device = self.select_device(circuit, shots)
        if self.policy == "round_robin":
            self._round_robin_index += 1
        estimate = self.execution_estimate(device, circuit, shots)
        self._committed[device.name] += estimate
        self.routed_counts[device.name] += 1
        completion = device.run(circuit, shots, submitter=submitter)

        def settle(event: Event) -> None:
            self._committed[device.name] = max(
                self._committed[device.name] - estimate, 0.0
            )

        completion.callbacks.append(settle)
        return completion

    @property
    def total_routed(self) -> int:
        return sum(self.routed_counts.values())

    def __repr__(self) -> str:
        return (
            f"<QPUFleet {len(self.qpus)} devices policy={self.policy} "
            f"routed={self.total_routed}>"
        )
