"""Abstract quantum-kernel (circuit) workload descriptions.

Scheduling behaviour does not depend on circuit semantics, only on the
*time* a kernel occupies the device.  A :class:`Circuit` therefore
records the structural parameters that drive execution time on each
technology (width, depth, two-qubit fraction) plus an optional register
``geometry`` tag, which neutral-atom machines must calibrate for
(Fig 1's caption: jobs "include the calibration time for an arbitrary
register geometry").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Circuit:
    """Structural description of a quantum kernel.

    Parameters
    ----------
    num_qubits:
        Register width used by the kernel.
    depth:
        Number of gate layers.
    two_qubit_fraction:
        Fraction of layers dominated by two-qubit gates (they are an
        order of magnitude slower on most hardware).
    geometry:
        Opaque register-geometry tag.  Machines with per-geometry
        calibration (neutral atoms) recalibrate when the tag changes.
    name:
        Optional label used in reports.
    """

    num_qubits: int
    depth: int
    two_qubit_fraction: float = 0.3
    geometry: Optional[str] = None
    name: str = "circuit"

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ConfigurationError("num_qubits must be positive")
        if self.depth < 0:
            raise ConfigurationError("depth must be >= 0")
        if not 0.0 <= self.two_qubit_fraction <= 1.0:
            raise ConfigurationError("two_qubit_fraction must be in [0, 1]")

    @property
    def one_qubit_layers(self) -> float:
        return self.depth * (1.0 - self.two_qubit_fraction)

    @property
    def two_qubit_layers(self) -> float:
        return self.depth * self.two_qubit_fraction

    def stable_hash(self) -> int:
        """Deterministic 64-bit hash (used to seed synthetic results)."""
        text = (
            f"{self.name}:{self.num_qubits}:{self.depth}:"
            f"{self.two_qubit_fraction}:{self.geometry}"
        )
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")


@dataclass
class QuantumResult:
    """Outcome of a shot batch: synthetic measurement counts + timings."""

    counts: Dict[str, int] = field(default_factory=dict)
    shots: int = 0
    execution_time: float = 0.0
    queue_time: float = 0.0
    calibration_time: float = 0.0

    @property
    def total_time(self) -> float:
        """Queue + calibration + execution, as seen by the submitter."""
        return self.queue_time + self.calibration_time + self.execution_time

    def most_frequent(self) -> Optional[str]:
        """The modal bitstring, or ``None`` for an empty result."""
        if not self.counts:
            return None
        return max(self.counts.items(), key=lambda kv: (kv[1], kv[0]))[0]


def sample_counts(circuit: Circuit, shots: int, max_outcomes: int = 16
                  ) -> Dict[str, int]:
    """Deterministic synthetic measurement counts for ``circuit``.

    Samples a multinomial over a small set of bitstrings whose weights
    are derived from the circuit's stable hash, so repeated runs of the
    same circuit return identical distributions — enough realism for
    examples and tests without simulating amplitudes.
    """
    import numpy as np

    if shots <= 0:
        return {}
    rng = np.random.default_rng(circuit.stable_hash())
    n_outcomes = min(max_outcomes, 2 ** min(circuit.num_qubits, 20))
    weights = rng.dirichlet(np.ones(n_outcomes))
    outcome_ids = rng.choice(
        2 ** min(circuit.num_qubits, 20), size=n_outcomes, replace=False
    )
    draws = rng.multinomial(shots, weights)
    width = min(circuit.num_qubits, 20)
    return {
        format(int(outcome), f"0{width}b"): int(count)
        for outcome, count in zip(outcome_ids, draws)
        if count > 0
    }
