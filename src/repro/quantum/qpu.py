"""The QPU device model: a sequential kernel-execution service.

A :class:`QPU` owns an inbox of submitted :class:`QuantumJob` requests
and executes them one at a time (current machines are single-tenant and
mostly single-threaded, as the paper notes).  The device interposes:

- *periodic calibration* when ``calibration_interval`` has elapsed
  since the last pass, and
- *geometry calibration* when a job's register geometry differs from
  the last calibrated geometry (neutral-atom behaviour from Fig 1).

The device keeps time-weighted busy/calibration monitors from which
experiments derive QPU utilisation — the paper's key wasted-resource
metric.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import QuantumDeviceError
from repro.quantum.circuit import Circuit, QuantumResult, sample_counts
from repro.quantum.technology import QPUTechnology
from repro.sim.events import Event
from repro.sim.kernel import Kernel
from repro.sim.monitor import SampleSeries, TimeWeightedValue
from repro.sim.rng import RandomStreams
from repro.sim.store import Store


class QuantumJob:
    """One kernel-execution request: a circuit and a shot count."""

    _serial = 0

    def __init__(
        self,
        circuit: Circuit,
        shots: int,
        submitter: Optional[str] = None,
    ) -> None:
        if shots <= 0:
            raise QuantumDeviceError(f"shots must be positive, got {shots!r}")
        QuantumJob._serial += 1
        self.id = f"qjob-{QuantumJob._serial}"
        self.circuit = circuit
        self.shots = shots
        self.submitter = submitter
        self.submit_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        #: Fired with the job's :class:`QuantumResult` on completion.
        self.completion: Optional[Event] = None

    def __repr__(self) -> str:
        return f"<QuantumJob {self.id} {self.circuit.name} x{self.shots}>"


class QPU:
    """A single physical quantum processing unit.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    technology:
        Timing model (see :mod:`repro.quantum.technology`).
    name:
        Device name; defaults to the technology name.
    streams:
        Random streams for duration jitter; jitter is disabled when
        omitted.
    initial_geometry:
        Geometry tag the device is calibrated for at t=0 (``None``
        means the first geometry-bearing job pays calibration).
    """

    def __init__(
        self,
        kernel: Kernel,
        technology: QPUTechnology,
        name: Optional[str] = None,
        streams: Optional[RandomStreams] = None,
        initial_geometry: Optional[str] = None,
    ) -> None:
        self.kernel = kernel
        self.technology = technology
        self.name = name or technology.name
        self._rng = (
            streams.stream(f"qpu:{self.name}") if streams is not None else None
        )
        self._inbox: Store = Store(kernel)
        self._calibrated_geometry = initial_geometry
        self._last_calibration = kernel.now
        #: Pending maintenance windows as (start, duration), kept sorted.
        self._maintenance: List[tuple] = []
        self.maintenance_performed = 0
        #: End time of an in-progress calibration/maintenance pass.
        self._unavailable_until = kernel.now
        #: 1 while executing a job, else 0.
        self.busy = TimeWeightedValue(kernel, 0.0)
        #: 1 while calibrating, else 0.
        self.calibrating = TimeWeightedValue(kernel, 0.0)
        #: Per-job wait (submit -> start) and service times.
        self.wait_times = SampleSeries(f"{self.name}:wait")
        self.service_times = SampleSeries(f"{self.name}:service")
        self.completed_jobs: List[QuantumJob] = []
        self.jobs_executed = 0
        self.calibrations_performed = 0
        self._process = kernel.process(self._serve(), name=f"qpu:{self.name}")

    # -- client API --------------------------------------------------------------

    def submit(self, job: QuantumJob) -> Event:
        """Queue ``job``; returns an event firing with its result."""
        if job.completion is not None:
            raise QuantumDeviceError(f"{job!r} was already submitted")
        self.technology.validate_circuit(job.circuit)
        job.submit_time = self.kernel.now
        job.completion = self.kernel.event()
        self._inbox.put(job)
        return job.completion

    def run(self, circuit: Circuit, shots: int,
            submitter: Optional[str] = None) -> Event:
        """Convenience: build a job for ``circuit`` and submit it."""
        return self.submit(QuantumJob(circuit, shots, submitter=submitter))

    @property
    def queue_length(self) -> int:
        """Jobs waiting in the device inbox."""
        return self._inbox.size

    @property
    def utilisation(self) -> float:
        """Time-averaged fraction of time spent executing jobs."""
        return self.busy.time_average()

    @property
    def calibration_fraction(self) -> float:
        """Time-averaged fraction of time spent calibrating."""
        return self.calibrating.time_average()

    @property
    def pending_maintenance(self) -> List[tuple]:
        """Booked ``(start, duration)`` windows not yet performed."""
        return list(self._maintenance)

    @property
    def unavailable_for(self) -> float:
        """Remaining seconds of an in-progress calibration or
        maintenance pass (0 when the device is serviceable now)."""
        return max(self._unavailable_until - self.kernel.now, 0.0)

    def schedule_maintenance(self, start: float, duration: float) -> None:
        """Book a maintenance window beginning at ``start``.

        The device finishes its current kernel, then holds off further
        work for ``duration`` seconds once the window opens (jobs keep
        queueing in the inbox meanwhile).  Windows must lie in the
        future and not overlap an already-booked one.
        """
        if start < self.kernel.now:
            raise QuantumDeviceError(
                f"maintenance start {start} is in the past"
            )
        if duration <= 0:
            raise QuantumDeviceError("maintenance duration must be > 0")
        for other_start, other_duration in self._maintenance:
            if start < other_start + other_duration and (
                other_start < start + duration
            ):
                raise QuantumDeviceError(
                    "maintenance window overlaps an existing one"
                )
        self._maintenance.append((start, duration))
        self._maintenance.sort()

    def _due_maintenance(self):
        """Pop the next window if its start time has passed."""
        if self._maintenance and self.kernel.now >= self._maintenance[0][0]:
            return self._maintenance.pop(0)
        return None

    # -- device process ------------------------------------------------------------

    def _serve(self):
        while True:
            job = yield self._inbox.get()
            assert isinstance(job, QuantumJob)
            calibration_time = 0.0

            # Overdue maintenance blocks service before the next kernel.
            window = self._due_maintenance()
            while window is not None:
                _, duration = window
                self.calibrating.set(1.0)
                self._unavailable_until = self.kernel.now + duration
                yield self.kernel.timeout(duration)
                self.calibrating.set(0.0)
                self.maintenance_performed += 1
                window = self._due_maintenance()

            # Periodic (drift) calibration.
            interval = self.technology.calibration_interval
            if (
                interval != float("inf")
                and self.kernel.now - self._last_calibration >= interval
            ):
                calibration_time += yield from self._calibrate(
                    self.technology.calibration_duration
                )

            # Geometry calibration (neutral-atom style).
            geometry = job.circuit.geometry
            if (
                self.technology.needs_geometry_calibration
                and geometry is not None
                and geometry != self._calibrated_geometry
            ):
                calibration_time += yield from self._calibrate(
                    self.technology.geometry_calibration_duration
                )
                self._calibrated_geometry = geometry

            duration = self._jittered(
                self.technology.execution_time(job.circuit, job.shots)
            )
            job.start_time = self.kernel.now
            assert job.submit_time is not None
            queue_time = job.start_time - job.submit_time - calibration_time
            self.busy.set(1.0)
            yield self.kernel.timeout(duration)
            self.busy.set(0.0)
            job.end_time = self.kernel.now

            result = QuantumResult(
                counts=sample_counts(job.circuit, job.shots),
                shots=job.shots,
                execution_time=duration,
                queue_time=max(queue_time, 0.0),
                calibration_time=calibration_time,
            )
            self.wait_times.record(job.start_time - job.submit_time)
            self.service_times.record(duration)
            self.jobs_executed += 1
            self.completed_jobs.append(job)
            assert job.completion is not None
            job.completion.succeed(result)

    def _calibrate(self, duration: float):
        """Run one calibration pass of ``duration`` seconds."""
        self.calibrating.set(1.0)
        self._unavailable_until = self.kernel.now + duration
        yield self.kernel.timeout(duration)
        self.calibrating.set(0.0)
        self._last_calibration = self.kernel.now
        self.calibrations_performed += 1
        return duration

    def _jittered(self, duration: float) -> float:
        sigma = self.technology.duration_jitter
        if self._rng is None or sigma <= 0.0:
            return duration
        return float(duration * self._rng.lognormal(mean=0.0, sigma=sigma))

    def __repr__(self) -> str:
        return (
            f"<QPU {self.name} ({self.technology.name}) "
            f"queue={self.queue_length} done={self.jobs_executed}>"
        )
