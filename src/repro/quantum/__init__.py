"""Quantum substrate: technologies, circuits, devices, cloud access."""

from repro.quantum.circuit import Circuit, QuantumResult, sample_counts
from repro.quantum.cloud import CloudQPUEndpoint
from repro.quantum.fleet import ROUTING_POLICIES, QPUFleet
from repro.quantum.qpu import QPU, QuantumJob
from repro.quantum.technology import (
    ANNEALER,
    NEUTRAL_ATOM,
    PHOTONIC,
    SUPERCONDUCTING,
    TECHNOLOGIES,
    TRAPPED_ION,
    QPUTechnology,
    fig1_reference_bands,
    standard_job,
)

__all__ = [
    "ANNEALER",
    "Circuit",
    "CloudQPUEndpoint",
    "NEUTRAL_ATOM",
    "PHOTONIC",
    "QPU",
    "QPUFleet",
    "QPUTechnology",
    "QuantumJob",
    "QuantumResult",
    "ROUTING_POLICIES",
    "SUPERCONDUCTING",
    "TECHNOLOGIES",
    "TRAPPED_ION",
    "fig1_reference_bands",
    "sample_counts",
    "standard_job",
]
