"""Command-line interface: run experiments and print their tables.

Usage::

    repro-hpcqc list
    repro-hpcqc run E1 E4            # specific experiments
    repro-hpcqc run all --seed 7     # everything
    repro-hpcqc run all --markdown   # EXPERIMENTS.md-style output
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro._version import __version__
from repro.experiments import EXPERIMENTS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hpcqc",
        description=(
            "Hybrid HPC-QC scheduling simulator - experiment runner "
            "(reproduction of Viviani et al., DSN 2025)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. E1 E4) or 'all'",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="root RNG seed (default 0)"
    )
    run_parser.add_argument(
        "--markdown",
        action="store_true",
        help="render results as markdown instead of plain tables",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id, runner in sorted(EXPERIMENTS.items()):
            doc = (runner.__module__ or "").rsplit(".", 1)[-1]
            print(f"{experiment_id}: {doc}")
        return 0
    if args.command == "run":
        requested = args.experiments
        if any(token.lower() == "all" for token in requested):
            requested = sorted(EXPERIMENTS)
        unknown = [token for token in requested if token not in EXPERIMENTS]
        if unknown:
            parser.error(
                f"unknown experiment(s): {unknown}; "
                f"known: {sorted(EXPERIMENTS)}"
            )
        any_failed = False
        for experiment_id in requested:
            result = EXPERIMENTS[experiment_id](seed=args.seed)
            output = (
                result.render_markdown()
                if args.markdown
                else result.render()
            )
            print(output)
            print()
            if not result.all_passed:
                any_failed = True
        return 1 if any_failed else 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
