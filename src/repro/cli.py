"""Command-line interface: run experiments and print their tables.

Usage::

    repro-hpcqc list
    repro-hpcqc run E1 E4            # specific experiments
    repro-hpcqc run all --seed 7     # everything
    repro-hpcqc run all --markdown   # EXPERIMENTS.md-style output
    repro-hpcqc sweep all --workers 4 --cache-dir .sweep-cache
    repro-hpcqc sweep E4 --retries 2 --timeout 300 --on-error collect
    repro-hpcqc sweep E4 --cache-dir .sweep-cache --resume
    repro-hpcqc scenario list
    repro-hpcqc scenario describe mixed-fleet   # JSON + device table
    repro-hpcqc scenario run --preset baseline-32 --seed 7
    repro-hpcqc scenario run --json my_facility.json --horizon 7200
    repro-hpcqc store submit .store --preset baseline-32 \\
        --axis workload.background_rho=0.5,0.7 --defer
    repro-hpcqc serve --store .store --port 8351 --workers 2
    repro-hpcqc worker --store .store --until-drained
    repro-hpcqc fleet policies
    repro-hpcqc trace info sample-32n.swf
    repro-hpcqc trace replay my_site.swf --time-scale 0.5 --loop
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro._version import __version__
from repro.experiments import EXPERIMENTS, SWEEP_EXPERIMENTS
from repro.experiments.sweep import resolve_workers


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hpcqc",
        description=(
            "Hybrid HPC-QC scheduling simulator - experiment runner "
            "(reproduction of Viviani et al., DSN 2025)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. E1 E4) or 'all'",
    )
    run_parser.add_argument(
        "--seed", type=int, default=0, help="root RNG seed (default 0)"
    )
    run_parser.add_argument(
        "--markdown",
        action="store_true",
        help="render results as markdown instead of plain tables",
    )
    run_parser.add_argument(
        "--profile",
        metavar="OUT.pstats",
        default=None,
        help=(
            "profile the run with cProfile and dump pstats data to "
            "OUT.pstats (inspect with 'python -m pstats' or snakeviz); "
            "REPRO_PROFILE=1 enables the same with a default output "
            "path, REPRO_PROFILE=<path> picks the path"
        ),
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help=(
            "run grid experiments through the parallel sweep engine "
            "(process-pool workers + optional on-disk result cache)"
        ),
    )
    sweep_parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            "sweep-capable experiment ids "
            f"({', '.join(sorted(SWEEP_EXPERIMENTS))}) or 'all'"
        ),
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=0, help="root RNG seed (default 0)"
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes per sweep (default: $REPRO_SWEEP_WORKERS "
            "or 1 = serial; results are byte-identical either way)"
        ),
    )
    sweep_parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "directory for the on-disk result cache (default: "
            "$REPRO_SWEEP_CACHE_DIR or no cache); re-runs only "
            "simulate new grid points"
        ),
    )
    sweep_parser.add_argument(
        "--markdown",
        action="store_true",
        help="render results as markdown instead of plain tables",
    )
    sweep_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help=(
            "extra attempts a failing grid point gets before its "
            "failure is terminal (default 0)"
        ),
    )
    sweep_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help=(
            "per-point wall-clock timeout in seconds; a hung point's "
            "worker is killed and the point retried or recorded as "
            "timed_out (default: no timeout)"
        ),
    )
    sweep_parser.add_argument(
        "--on-error",
        choices=["raise", "collect"],
        default="raise",
        help=(
            "'raise' aborts on the first terminal point failure; "
            "'collect' records it, keeps sweeping, prints a failure "
            "summary and exits non-zero (default: raise)"
        ),
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the run journal next to the cache: skip "
            "points already completed or permanently failed in a "
            "previous (possibly killed) run; requires --cache-dir or "
            "$REPRO_SWEEP_CACHE_DIR"
        ),
    )
    sweep_parser.add_argument(
        "--chaos",
        default=None,
        metavar="JSON",
        help=(
            "deterministic fault injection for exercising the "
            "recovery paths, as a ChaosSpec JSON object, e.g. "
            "'{\"seed\": 7, \"raise_rate\": 0.25}' (see "
            "docs/resilience.md)"
        ),
    )
    sweep_parser.add_argument(
        "--store",
        action="store_true",
        help=(
            "back the cache directory with the durable result store "
            "(SQLite + columnar metrics; see docs/store.md) instead "
            "of per-point pickles; requires --cache-dir"
        ),
    )

    scenario_parser = subparsers.add_parser(
        "scenario",
        help=(
            "work with declarative facility scenarios "
            "(named presets or JSON files)"
        ),
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command")
    scenario_sub.add_parser("list", help="list registered scenario presets")
    describe_parser = scenario_sub.add_parser(
        "describe", help="print one preset as JSON"
    )
    describe_parser.add_argument("name", help="preset name")
    scenario_run = scenario_sub.add_parser(
        "run",
        help=(
            "build a scenario, inject its workload and faults, drive "
            "it to the horizon and print facility metrics"
        ),
    )
    source = scenario_run.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", help="registered preset name")
    source.add_argument(
        "--json",
        dest="json_path",
        help="path to a ScenarioSpec JSON file",
    )
    scenario_run.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the scenario's root seed",
    )
    scenario_run.add_argument(
        "--horizon",
        type=float,
        default=None,
        help=(
            "simulated seconds to run (default: the scenario's "
            "workload horizon)"
        ),
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help=(
            "run declarative multi-stage campaign DAGs with per-stage "
            "retries, durable resume and pluggable backends"
        ),
    )
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command")
    campaign_sub.add_parser(
        "list", help="list the campaign specs shipped with the package"
    )
    campaign_describe = campaign_sub.add_parser(
        "describe",
        help="print one campaign spec as JSON plus its stage order",
    )
    campaign_describe.add_argument(
        "spec", help="spec path (.toml/.json) or packaged campaign name"
    )
    for verb, help_text in (
        ("run", "execute a campaign from scratch (truncates its journal)"),
        ("resume", "continue a campaign from its stage journal"),
    ):
        campaign_exec = campaign_sub.add_parser(verb, help=help_text)
        campaign_exec.add_argument(
            "spec",
            help="spec path (.toml/.json) or packaged campaign name",
        )
        campaign_exec.add_argument(
            "--state-dir",
            required=True,
            help=(
                "directory for the campaign's durable state (stage "
                "journal, per-stage results, sweep caches); reuse it "
                "to resume"
            ),
        )
        campaign_exec.add_argument(
            "--backend",
            default="serial",
            help=(
                "execution backend: 'serial' (default) or 'process' "
                "(independent DAG branches in a worker pool); values "
                "are byte-identical either way"
            ),
        )
        campaign_exec.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker budget for pool backends and sweep stages",
        )
        campaign_exec.add_argument(
            "--seed",
            type=int,
            default=None,
            help="override the spec's campaign seed",
        )
        campaign_exec.add_argument(
            "--chaos",
            default=None,
            metavar="JSON",
            help=(
                "stage-granular fault injection as a ChaosSpec JSON "
                "object, e.g. '{\"stage_plan\": {\"grid\": [\"die\"]}}' "
                "(see docs/campaigns.md)"
            ),
        )
        campaign_exec.add_argument(
            "--json",
            dest="json_output",
            action="store_true",
            help="print the canonical campaign result as JSON",
        )
        campaign_exec.add_argument(
            "--store",
            action="store_true",
            help=(
                "keep the stage journal and stage values in the durable "
                "result store under STATE_DIR/store instead of pickle "
                "files (see docs/store.md)"
            ),
        )
    campaign_status = campaign_sub.add_parser(
        "status",
        help=(
            "print journal-derived per-stage progress without "
            "executing anything"
        ),
    )
    campaign_status.add_argument(
        "spec", help="spec path (.toml/.json) or packaged campaign name"
    )
    campaign_status.add_argument(
        "--state-dir",
        required=True,
        help="the campaign's durable state directory",
    )
    campaign_status.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the spec's campaign seed",
    )
    campaign_status.add_argument(
        "--store",
        action="store_true",
        help="read stage progress from STATE_DIR/store",
    )

    store_parser = subparsers.add_parser(
        "store",
        help=(
            "the durable result store: submit scenario sweeps, inspect "
            "their status, read metric columns, reclaim space "
            "(see docs/store.md)"
        ),
    )
    store_sub = store_parser.add_subparsers(dest="store_command")
    store_init = store_sub.add_parser(
        "init",
        help=(
            "create (or migrate) a store at a directory so sweeps "
            "pointed there auto-detect it"
        ),
    )
    store_init.add_argument("directory", help="store directory")
    store_submit = store_sub.add_parser(
        "submit",
        help=(
            "record a scenario-sweep submission and run it to "
            "completion (use --defer to only record it)"
        ),
    )
    store_submit.add_argument("directory", help="store directory")
    store_submit.add_argument(
        "--preset",
        required=True,
        help="scenario preset name supplying the base ScenarioSpec",
    )
    store_submit.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2,...",
        help=(
            "sweep axis as name=comma-separated values (repeatable); "
            "values parse as JSON scalars, falling back to strings"
        ),
    )
    store_submit.add_argument(
        "--name",
        default=None,
        help="submission name (default: the preset name)",
    )
    store_submit.add_argument(
        "--seed", type=int, default=0, help="base seed (default 0)"
    )
    store_submit.add_argument(
        "--replications",
        type=int,
        default=1,
        help="replications per grid point (default 1)",
    )
    store_submit.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="simulated seconds per point (default: the preset's)",
    )
    store_submit.add_argument(
        "--workers",
        default=None,
        help="worker processes ('auto' or an integer, default 1)",
    )
    store_submit.add_argument(
        "--defer",
        action="store_true",
        help="record the submission as pending without executing it",
    )
    store_run = store_sub.add_parser(
        "run",
        help="execute a pending submission recorded with submit --defer",
    )
    store_run.add_argument("directory", help="store directory")
    store_run.add_argument("id", type=int, help="submission id")
    store_run.add_argument(
        "--workers",
        default=None,
        help="worker processes ('auto' or an integer, default 1)",
    )
    store_status = store_sub.add_parser(
        "status",
        help="list submissions newest-first with their point counts",
    )
    store_status.add_argument("directory", help="store directory")
    store_status.add_argument(
        "--json",
        dest="json_output",
        action="store_true",
        help="print the submission rows as JSON",
    )
    store_results = store_sub.add_parser(
        "results",
        help=(
            "print a submission's per-point metric table from the "
            "columnar shards"
        ),
    )
    store_results.add_argument("directory", help="store directory")
    store_results.add_argument("id", type=int, help="submission id")
    store_results.add_argument(
        "--metrics",
        default=None,
        metavar="M1,M2,...",
        help="restrict to these metric columns (default: all)",
    )
    store_results.add_argument(
        "--json",
        dest="json_output",
        action="store_true",
        help="print {headers, rows} as JSON",
    )
    store_gc = store_sub.add_parser(
        "gc",
        help=(
            "remove orphan shard files and expire sweeps not touched "
            "within --keep-days"
        ),
    )
    store_gc.add_argument("directory", help="store directory")
    store_gc.add_argument(
        "--keep-days",
        type=float,
        default=None,
        help="expire sweeps idle longer than this many days",
    )
    store_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without touching anything",
    )
    store_verify = store_sub.add_parser(
        "verify",
        help="integrity-check the database and every shard's zip directory",
    )
    store_verify.add_argument("directory", help="store directory")

    serve_parser = subparsers.add_parser(
        "serve",
        help=(
            "run the campaign service: a JSON HTTP API over a result "
            "store plus an optional leased worker pool draining its "
            "submission queue (see docs/service.md)"
        ),
    )
    serve_parser.add_argument(
        "--store", required=True, help="store directory to serve"
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8351,
        help="TCP port; 0 picks an ephemeral port (default 8351)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help=(
            "worker subprocesses draining the queue (0 = API only, "
            "default 2)"
        ),
    )
    serve_parser.add_argument(
        "--lease-seconds",
        type=float,
        default=None,
        help="lease window each worker claim holds (default 60)",
    )
    serve_parser.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        help="idle worker sleep between claim attempts (default 0.5)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help=(
            "seconds workers get to finish their current point on "
            "SIGTERM before being killed (default 30)"
        ),
    )

    worker_parser = subparsers.add_parser(
        "worker",
        help=(
            "run one queue-draining worker against a store: claim the "
            "oldest claimable submission under a lease, execute it, "
            "release, repeat (see docs/service.md)"
        ),
    )
    worker_parser.add_argument(
        "--store", required=True, help="store directory to drain"
    )
    worker_parser.add_argument(
        "--worker-id",
        default=None,
        help="lease identity (default: host:pid:nonce)",
    )
    worker_parser.add_argument(
        "--lease-seconds",
        type=float,
        default=None,
        help="lease window each claim holds (default 60)",
    )
    worker_parser.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        help="idle sleep between claim attempts (default 0.5)",
    )
    worker_parser.add_argument(
        "--point-workers",
        default=None,
        help=(
            "process-pool workers per sweep ('auto' or an integer, "
            "default 1)"
        ),
    )
    worker_parser.add_argument(
        "--max-submissions",
        type=int,
        default=None,
        help="exit after executing this many submissions",
    )
    worker_parser.add_argument(
        "--until-drained",
        action="store_true",
        help=(
            "exit once no submission is pending or running instead of "
            "polling forever"
        ),
    )
    worker_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="exit after this many idle-inclusive wall-clock seconds",
    )

    fleet_parser = subparsers.add_parser(
        "fleet",
        help=(
            "inspect the QPU-fleet routing layer "
            "(policies, per-preset device tables)"
        ),
    )
    fleet_sub = fleet_parser.add_subparsers(dest="fleet_command")
    fleet_sub.add_parser(
        "policies",
        help="list the kernel routing policies a FleetSpec can pick",
    )
    devices_parser = fleet_sub.add_parser(
        "devices",
        help="print the device table a scenario preset's fleet builds",
    )
    devices_parser.add_argument("name", help="preset name")

    trace_parser = subparsers.add_parser(
        "trace",
        help=(
            "inspect and replay SWF workload trace files "
            "(paths resolve against the CWD, then the packaged "
            "sample directory)"
        ),
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command")
    info_parser = trace_sub.add_parser(
        "info", help="parse an SWF file and print summary statistics"
    )
    info_parser.add_argument("path", help="SWF trace file")
    info_parser.add_argument(
        "--nodes",
        type=int,
        default=32,
        help="partition width for the offered-load estimate (default 32)",
    )
    replay_parser = trace_sub.add_parser(
        "replay",
        help=(
            "replay an SWF file through a scenario preset's facility "
            "and print the run metrics"
        ),
    )
    replay_parser.add_argument("path", help="SWF trace file")
    replay_parser.add_argument(
        "--preset",
        default="trace-replay",
        help=(
            "scenario preset supplying the facility "
            "(default: trace-replay)"
        ),
    )
    replay_parser.add_argument(
        "--seed", type=int, default=None, help="override the root seed"
    )
    replay_parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="simulated seconds to run (default: the preset's horizon)",
    )
    # Replay-rule flags default to None = "keep the preset's trace
    # setting (or the TraceSpec default)", so a preset's declared
    # mapping rules survive unless explicitly overridden.
    replay_parser.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="multiply submit times (0.5 doubles the arrival rate)",
    )
    replay_parser.add_argument(
        "--runtime-scale",
        type=float,
        default=None,
        help="multiply runtimes and requested walltimes",
    )
    replay_parser.add_argument(
        "--qpu-fraction",
        type=float,
        default=None,
        help=(
            "deterministic fraction of trace jobs routed to the "
            "quantum partition as qpu gres requests"
        ),
    )
    replay_parser.add_argument(
        "--limit",
        type=int,
        default=None,
        help="truncate to the first N trace jobs",
    )
    replay_parser.add_argument(
        "--loop",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "repeat the trace until the horizon is filled "
            "(--no-loop forces a single pass)"
        ),
    )
    replay_parser.add_argument(
        "--jitter",
        type=float,
        default=None,
        help="gaussian submit-time jitter std-dev in seconds",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id, runner in sorted(EXPERIMENTS.items()):
            doc = (runner.__module__ or "").rsplit(".", 1)[-1]
            print(f"{experiment_id}: {doc}")
        return 0
    if args.command == "run":
        with _maybe_profile(args.profile):
            return _run_experiments(
                parser,
                args,
                registry=EXPERIMENTS,
                unknown_message="unknown experiment(s)",
                registry_label="known",
            )
    if args.command == "scenario":
        return _scenario_command(parser, args)
    if args.command == "campaign":
        return _campaign_command(parser, args)
    if args.command == "store":
        return _store_command(parser, args)
    if args.command == "serve":
        return _serve_command(parser, args)
    if args.command == "worker":
        return _worker_command(parser, args)
    if args.command == "fleet":
        return _fleet_command(parser, args)
    if args.command == "trace":
        return _trace_command(parser, args)
    if args.command == "sweep":
        workers = resolve_workers(args.workers)
        run_kwargs = _sweep_run_kwargs(parser, args, workers)
        return _run_experiments(
            parser,
            args,
            registry=SWEEP_EXPERIMENTS,
            unknown_message="not sweep-capable",
            registry_label="sweepable",
            run_kwargs=run_kwargs,
            footer=lambda experiment_id, elapsed: (
                f"[sweep] {experiment_id}: {elapsed:.2f}s "
                f"(workers={workers}, "
                f"cache={args.cache_dir or 'off'})"
            ),
        )
    parser.print_help()
    return 2


#: Environment knob mirroring ``run --profile``: ``REPRO_PROFILE=1``
#: profiles into :data:`DEFAULT_PROFILE_PATH`, any other non-empty
#: value is taken as the output path itself.
PROFILE_ENV_VAR = "REPRO_PROFILE"
DEFAULT_PROFILE_PATH = "repro-run.pstats"


def _resolve_profile_path(flag_value: Optional[str]) -> Optional[str]:
    """Output path for cProfile data, or None when profiling is off."""
    if flag_value:
        return flag_value
    import os

    env = os.environ.get(PROFILE_ENV_VAR, "")
    if not env or env == "0":
        return None
    return DEFAULT_PROFILE_PATH if env == "1" else env


class _maybe_profile:
    """Context manager running its body under cProfile when enabled.

    The profiler brackets the whole experiment loop (simulation,
    metrics, rendering) so kernel hot spots appear with their real
    relative weight; the pstats file is written even if the body
    raises, so aborted runs can still be inspected.
    """

    def __init__(self, flag_value: Optional[str]) -> None:
        self._path = _resolve_profile_path(flag_value)
        self._profiler = None

    def __enter__(self) -> "_maybe_profile":
        if self._path is not None:
            import cProfile

            self._profiler = cProfile.Profile()
            self._profiler.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._profiler is not None:
            self._profiler.disable()
            self._profiler.dump_stats(self._path)
            print(f"[profile] wrote {self._path}", file=sys.stderr)


def _sweep_run_kwargs(parser, args, workers: int) -> dict:
    """Fold the sweep verb's fault-tolerance flags into run kwargs."""
    import os

    from repro.errors import ReproError
    from repro.experiments.resilience import ChaosSpec, FailurePolicy
    from repro.experiments.sweep import CACHE_ENV_VAR

    if args.retries < 0:
        parser.error("--retries must be >= 0")
    cache_dir = args.cache_dir or os.environ.get(CACHE_ENV_VAR)
    if args.store:
        if not cache_dir:
            parser.error("--store needs --cache-dir")
        # Creating the database up front is all it takes: sweep_cache()
        # auto-detects store.sqlite3 and goes store-backed.
        from repro.store import ResultStore

        with ResultStore(cache_dir):
            pass
    if args.resume and not cache_dir:
        parser.error(
            "--resume needs the run journal kept next to the result "
            "cache: pass --cache-dir (or set $REPRO_SWEEP_CACHE_DIR)"
        )
    try:
        policy = FailurePolicy(
            max_attempts=args.retries + 1,
            timeout_seconds=args.timeout,
            on_error=args.on_error,
        )
    except (ReproError, ValueError, TypeError) as exc:
        parser.error(str(exc))
    chaos = None
    if args.chaos:
        try:
            chaos = ChaosSpec.from_dict(json.loads(args.chaos))
        except (ReproError, ValueError, TypeError) as exc:
            parser.error(f"--chaos: {exc}")
    return {
        "workers": workers,
        "cache_dir": cache_dir,
        "policy": policy,
        "chaos": chaos,
        "resume": args.resume,
    }


def _scenario_command(parser, args) -> int:
    """The ``scenario`` verb: list / describe / run."""
    from repro.errors import ReproError
    from repro.scenarios import (
        ScenarioSpec,
        get_scenario,
        list_scenarios,
        run_scenario,
    )

    if args.scenario_command == "list":
        for name in list_scenarios():
            print(f"{name}: {get_scenario(name).description}")
        return 0
    if args.scenario_command == "describe":
        try:
            spec = get_scenario(args.name)
        except ReproError as exc:
            parser.error(str(exc))
        print(spec.to_json())
        # The device table goes to stderr: stdout stays pure JSON for
        # `describe NAME | jq`-style pipelines (`fleet devices NAME`
        # prints the same table on stdout).
        print(_device_table(spec), file=sys.stderr)
        return 0
    if args.scenario_command == "run":
        try:
            if args.preset:
                spec = get_scenario(args.preset)
            else:
                with open(args.json_path, "r", encoding="utf-8") as handle:
                    spec = ScenarioSpec.from_json(handle.read())
            start = time.perf_counter()
            metrics = run_scenario(
                spec, seed=args.seed, horizon=args.horizon
            )
        except (ReproError, OSError) as exc:
            parser.error(str(exc))
        elapsed = time.perf_counter() - start
        print(json.dumps(metrics, indent=2, sort_keys=True))
        print(
            f"[scenario] {spec.name}: {metrics['horizon_s']:.0f}s "
            f"simulated in {elapsed:.2f}s wall"
        )
        return 0
    parser.error("scenario needs a subcommand: list, describe or run")


def _campaign_command(parser, args) -> int:
    """The ``campaign`` verb: list / describe / run / resume / status."""
    import dataclasses

    from repro.errors import CampaignError, ReproError
    from repro.campaigns import (
        CampaignEngine,
        list_campaigns,
        load_campaign,
    )

    if args.campaign_command == "list":
        for name in list_campaigns():
            spec = load_campaign(name)
            print(f"{name}: {spec.description or len(spec.stages)}")
        return 0
    if args.campaign_command == "describe":
        try:
            spec = load_campaign(args.spec)
        except ReproError as exc:
            parser.error(str(exc))
        print(spec.to_json(indent=2))
        order = spec.dag().order
        print(f"[campaign] stage order: {' -> '.join(order)}", file=sys.stderr)
        return 0
    if args.campaign_command in ("run", "resume"):
        try:
            spec = load_campaign(args.spec)
            if args.seed is not None:
                spec = dataclasses.replace(spec, seed=args.seed)
            chaos = None
            if args.chaos:
                from repro.experiments.resilience import ChaosSpec

                chaos = ChaosSpec.from_dict(json.loads(args.chaos))
            engine = CampaignEngine(
                spec,
                args.state_dir,
                backend=args.backend,
                workers=args.workers,
                chaos=chaos,
                store=_campaign_store_dir(args),
            )
        except (ReproError, ValueError, TypeError) as exc:
            parser.error(str(exc))
        resume = args.campaign_command == "resume"
        try:
            result = engine.run(resume=resume)
        except CampaignError as exc:
            print(f"error: campaign failed: {exc}", file=sys.stderr)
            return 1
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.json_output:
            print(json.dumps(result.canonical(), indent=2, sort_keys=True))
        else:
            from repro.metrics.report import render_table

            rows = [
                [
                    name,
                    result.outcomes[name].status,
                    result.outcomes[name].attempts,
                    "yes" if result.outcomes[name].resumed else "",
                    (result.outcomes[name].error or "")[:60],
                ]
                for name in result.order
            ]
            print(
                render_table(
                    ["stage", "status", "attempts", "resumed", "error"],
                    rows,
                    title=f"campaign {spec.name!r} [{result.backend}]",
                )
            )
        counts = result.counts()
        print(
            f"[campaign] {spec.name}: "
            + ", ".join(
                f"{status}={count}" for status, count in sorted(counts.items())
            )
            + f" in {result.wall_seconds:.2f}s "
            + f"(digest {result.canonical_digest()[:16]})"
        )
        return 0 if result.ok else 1
    if args.campaign_command == "status":
        try:
            spec = load_campaign(args.spec)
            if args.seed is not None:
                spec = dataclasses.replace(spec, seed=args.seed)
            engine = CampaignEngine(
                spec, args.state_dir, store=_campaign_store_dir(args)
            )
        except ReproError as exc:
            parser.error(str(exc))
        print(json.dumps(engine.status(), indent=2, sort_keys=True))
        return 0
    parser.error(
        "campaign needs a subcommand: list, describe, run, resume or "
        "status"
    )


def _campaign_store_dir(args):
    """``--store`` puts campaign state in ``STATE_DIR/store``."""
    from pathlib import Path

    if not getattr(args, "store", False):
        return None
    return Path(args.state_dir) / "store"


def _store_command(parser, args) -> int:
    """The ``store`` verb: init / submit / run / status / results / gc
    / verify."""
    from repro.errors import ReproError, StoreError
    from repro.store import ResultStore

    if args.store_command is None:
        parser.error(
            "store needs a subcommand: init, submit, run, status, "
            "results, gc or verify"
        )
    store = ResultStore(args.directory)
    try:
        if args.store_command == "init":
            store.open()
            store.close()
            print(f"[store] ready: {store.db.db_path}")
            return 0
        if args.store_command == "submit":
            return _store_submit(parser, args, store)
        if args.store_command == "run":
            workers = resolve_workers(args.workers)
            record = _store_execute(parser, store, args.id, workers)
            return 0 if record["state"] == "done" else 1
        if args.store_command == "status":
            rows = store.status()
            summary = store.queue_summary()
            if args.json_output:
                # The JSON shape stays a bare row list (scripts pipe it
                # through jq); the queue composition rides on stderr.
                print(json.dumps(rows, indent=2, sort_keys=True))
                print(
                    json.dumps({"queue": summary}, sort_keys=True),
                    file=sys.stderr,
                )
                return 0
            from repro.metrics.report import render_table

            table = [
                [
                    row["id"],
                    row["name"],
                    row["state"],
                    row["ok_points"] if row["ok_points"] is not None else "",
                    (
                        row["failed_points"]
                        if row["failed_points"] is not None
                        else ""
                    ),
                    (row["error"] or "")[:50],
                ]
                for row in rows
            ]
            print(
                render_table(
                    ["id", "name", "state", "ok", "failed", "error"],
                    table,
                    title=f"store {store.directory}",
                )
            )
            print(
                f"[queue] pending={summary['pending']} "
                f"running={summary['running']} "
                f"done={summary['done']} failed={summary['failed']} "
                f"stale_leases={summary['stale_leases']}"
            )
            return 0
        if args.store_command == "results":
            metrics = None
            if args.metrics:
                metrics = [
                    metric.strip()
                    for metric in args.metrics.split(",")
                    if metric.strip()
                ]
            headers, rows = store.results_rows(args.id, metrics=metrics)
            if args.json_output:
                print(
                    json.dumps(
                        {"headers": headers, "rows": rows}, sort_keys=True
                    )
                )
                return 0
            from repro.metrics.report import render_table

            print(
                render_table(
                    headers,
                    rows,
                    title=f"submission {args.id}",
                )
            )
            return 0
        if args.store_command == "gc":
            report = store.gc(
                keep_days=args.keep_days, dry_run=args.dry_run
            )
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0
        if args.store_command == "verify":
            report = store.verify()
            print(json.dumps(report, indent=2, sort_keys=True))
            return 0 if report["ok"] else 1
    except (StoreError, ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        store.close()
    parser.error(f"unknown store subcommand {args.store_command!r}")


def _store_submit(parser, args, store) -> int:
    """Record (and by default execute) a scenario-sweep submission."""
    from repro.errors import ReproError
    from repro.experiments.sweep import runner_name
    from repro.scenarios.sweeps import run_scenario_point, scenario_sweep_spec

    axes = {}
    for item in args.axis:
        name, _, raw = item.partition("=")
        if not name or not raw:
            parser.error(f"--axis must look like name=v1,v2,... (got {item!r})")
        values = []
        for token in raw.split(","):
            token = token.strip()
            try:
                values.append(json.loads(token))
            except ValueError:
                values.append(token)
        axes[name] = values
    if not axes:
        parser.error("submit needs at least one --axis")
    try:
        spec = scenario_sweep_spec(
            args.preset,
            axes,
            base_seed=args.seed,
            replications=args.replications,
            run_horizon=args.horizon,
        )
    except (ReproError, ValueError, TypeError) as exc:
        parser.error(str(exc))
    submission_id = store.submit(
        args.name or args.preset, spec, runner_name(run_scenario_point)
    )
    print(
        f"[store] submission {submission_id}: {spec.experiment_id} "
        f"({len(spec.points())} points)"
    )
    if args.defer:
        return 0
    workers = resolve_workers(args.workers)
    record = _store_execute(parser, store, submission_id, workers)
    return 0 if record["state"] == "done" else 1


def _store_execute(parser, store, submission_id: int, workers: int):
    """Drive one submission through ``run_submission`` and report."""
    from repro.errors import ReproError, StoreError
    from repro.scenarios.sweeps import run_scenario_point

    try:
        store.run_submission(
            submission_id, run_scenario_point, workers=workers
        )
    except (StoreError, ReproError) as exc:
        parser.error(str(exc))
    record = store.submission(submission_id)
    print(
        f"[store] submission {submission_id}: {record['state']} "
        f"(ok={record['ok_points']}, failed={record['failed_points']})"
    )
    return record


def _serve_command(parser, args) -> int:
    """The ``serve`` verb: HTTP API + worker pool until SIGTERM."""
    import signal
    import threading

    from repro.errors import ReproError, StoreError
    from repro.service import WorkerSupervisor, make_server
    from repro.service.workers import (
        DEFAULT_POLL_SECONDS,
    )
    from repro.store.api import DEFAULT_LEASE_SECONDS

    if args.workers < 0:
        parser.error("--workers must be >= 0")
    lease_seconds = (
        args.lease_seconds
        if args.lease_seconds is not None
        else DEFAULT_LEASE_SECONDS
    )
    poll_seconds = (
        args.poll_interval
        if args.poll_interval is not None
        else DEFAULT_POLL_SECONDS
    )
    supervisor = None
    if args.workers > 0:
        supervisor = WorkerSupervisor(
            args.store,
            args.workers,
            lease_seconds=lease_seconds,
            poll_seconds=poll_seconds,
        )
    try:
        server = make_server(
            args.store,
            host=args.host,
            port=args.port,
            supervisor=supervisor,
        )
    except (StoreError, ReproError, OSError) as exc:
        parser.error(str(exc))
    host, port = server.server_address[:2]
    if supervisor is not None:
        supervisor.start()
    # Flushed before serve_forever blocks, so wrappers (tests, shell
    # scripts) can scrape the bound port as soon as it is ready.
    print(f"[serve] listening on http://{host}:{port}", flush=True)

    def _begin_drain(signum, frame):
        server.service.draining = True
        # shutdown() must come from outside serve_forever's thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _begin_drain)
    signal.signal(signal.SIGINT, _begin_drain)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        if supervisor is not None:
            supervisor.drain(timeout=args.drain_timeout)
        server.server_close()
        server.service.close()
    print("[serve] drained", flush=True)
    return 0


def _worker_command(parser, args) -> int:
    """The ``worker`` verb: one queue-draining worker until SIGTERM."""
    import signal

    from repro.errors import ReproError, StoreError
    from repro.service import Worker

    if args.max_submissions is not None and args.max_submissions < 1:
        parser.error("--max-submissions must be >= 1")
    kwargs = {}
    if args.lease_seconds is not None:
        kwargs["lease_seconds"] = args.lease_seconds
    if args.poll_interval is not None:
        kwargs["poll_seconds"] = args.poll_interval
    try:
        if args.point_workers is not None:
            kwargs["point_workers"] = resolve_workers(args.point_workers)
        worker = Worker(args.store, worker_id=args.worker_id, **kwargs)
    except (StoreError, ReproError) as exc:
        parser.error(str(exc))

    def _request_stop(signum, frame):
        worker.stop()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    print(f"[worker] {worker.worker_id} draining {args.store}", flush=True)
    try:
        with worker:
            executed = worker.run(
                max_submissions=args.max_submissions,
                until_drained=args.until_drained,
                timeout=args.timeout,
            )
    except (StoreError, ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"[worker] {worker.worker_id} exiting ({executed} executed)")
    return 0


def _device_table(spec) -> str:
    """The per-device table a scenario's fleet builds, as text."""
    from repro.metrics.report import render_table
    from repro.scenarios import fleet_device_rows

    rows = [
        [row["name"], row["technology"], row["qubits"], row["vqpus"]]
        for row in fleet_device_rows(spec.fleet)
    ]
    return render_table(
        ["device", "technology", "qubits", "vqpus"],
        rows,
        title=(
            f"fleet: {len(rows)} device(s), "
            f"routing={spec.fleet.routing}"
        ),
    )


def _fleet_command(parser, args) -> int:
    """The ``fleet`` verb: policies / devices."""
    from repro.errors import ReproError
    from repro.quantum.fleet import POLICY_DESCRIPTIONS, ROUTING_POLICIES
    from repro.scenarios import get_scenario

    if args.fleet_command == "policies":
        for policy in ROUTING_POLICIES:
            print(f"{policy}: {POLICY_DESCRIPTIONS[policy]}")
        return 0
    if args.fleet_command == "devices":
        try:
            spec = get_scenario(args.name)
        except ReproError as exc:
            parser.error(str(exc))
        print(_device_table(spec))
        return 0
    parser.error("fleet needs a subcommand: policies or devices")


def _trace_command(parser, args) -> int:
    """The ``trace`` verb: info / replay."""
    import dataclasses

    from repro.errors import ReproError
    from repro.scenarios import (
        TraceSpec,
        get_scenario,
        resolve_trace_path,
        run_scenario,
    )
    from repro.workloads.arrivals import TraceArrivals
    from repro.workloads.swf import read_swf

    if args.trace_command == "info":
        if args.nodes < 1:
            parser.error("--nodes must be >= 1")
        try:
            path = resolve_trace_path(args.path)
            jobs = read_swf(str(path))
        except ReproError as exc:
            parser.error(str(exc))
        if not jobs:
            print(json.dumps({"path": str(path), "jobs": 0}, indent=2))
            return 0
        # The recorded submit times as an arrival process (sorted and
        # validated); the burstiness stats scan the whole trace.
        arrivals = TraceArrivals(job.submit_time for job in jobs)
        submits = arrivals.submit_times
        span = max(submits) - min(submits)
        busiest_hour = 0
        window_start = 0
        for index, time_s in enumerate(submits):
            while time_s - submits[window_start] > 3600.0:
                window_start += 1
            busiest_hour = max(busiest_hour, index - window_start + 1)
        work = sum(job.nodes * job.runtime for job in jobs)
        from repro.metrics.stats import mean

        summary = {
            "path": str(path),
            "jobs": len(jobs),
            "span_s": span,
            "mean_interarrival_s": span / max(len(jobs) - 1, 1),
            "busiest_hour_jobs": busiest_hour,
            "nodes_min": min(job.nodes for job in jobs),
            "nodes_max": max(job.nodes for job in jobs),
            "nodes_mean": mean([job.nodes for job in jobs]),
            "runtime_min_s": min(job.runtime for job in jobs),
            "runtime_max_s": max(job.runtime for job in jobs),
            "runtime_mean_s": mean([job.runtime for job in jobs]),
            "node_seconds": work,
            "users": len({job.user for job in jobs}),
            f"offered_load_{args.nodes}_nodes": (
                work / (span * args.nodes) if span > 0 else 0.0
            ),
        }
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    if args.trace_command == "replay":
        try:
            spec = get_scenario(args.preset)
            # Start from the preset's own trace (mapping rules like
            # partition/max_nodes/oversize carry over), point it at
            # the given file, and apply only the flags actually set.
            base = spec.workload.trace or TraceSpec(path=args.path)
            updates = {"path": args.path, "jobs": ()}
            for attribute, value in (
                ("time_scale", args.time_scale),
                ("runtime_scale", args.runtime_scale),
                ("qpu_fraction", args.qpu_fraction),
                ("limit", args.limit),
                ("loop", args.loop),
                ("jitter", args.jitter),
            ):
                if value is not None:
                    updates[attribute] = value
            trace = dataclasses.replace(base, **updates)
            spec = dataclasses.replace(
                spec,
                workload=dataclasses.replace(spec.workload, trace=trace),
            ).validate()
            start = time.perf_counter()
            metrics = run_scenario(
                spec, seed=args.seed, horizon=args.horizon
            )
        except ReproError as exc:
            parser.error(str(exc))
        elapsed = time.perf_counter() - start
        print(json.dumps(metrics, indent=2, sort_keys=True))
        print(
            f"[trace] {args.path} via {spec.name}: "
            f"{metrics['trace_jobs']} jobs replayed, "
            f"{metrics['horizon_s']:.0f}s simulated in "
            f"{elapsed:.2f}s wall"
        )
        return 0
    parser.error("trace needs a subcommand: info or replay")


def _run_experiments(
    parser,
    args,
    registry,
    unknown_message,
    registry_label,
    run_kwargs=None,
    footer=None,
) -> int:
    """Shared execute/render loop behind the ``run`` and ``sweep`` verbs."""
    requested = args.experiments
    if any(token.lower() == "all" for token in requested):
        requested = sorted(registry)
    unknown = [token for token in requested if token not in registry]
    if unknown:
        parser.error(
            f"{unknown_message}: {unknown}; "
            f"{registry_label}: {sorted(registry)}"
        )
    from repro.errors import ReproError

    any_failed = False
    for experiment_id in requested:
        start = time.perf_counter()
        try:
            result = registry[experiment_id](
                seed=args.seed, **(run_kwargs or {})
            )
        except ReproError as exc:
            # e.g. a sweep point exhausting its FailurePolicy under
            # on_error="raise": report, keep a non-zero exit, move on.
            print(
                f"error: {experiment_id}: {exc} "
                "(use --on-error collect for a failure summary "
                "instead of an abort)",
                file=sys.stderr,
            )
            any_failed = True
            continue
        elapsed = time.perf_counter() - start
        output = (
            result.render_markdown() if args.markdown else result.render()
        )
        print(output)
        if footer is not None:
            print(footer(experiment_id, elapsed))
        print()
        if not result.all_passed:
            any_failed = True
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
