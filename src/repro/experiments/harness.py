"""Experiment harness: uniform result objects and claim checking.

Each experiment module exposes ``run(seed=0, **params) -> ExperimentResult``.
An :class:`ExperimentResult` carries the tables/series that stand in
for the paper's figures, plus explicit :class:`ClaimCheck` entries —
the paper's qualitative statements turned into falsifiable assertions
that the test suite and benchmarks verify on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.metrics.report import render_markdown_table, render_table


@dataclass
class ClaimCheck:
    """One falsifiable statement derived from the paper."""

    claim: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{status}] {self.claim}{suffix}"


@dataclass
class ResultTable:
    """A titled table of experiment output."""

    title: str
    headers: List[str]
    rows: List[List[Any]]

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)

    def render_markdown(self) -> str:
        return f"**{self.title}**\n\n" + render_markdown_table(
            self.headers, self.rows
        )


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    description: str
    tables: List[ResultTable] = field(default_factory=list)
    checks: List[ClaimCheck] = field(default_factory=list)
    parameters: Dict[str, Any] = field(default_factory=dict)

    def add_table(
        self,
        title: str,
        headers: Sequence[str],
        rows: Sequence[Sequence[Any]],
    ) -> ResultTable:
        table = ResultTable(title, list(headers), [list(r) for r in rows])
        self.tables.append(table)
        return table

    def check(self, claim: str, passed: bool, detail: str = "") -> ClaimCheck:
        entry = ClaimCheck(claim, bool(passed), detail)
        self.checks.append(entry)
        return entry

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> List[ClaimCheck]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        parts = [
            f"=== {self.experiment_id}: {self.title} ===",
            self.description.strip(),
        ]
        if self.parameters:
            params = ", ".join(
                f"{key}={value}" for key, value in self.parameters.items()
            )
            parts.append(f"parameters: {params}")
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        if self.checks:
            parts.append("")
            parts.append("Claim checks:")
            parts.extend(f"  {check}" for check in self.checks)
        return "\n".join(parts)

    def render_markdown(self) -> str:
        parts = [
            f"### {self.experiment_id} — {self.title}",
            "",
            self.description.strip(),
            "",
        ]
        if self.parameters:
            params = ", ".join(
                f"`{key}={value}`" for key, value in self.parameters.items()
            )
            parts.append(f"Parameters: {params}")
            parts.append("")
        for table in self.tables:
            parts.append(table.render_markdown())
            parts.append("")
        if self.checks:
            parts.append("Claim checks:")
            parts.extend(f"- {check}" for check in self.checks)
            parts.append("")
        return "\n".join(parts)


def attach_sweep_failures(result: ExperimentResult, sweep) -> bool:
    """Fold a sweep's failed points into an experiment result.

    When the sweep ran with ``on_error="collect"`` and some points
    failed, the experiment's grid is incomplete: claim checks cannot be
    evaluated.  This attaches a failure-summary table plus a failing
    :class:`ClaimCheck` (so ``all_passed`` is ``False`` and the CLI
    exits non-zero) and returns ``True``; with no failures it returns
    ``False`` and the experiment proceeds normally.
    """
    from repro.experiments.resilience import FAILURE_HEADERS, failure_rows

    failures = sweep.failures()
    if not failures:
        return False
    result.add_table(
        f"sweep failures ({len(failures)} of {len(sweep.points)} points)",
        list(FAILURE_HEADERS),
        failure_rows(failures),
    )
    result.check(
        "all sweep points completed",
        False,
        detail=(
            f"{len(failures)} of {len(sweep.points)} point(s) failed; "
            "claim checks skipped on the incomplete grid"
        ),
    )
    return True


def assert_all_claims(result: ExperimentResult) -> None:
    """Raise ``AssertionError`` listing any failed claims (test helper)."""
    failed = result.failed_checks()
    if failed:
        details = "\n".join(str(check) for check in failed)
        raise AssertionError(
            f"{result.experiment_id}: {len(failed)} claim(s) failed:\n"
            f"{details}"
        )
