"""Experiment registry: one regenerable experiment per paper artefact."""

from typing import Callable, Dict

from repro.experiments import (
    access_model,
    crossover,
    fig1_timescales,
    fig2_workflow,
    fig3_vqpu,
    fig4_malleability,
    listing1_coschedule,
)
from repro.experiments.harness import (
    ClaimCheck,
    ExperimentResult,
    ResultTable,
    assert_all_claims,
)

#: Experiment id -> run callable (keyword args: seed, ...).
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": fig1_timescales.run,
    "E2": listing1_coschedule.run,
    "E3": fig2_workflow.run,
    "E4": fig3_vqpu.run,
    "E5": fig4_malleability.run,
    "E6": crossover.run,
    "E7": access_model.run,
}

__all__ = [
    "ClaimCheck",
    "EXPERIMENTS",
    "ExperimentResult",
    "ResultTable",
    "assert_all_claims",
]
