"""Experiment registry: one regenerable experiment per paper artefact."""

from typing import Callable, Dict

from repro.experiments import (
    access_model,
    crossover,
    fig1_timescales,
    fig2_workflow,
    fig3_vqpu,
    fig4_malleability,
    listing1_coschedule,
)
from repro.experiments.harness import (
    ClaimCheck,
    ExperimentResult,
    ResultTable,
    assert_all_claims,
)
from repro.experiments.resilience import (
    ChaosSpec,
    FailurePolicy,
    PointOutcome,
    RunJournal,
)
from repro.experiments.sweep import (
    SweepCache,
    SweepPoint,
    SweepResult,
    SweepSpec,
    canonical_bytes,
    derive_point_seed,
    run_sweep,
    sweep_values,
)

#: Experiment id -> run callable (keyword args: seed, ...).
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": fig1_timescales.run,
    "E2": listing1_coschedule.run,
    "E3": fig2_workflow.run,
    "E4": fig3_vqpu.run,
    "E5": fig4_malleability.run,
    "E6": crossover.run,
    "E7": access_model.run,
}

#: The subset whose grids execute through the sweep engine (their
#: ``run`` accepts ``workers=``/``cache_dir=``).
SWEEP_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E4": fig3_vqpu.run,
    "E5": fig4_malleability.run,
    "E6": crossover.run,
    "E7": access_model.run,
}

__all__ = [
    "ChaosSpec",
    "ClaimCheck",
    "EXPERIMENTS",
    "ExperimentResult",
    "FailurePolicy",
    "PointOutcome",
    "ResultTable",
    "RunJournal",
    "SWEEP_EXPERIMENTS",
    "SweepCache",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "assert_all_claims",
    "canonical_bytes",
    "derive_point_seed",
    "run_sweep",
    "sweep_values",
]
