"""E3 — Fig 2: loosely-coupled workflows vs exclusive co-scheduling.

The workflow strategy allocates resources per step, "as execution
requires the resources", so held-but-idle time disappears — but every
step re-enters the queue.  This experiment regenerates both sides of
that trade:

1. *Efficiency*: per-application held-vs-used efficiency under
   workflow execution approaches 1 on both partitions, while
   co-scheduling wastes the QPU side (superconducting case).
2. *Queue overhead*: with background load on the classical partition,
   workflow turnaround inflates by one queue wait per step; the
   overhead dominates exactly when steps are short relative to queue
   waits ("the queuing time ... may introduce a significant overhead
   when its duration outweighs the length of the computation").
"""

from __future__ import annotations

from repro.experiments.common import (
    campaign_scenario,
    run_campaign,
    standard_hybrid_app,
)
from repro.experiments.harness import ExperimentResult
from repro.metrics.stats import mean
from repro.quantum.technology import SUPERCONDUCTING
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.workflow import WorkflowStrategy


def run(
    seed: int = 0,
    iterations: int = 5,
    background_rho: float = 0.85,
    horizon: float = 6 * 3600.0,
    warmup: float = 3600.0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E3",
        title="Loosely-coupled workflow execution (Fig 2)",
        description=(
            "The same hybrid application run as one exclusive hetjob vs "
            "as a workflow of independently scheduled steps, idle and "
            "under background load.  Workflows hold only what they use "
            "but pay one queue wait per step."
        ),
        parameters={
            "iterations": iterations,
            "background_rho": background_rho,
            "seed": seed,
        },
    )

    technology = SUPERCONDUCTING
    saturated_rho = max(1.15, background_rho + 0.3)
    rows = []
    metrics = {}
    for label, rho, phase_s in (
        ("idle, 300 s phases", 0.0, 300.0),
        ("loaded, 300 s phases", background_rho, 300.0),
        ("loaded, 30 s phases", background_rho, 30.0),
        ("saturated, 300 s phases", saturated_rho, 300.0),
        ("saturated, 30 s phases", saturated_rho, 30.0),
    ):
        app = standard_hybrid_app(
            technology,
            iterations=iterations,
            classical_phase_seconds=phase_s,
            classical_nodes=8,
        )
        for strategy in (CoScheduleStrategy(), WorkflowStrategy()):
            # Under load, submit after a warmup so the app meets a
            # realistically busy queue rather than an empty cluster.
            submit_at = warmup if rho > 0 else 0.0
            scenario = campaign_scenario(
                technology,
                classical_nodes=32,
                background_rho=rho,
                background_horizon=horizon,
                seed=seed,
                name=f"fig2-{label.replace(' ', '-').replace(',', '')}",
            )
            records, env = run_campaign(
                strategy,
                [app],
                scenario=scenario,
                submit_times=[submit_at],
            )
            record = records[0]
            ideal = app.ideal_makespan(technology)
            overhead = (record.turnaround or 0.0) - ideal
            metrics[(label, strategy.name)] = {
                "record": record,
                "overhead": overhead,
                "ideal": ideal,
            }
            rows.append(
                [
                    label,
                    strategy.name,
                    round(record.turnaround or 0.0, 1),
                    round(ideal, 1),
                    round(overhead, 1),
                    len(record.queue_waits),
                    round(record.total_queue_wait, 1),
                    round(record.classical_efficiency, 3),
                    round(record.qpu_efficiency, 3),
                ]
            )
    result.add_table(
        "Co-scheduling vs workflow (superconducting QPU)",
        [
            "scenario",
            "strategy",
            "turnaround_s",
            "ideal_s",
            "overhead_s",
            "queued pieces",
            "queue_wait_s",
            "classical_eff",
            "qpu_eff",
        ],
        rows,
    )

    idle_co = metrics[("idle, 300 s phases", "coschedule")]["record"]
    idle_wf = metrics[("idle, 300 s phases", "workflow")]["record"]
    result.check(
        "workflow holds the QPU only while using it "
        "(qpu efficiency > 0.9 vs < 0.2 under co-scheduling)",
        idle_wf.qpu_efficiency > 0.9 and idle_co.qpu_efficiency < 0.2,
        detail=(
            f"workflow {idle_wf.qpu_efficiency:.3f}, "
            f"coschedule {idle_co.qpu_efficiency:.3f}"
        ),
    )
    loaded_wf = metrics[("loaded, 300 s phases", "workflow")]["record"]
    result.check(
        "under load the workflow pays one queue wait per step "
        "(every step queued)",
        len(loaded_wf.queue_waits) == 2 * iterations,
        detail=f"{len(loaded_wf.queue_waits)} queued pieces",
    )
    sat_wf = metrics[("saturated, 300 s phases", "workflow")]["record"]
    sat_co = metrics[("saturated, 300 s phases", "coschedule")]["record"]
    result.check(
        "repeated queueing: under saturation the workflow's total queue "
        "wait exceeds the co-scheduled job's single wait",
        sat_wf.total_queue_wait > sat_co.total_queue_wait,
        detail=(
            f"workflow {sat_wf.total_queue_wait:.0f}s vs "
            f"coschedule {sat_co.total_queue_wait:.0f}s"
        ),
    )
    step_wait = mean(sat_wf.queue_waits)
    result.check(
        "queue time is significant relative to the computation: mean "
        "per-step wait at saturation is at least 30% of the 300 s step "
        "duration",
        step_wait > 0.3 * 300.0,
        detail=f"mean step wait {step_wait:.0f}s vs 300 s steps",
    )
    backfilled = metrics[("loaded, 30 s phases", "workflow")]["record"]
    result.check(
        "below saturation, backfill shelters short steps (short-step "
        "queue waits stay below the long-step ones)",
        mean(backfilled.queue_waits)
        <= mean(
            metrics[("loaded, 300 s phases", "workflow")][
                "record"
            ].queue_waits
        ),
    )

    # -- quantum-side contention: tiny kernels pay disproportionate
    #    per-step queueing once several workflow tenants share the QPU —
    #    the paper's motivation for VQPUs.
    tenants = 10
    apps = [
        standard_hybrid_app(
            technology,
            iterations=iterations,
            classical_phase_seconds=10.0,
            classical_nodes=2,
            shots=5000,
            name=f"tenant-{index}",
        )
        for index in range(tenants)
    ]
    records, env = run_campaign(
        WorkflowStrategy(),
        apps,
        scenario=campaign_scenario(
            technology,
            classical_nodes=32,
            seed=seed,
            name="fig2-quantum-contention",
        ),
    )
    quantum_waits = [
        wait for record in records for wait in record.quantum_access_waits
    ]
    kernel_exec = mean(
        [
            record.qpu_busy_seconds / max(len(record.quantum_access_waits), 1)
            for record in records
        ]
    )
    # Per-step *job* queue waits on the quantum partition: each workflow
    # quantum step is its own job contending for the single qpu gres.
    per_step_waits = [
        wait
        for record in records
        for wait in record.queue_waits
    ]
    contended_wait = mean(per_step_waits)
    result.add_table(
        f"Quantum-step queueing under contention ({tenants} workflow "
        "tenants, 1 superconducting QPU)",
        [
            "tenants",
            "mean kernel exec_s",
            "mean step queue wait_s",
            "wait / exec ratio",
        ],
        [
            [
                tenants,
                round(kernel_exec, 2),
                round(contended_wait, 2),
                round(contended_wait / max(kernel_exec, 1e-9), 1),
            ]
        ],
    )
    result.check(
        "with several tenants, the per-step queue wait dwarfs the "
        "seconds-scale kernel itself (wait/exec > 3)",
        contended_wait / max(kernel_exec, 1e-9) > 3.0,
        detail=(
            f"wait {contended_wait:.1f}s vs exec {kernel_exec:.1f}s"
        ),
    )
    wf_waits = mean(loaded_wf.queue_waits)
    result.check(
        "workflow queue waits are non-trivial under load",
        wf_waits > 0.0,
        detail=f"mean step wait {wf_waits:.1f}s",
    )
    return result
