"""E2 — Listing 1: the co-scheduling waste, in both directions.

Reproduces the paper's Section 3 example quantitatively: a hybrid job
co-allocating 10 classical nodes and 1 QPU for one hour, exclusively.

- On a *superconducting* QPU (quantum tasks of seconds) the QPU sits
  idle during the classical phases: its utilisation inside the
  allocation collapses to a few percent.
- On a *neutral-atom* QPU (tasks beyond 30 min including geometry
  calibration) the classical nodes idle while waiting for the quantum
  step.

"Simple co-scheduling with exclusive QPU access is inadequate for
achieving optimal resource utilization."
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.harness import ExperimentResult
from repro.quantum.circuit import Circuit
from repro.quantum.technology import TECHNOLOGIES, QPUTechnology
from repro.scenarios import FleetSpec, ScenarioSpec, TopologySpec, build
from repro.strategies.application import HybridApplication, vqe_like
from repro.strategies.base import RunRecord
from repro.strategies.coschedule import CoScheduleStrategy

#: Listing 1 parameters.
CLASSICAL_NODES = 10
WALLTIME = 3600.0


def listing1_scenario(
    technology: QPUTechnology, seed: int = 0
) -> ScenarioSpec:
    """Listing 1's facility: 10 classical nodes + one exclusive QPU."""
    return ScenarioSpec(
        name=f"listing1-{technology.name}",
        description=(
            "The Section 3 co-scheduling example: a hetjob holding "
            "10 classical nodes and 1 QPU for a one-hour walltime."
        ),
        topology=TopologySpec(classical_nodes=CLASSICAL_NODES),
        fleet=FleetSpec(technology=technology.name),
        seed=seed,
    )


def _listing1_app(technology: QPUTechnology) -> HybridApplication:
    """A hybrid app sized to (almost) fill the one-hour allocation.

    Iterations of ~50 s classical optimisation followed by a 1000-shot
    kernel, with the iteration count chosen so the ideal makespan stays
    inside the walltime on the given technology.
    """
    circuit = Circuit(
        num_qubits=min(20, technology.num_qubits),
        depth=100,
        geometry="fixed",
        name=f"listing1-{technology.name}",
    )
    classical_work = 50.0 * CLASSICAL_NODES  # ~50 s at 10 nodes
    probe = vqe_like(
        iterations=1,
        classical_work=classical_work,
        circuit=circuit,
        shots=1000,
        classical_nodes=CLASSICAL_NODES,
    )
    per_iteration = probe.ideal_makespan(technology)
    calibration = probe.calibration_overhead(technology)
    budget = WALLTIME * 0.9 - calibration
    iterations = max(int(budget // max(per_iteration - calibration, 1.0)), 1)
    return vqe_like(
        iterations=iterations,
        classical_work=classical_work,
        circuit=circuit,
        shots=1000,
        classical_nodes=CLASSICAL_NODES,
        name=f"listing1-{technology.name}",
    )


def _run_one(technology: QPUTechnology, seed: int) -> tuple[RunRecord, Dict]:
    env = build(listing1_scenario(technology, seed=seed))
    app = _listing1_app(technology)
    strategy = CoScheduleStrategy(
        walltime=WALLTIME, hold_full_walltime=True
    )
    run = strategy.launch(env, app)
    env.kernel.run(until=run.done)
    record = run.record
    # Classical-side utilisation inside the allocation: useful
    # node-seconds over held node-seconds; quantum-side likewise.
    extras = {
        "iterations": app.quantum_phase_count,
        "qpu_busy_fraction": record.qpu_efficiency,
        "classical_busy_fraction": record.classical_efficiency,
    }
    return record, extras


def run(seed: int = 0) -> ExperimentResult:
    """Regenerate the Listing 1 under-utilisation result."""
    result = ExperimentResult(
        experiment_id="E2",
        title="Exclusive co-scheduling waste (Listing 1)",
        description=(
            "One hetjob holds 10 classical nodes + 1 QPU for a one-hour "
            "walltime and runs a variational loop inside it.  Utilisation "
            "of each side of the allocation shows the direction of the "
            "waste flip with QPU technology."
        ),
        parameters={
            "classical_nodes": CLASSICAL_NODES,
            "walltime_s": WALLTIME,
            "seed": seed,
        },
    )
    rows = []
    fractions: Dict[str, Dict[str, float]] = {}
    for name in ("superconducting", "trapped_ion", "neutral_atom"):
        technology = TECHNOLOGIES[name]
        record, extras = _run_one(technology, seed)
        fractions[name] = extras
        rows.append(
            [
                name,
                extras["iterations"],
                round(record.qpu_busy_seconds, 1),
                round(record.qpu_held_seconds, 1),
                round(extras["qpu_busy_fraction"], 4),
                round(extras["classical_busy_fraction"], 4),
                record.details.get("final_state"),
            ]
        )
    result.add_table(
        "Utilisation inside the exclusive 1 h co-allocation",
        [
            "technology",
            "quantum tasks",
            "qpu_busy_s",
            "qpu_held_s",
            "qpu_utilisation",
            "classical_utilisation",
            "state",
        ],
        rows,
    )

    sc = fractions["superconducting"]
    na = fractions["neutral_atom"]
    result.check(
        "superconducting: QPU exclusively held but utilised below 15% "
        "(heavy QPU under-utilisation)",
        sc["qpu_busy_fraction"] < 0.15,
        detail=f"QPU busy fraction {sc['qpu_busy_fraction']:.3f}",
    )
    result.check(
        "superconducting: classical side is the busy one (> 60%)",
        sc["classical_busy_fraction"] > 0.60,
        detail=f"classical fraction {sc['classical_busy_fraction']:.3f}",
    )
    result.check(
        "neutral atom: classical nodes idle waiting for the quantum job "
        "(< 20% utilisation)",
        na["classical_busy_fraction"] < 0.20,
        detail=f"classical fraction {na['classical_busy_fraction']:.3f}",
    )
    result.check(
        "the direction of the waste flips between technologies",
        sc["qpu_busy_fraction"] < sc["classical_busy_fraction"]
        and na["qpu_busy_fraction"] > na["classical_busy_fraction"],
    )
    return result
