"""Parallel sweep engine: fan experiment campaigns across processes.

Every paper artefact is a grid of independent (strategy x load x seed)
simulation campaigns.  This module turns those grids into declarative
:class:`SweepSpec` objects and executes them through one engine:

- **Deterministic seed derivation** — each grid point owns a seed
  derived purely from ``(base_seed, experiment_id, params,
  replication)`` via :func:`repro.sim.rng.derive_seed`, so the point's
  result is a function of its coordinates alone, never of which worker
  ran it or in what order.
- **Process-pool execution** — :func:`run_sweep` fans points across
  ``workers`` processes (serial in-process fallback when ``workers=1``)
  and always returns results in *point order*; streaming consumers see
  the same order regardless of completion order.
- **Opt-in on-disk cache** — results are memoised under a key of
  (experiment id, runner, params, seed, code version), so re-running a
  benchmark suite only simulates new points.
- **Fault tolerance** — a :class:`~repro.experiments.resilience.
  FailurePolicy` gives each point a retry budget, bounded backoff, a
  per-point wall-clock timeout and graceful degradation
  (``on_error="collect"``); worker crashes are detected, the pool is
  rebuilt and orphaned points resubmitted; a durable
  :class:`~repro.experiments.resilience.RunJournal` lets a SIGKILL'd
  campaign resume skipping completed *and* permanently-failed points.

Results are *byte-identical* between serial and parallel execution and
between cold and warm cache (see :func:`canonical_bytes`, which the
determinism suite uses to assert exactly that).  Retries never perturb
per-point seed derivation — a retried attempt re-runs the same
``(params, seed)`` — so the guarantee extends to every point that
completes under any failure policy or chaos injection.
"""

from __future__ import annotations

import dataclasses
import json
import hashlib
import os
import pickle
import subprocess
import tempfile
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import multiprocessing

from repro._version import __version__
from repro.errors import ConfigurationError, PointFailedError, SweepError
from repro.experiments.resilience import (
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMED_OUT,
    ChaosSpec,
    FailurePolicy,
    PointOutcome,
    RunJournal,
)
from repro.metrics.stats import RunningStats
from repro.sim.rng import derive_seed

#: Environment knobs: default worker count and cache directory for
#: sweeps that do not specify them explicitly.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE_DIR"
#: Force (1) or forbid (0) store-backed caches for directories holding
#: a ``store.sqlite3``; unset means auto-detect.
STORE_ENV_VAR = "REPRO_SWEEP_STORE"
#: Override the code-version component of cache keys (e.g. a VCS hash).
CODE_VERSION_ENV_VAR = "REPRO_SWEEP_CODE_VERSION"

#: A point runner: ``runner(params, seed) -> picklable result``.  Must
#: be a module-level callable so worker processes can import it.
PointRunner = Callable[[Dict[str, Any], int], Any]


def canonical_params(params: Mapping[str, Any]) -> str:
    """Stable textual encoding of a parameter mapping.

    Parameters must be JSON-representable (scalars, lists, nested
    mappings) so that the encoding — and everything derived from it:
    seeds, cache keys — is reproducible across processes and runs.
    Keys are sorted, so declaration order never leaks into identities:

    >>> canonical_params({"b": 2, "a": 1})
    '{"a":1,"b":2}'
    >>> canonical_params({"a": 1, "b": 2})
    '{"a":1,"b":2}'
    """
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"sweep params must be JSON-representable: {params!r}"
        ) from exc


def derive_point_seed(
    base_seed: int,
    experiment_id: str,
    params: Mapping[str, Any],
    replication: int = 0,
) -> int:
    """The seed owned by one grid point (pure function of coordinates).

    Any process, any year, any worker count derives the same seed for
    the same coordinates — that is what makes sweep results a function
    of the grid alone:

    >>> derive_point_seed(0, "demo", {"x": 1})
    15097343031012186446
    >>> derive_point_seed(0, "demo", {"x": 1}, replication=1) \\
    ...     != derive_point_seed(0, "demo", {"x": 1})
    True
    """
    key = f"sweep:{experiment_id}:{canonical_params(params)}:rep{replication}"
    return derive_seed(base_seed, key)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: parameters, replication index and derived seed."""

    index: int
    params: Dict[str, Any]
    replication: int
    seed: int

    def key(self) -> str:
        """Canonical identity of the point within its spec."""
        return f"{canonical_params(self.params)}:rep{self.replication}"


@dataclass
class SweepSpec:
    """A declarative parameter grid with replications.

    Parameters
    ----------
    experiment_id:
        Stable name scoping seeds and cache entries.
    axes:
        Ordered mapping of axis name to its values; points enumerate the
        cartesian product in row-major order (last axis fastest).
    explicit:
        Alternative to ``axes`` for non-rectangular grids: an explicit
        sequence of parameter mappings, enumerated in the given order.
    constants:
        Parameters merged into every point (part of its identity, so
        they participate in derived seeds and cache keys).
    replications:
        Number of seed replications of the whole grid (outermost loop).
    base_seed:
        Root seed the per-point seeds are derived from.
    seed_mode:
        ``"derived"`` (default) gives every (point, replication) its own
        seed via :func:`derive_point_seed` — statistically independent
        points.  ``"shared"`` gives every point of one replication the
        *same* seed (replication 0 uses ``base_seed`` itself) — the
        matched-universe mode comparison experiments need, where each
        strategy must face an identical random environment.

    Points enumerate the cartesian product in row-major order (last
    axis fastest), replications outermost:

    >>> spec = SweepSpec("demo", axes={"a": [1, 2], "b": [10, 20]})
    >>> [p.params for p in spec.points()]
    [{'a': 1, 'b': 10}, {'a': 1, 'b': 20}, {'a': 2, 'b': 10}, {'a': 2, 'b': 20}]
    >>> len(spec)
    4
    """

    experiment_id: str
    axes: Optional[Mapping[str, Sequence[Any]]] = None
    explicit: Optional[Sequence[Mapping[str, Any]]] = None
    constants: Dict[str, Any] = field(default_factory=dict)
    replications: int = 1
    base_seed: int = 0
    seed_mode: str = "derived"

    def __post_init__(self) -> None:
        if (self.axes is None) == (self.explicit is None):
            raise ConfigurationError(
                "a SweepSpec needs exactly one of axes= or explicit="
            )
        if self.replications < 1:
            raise ConfigurationError("replications must be >= 1")
        if self.seed_mode not in ("derived", "shared"):
            raise ConfigurationError(
                f"unknown seed_mode {self.seed_mode!r} "
                "(expected 'derived' or 'shared')"
            )

    def param_sets(self) -> List[Dict[str, Any]]:
        """The grid's parameter mappings, one per point, in point order."""
        if self.explicit is not None:
            sets = [dict(entry) for entry in self.explicit]
        else:
            sets = [{}]
            for axis, values in self.axes.items():
                sets = [
                    {**params, axis: value}
                    for params in sets
                    for value in values
                ]
        for params in sets:
            clash = set(params) & set(self.constants)
            if clash:
                raise ConfigurationError(
                    f"sweep constants clash with axis params: {sorted(clash)}"
                )
            params.update(self.constants)
        return sets

    def seed_for(
        self, params: Mapping[str, Any], replication: int
    ) -> int:
        if self.seed_mode == "shared":
            if replication == 0:
                return self.base_seed
            return derive_seed(
                self.base_seed, f"sweep:{self.experiment_id}:rep{replication}"
            )
        return derive_point_seed(
            self.base_seed, self.experiment_id, params, replication
        )

    def points(self) -> List[SweepPoint]:
        """Every (params, replication) pair, in deterministic order."""
        points: List[SweepPoint] = []
        sets = self.param_sets()
        for replication in range(self.replications):
            for params in sets:
                points.append(
                    SweepPoint(
                        index=len(points),
                        # Own copy per point: replications must not
                        # share mutable params.
                        params=dict(params),
                        replication=replication,
                        seed=self.seed_for(params, replication),
                    )
                )
        return points

    def __len__(self) -> int:
        sets = len(self.explicit) if self.explicit is not None else 1
        if self.axes is not None:
            for values in self.axes.values():
                sets *= len(values)
        return sets * self.replications

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by the result store's submissions).

        >>> SweepSpec("demo", axes={"a": [1, 2]}).to_dict()
        {'experiment_id': 'demo', 'axes': {'a': [1, 2]}}
        """
        data: Dict[str, Any] = {"experiment_id": self.experiment_id}
        if self.axes is not None:
            data["axes"] = {
                axis: list(values) for axis, values in self.axes.items()
            }
        if self.explicit is not None:
            data["explicit"] = [dict(entry) for entry in self.explicit]
        if self.constants:
            data["constants"] = dict(self.constants)
        if self.replications != 1:
            data["replications"] = self.replications
        if self.base_seed != 0:
            data["base_seed"] = self.base_seed
        if self.seed_mode != "derived":
            data["seed_mode"] = self.seed_mode
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_dict` (rejects unknown fields)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ConfigurationError(
                f"unknown SweepSpec fields: {sorted(unknown)}"
            )
        return cls(**dict(data))


# -- canonical serialisation -------------------------------------------------


def _canonicalise(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable form, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _canonicalise(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(key): _canonicalise(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalise(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(repr(item) for item in value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    return repr(value)


def canonical_bytes(value: Any) -> bytes:
    """Deterministic serialisation used for byte-identity assertions.

    Floats round-trip through ``repr`` (shortest exact form), dict keys
    are sorted, dataclasses are expanded field by field — so two results
    serialise identically iff they are value-identical.

    >>> canonical_bytes({"f": 0.5, "n": [1, 2]})
    b'{"f":0.5,"n":[1,2]}'
    """
    return json.dumps(
        _canonicalise(value), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


# -- on-disk result cache ----------------------------------------------------


_CODE_VERSION: Optional[str] = None


def _git_output(args: List[str]) -> str:
    """Stdout of a git command run next to this file ('' on any failure)."""
    try:
        return subprocess.run(
            ["git", *args],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return ""


def _untracked_content_digest() -> str:
    """One line of ``path:sha256`` per untracked file, repo-wide."""
    toplevel = _git_output(["rev-parse", "--show-toplevel"]).strip()
    if not toplevel:
        return ""
    listing = _git_output(
        ["ls-files", "--others", "--exclude-standard", "--full-name", ":/"]
    )
    lines = []
    for rel in listing.splitlines():
        if not rel:
            continue
        try:
            content = (Path(toplevel) / rel).read_bytes()
            lines.append(f"{rel}:{hashlib.sha256(content).hexdigest()}")
        except OSError:
            lines.append(f"{rel}:unreadable")
    return "\n".join(lines)


def _default_code_version() -> str:
    """Cache-key component tied to the code that produced a result.

    ``$REPRO_SWEEP_CODE_VERSION`` wins; otherwise the package version
    plus the current VCS revision (when a ``git`` checkout is visible),
    so committed code changes invalidate cached points even without a
    package-version bump.  A dirty working tree appends a marker
    derived from the uncommitted diff: entries written under edits are
    keyed to *those* edits, never silently reused for the bare commit
    (or for different edits on top of it).
    """
    override = os.environ.get(CODE_VERSION_ENV_VAR)
    if override:
        return override
    global _CODE_VERSION
    if _CODE_VERSION is None:
        version = __version__
        revision = _git_output(["rev-parse", "--short", "HEAD"]).strip()
        if revision:
            version = f"{version}+g{revision}"
            status = _git_output(["status", "--porcelain"])
            if status.strip():
                # Key dirty trees by their actual content: the tracked
                # diff, the porcelain status, and the *contents* of
                # untracked files (which neither status nor diff can
                # see — a new module's edits must invalidate too).
                diff = _git_output(["diff", "HEAD"])
                untracked = _untracked_content_digest()
                digest = hashlib.sha256(
                    (status + diff + untracked).encode("utf-8", "replace")
                ).hexdigest()
                version = f"{version}.dirty.{digest[:12]}"
        _CODE_VERSION = version
    return _CODE_VERSION


class SweepCache:
    """Opt-in on-disk memo of per-point results.

    Entries are keyed by (experiment id, runner name, canonical params,
    seed, replication, code version).  The default code version binds
    the entry to both the package version and the VCS revision (see
    :func:`_default_code_version`), so rerunning after a commit only
    reuses points the commit could not have changed — nothing, unless
    you pin ``code_version`` yourself.
    """

    def __init__(
        self,
        directory: os.PathLike,
        code_version: Optional[str] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version or _default_code_version()

    @classmethod
    def from_environment(cls) -> Optional["SweepCache"]:
        """A cache rooted at ``$REPRO_SWEEP_CACHE_DIR``, if set."""
        directory = os.environ.get(CACHE_ENV_VAR)
        return cls(directory) if directory else None

    def _path(
        self, spec: SweepSpec, runner_name: str, point: SweepPoint
    ) -> Path:
        key = "\n".join(
            (
                spec.experiment_id,
                runner_name,
                self.code_version,
                canonical_params(point.params),
                str(point.seed),
                str(point.replication),
            )
        )
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{digest}.pkl"

    def load(
        self, spec: SweepSpec, runner_name: str, point: SweepPoint
    ) -> Tuple[bool, Any]:
        """``(hit, value)``; unreadable/corrupt entries count as misses.

        A corrupted or truncated entry (a worker OOM-killed mid-write,
        a torn disk) is quarantined — renamed to ``<entry>.corrupt`` —
        so it cannot shadow the slot forever, and the point
        re-simulates.
        """
        path = self._path(spec, runner_name, point)
        try:
            with open(path, "rb") as handle:
                return True, pickle.load(handle)
        except FileNotFoundError:
            return False, None
        except (
            OSError,
            pickle.PickleError,
            EOFError,
            ValueError,
            AttributeError,
            ImportError,
        ):
            # Corrupt, truncated, or referencing renamed/moved code:
            # quarantine the bad file and re-simulate.
            self._quarantine(path)
            return False, None

    @staticmethod
    def _quarantine(path: Path) -> None:
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:  # pragma: no cover - lost a rename race
            pass

    def store(
        self,
        spec: SweepSpec,
        runner_name: str,
        point: SweepPoint,
        value: Any,
    ) -> None:
        """Atomically persist one point result (write + rename)."""
        path = self._path(spec, runner_name, point)
        handle = tempfile.NamedTemporaryFile(
            dir=self.directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise


# -- execution ---------------------------------------------------------------


@dataclass
class SweepResult:
    """Everything one sweep execution produced, in point order."""

    spec: SweepSpec
    points: List[SweepPoint]
    #: Per-point runner return values, index-aligned with ``points``
    #: (``None`` for points that failed under ``on_error="collect"``).
    values: List[Any]
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    #: Per-point simulation seconds (0.0 for cache hits).
    point_seconds: List[float] = field(default_factory=list)
    #: Per-point terminal outcomes, index-aligned with ``points``.
    outcomes: List[PointOutcome] = field(default_factory=list)

    def value_map(self) -> Dict[str, Any]:
        """Point key -> value (for non-positional lookups)."""
        return {
            point.key(): value
            for point, value in zip(self.points, self.values)
        }

    @property
    def ok_count(self) -> int:
        """Points that completed with a value (executed or cached)."""
        if not self.outcomes:
            return len(self.points)
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def failure_count(self) -> int:
        return len(self.points) - self.ok_count

    def failures(self) -> List[PointOutcome]:
        """Terminal non-ok outcomes, in point order."""
        return [o for o in self.outcomes if not o.ok]

    def raise_if_failed(self) -> None:
        """Raise :class:`PointFailedError` for the first failed point."""
        for outcome in self.failures():
            raise PointFailedError(outcome.describe(), outcome=outcome)

    def timing_stats(self) -> RunningStats:
        """Summary statistics over the simulated points' wall times."""
        stats = RunningStats()
        for seconds in self.point_seconds:
            if seconds > 0.0:
                stats.add(seconds)
        return stats


def runner_name(runner: PointRunner) -> str:
    """The ``module:qualname`` identity cache/journal/store keys use.

    >>> runner_name(canonical_params)
    'repro.experiments.sweep:canonical_params'
    """
    module = getattr(runner, "__module__", "") or ""
    qualname = getattr(runner, "__qualname__", repr(runner))
    return f"{module}:{qualname}"


#: Backwards-compatible alias (pre-store callers import the old name).
_runner_name = runner_name


def _execute_point_attempt(
    runner: PointRunner,
    params: Dict[str, Any],
    seed: int,
    chaos: Optional[ChaosSpec],
    point_index: int,
    attempt: int,
) -> Tuple[Any, ...]:
    """One attempt of one point; never raises (worker-side).

    Returns ``("ok", value, elapsed)`` or ``("err", error_text,
    traceback_text, exception, elapsed)``.  Runner exceptions are
    *returned*, not raised: an exception that failed to pickle across
    the pool boundary would otherwise surface as an opaque transfer
    error.  Chaos is injected before the runner runs, so injection can
    never perturb the runner's RNG draws.
    """
    start = time.perf_counter()
    try:
        if chaos is not None:
            chaos.inject(point_index, attempt)
        value = runner(params, seed)
        return ("ok", value, time.perf_counter() - start)
    except Exception as exc:
        elapsed = time.perf_counter() - start
        return (
            "err",
            f"{type(exc).__name__}: {exc}",
            traceback_module.format_exc(),
            exc,
            elapsed,
        )


class _PointState:
    """Mutable per-point bookkeeping while a point is being executed."""

    __slots__ = (
        "point",
        "attempt_seconds",
        "failures",
        "crashes",
        "last_status",
        "last_error",
        "last_traceback",
        "last_exception",
    )

    def __init__(self, point: SweepPoint) -> None:
        self.point = point
        self.attempt_seconds: List[float] = []
        self.failures = 0
        self.crashes = 0
        self.last_status = STATUS_FAILED
        self.last_error: Optional[str] = None
        self.last_traceback: Optional[str] = None
        self.last_exception: Optional[BaseException] = None

    @property
    def next_attempt(self) -> int:
        return len(self.attempt_seconds) + 1

    def outcome(self, status: str) -> PointOutcome:
        return PointOutcome(
            index=self.point.index,
            key=self.point.key(),
            status=status,
            attempts=len(self.attempt_seconds),
            error=None if status == STATUS_OK else self.last_error,
            traceback=None if status == STATUS_OK else self.last_traceback,
            attempt_seconds=list(self.attempt_seconds),
        )


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool: cancel queued work, kill and reap workers.

    Used when the orchestrator must reclaim workers it cannot wait for
    — hung points past their timeout, a broken pool, or an abort
    (``KeyboardInterrupt`` / a raising ``on_result`` callback) — so no
    orphaned processes outlive the sweep.
    """
    # Snapshot the workers first: ``shutdown`` drops the pool's
    # ``_processes`` reference, and a hung worker left unkilled keeps
    # the executor's management thread (and interpreter exit) blocked
    # forever.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - shutdown of a broken pool
        pass
    for process in processes:
        try:
            process.kill()
        except Exception:  # pragma: no cover - already dead
            pass
    for process in processes:
        try:
            process.join(timeout=5.0)
        except Exception:  # pragma: no cover - already reaped
            pass


def resolve_workers(workers: Optional[Any]) -> int:
    """Explicit worker count, else ``$REPRO_SWEEP_WORKERS``, else 1.

    Accepts what the CLI hands through verbatim: an integer, a string
    integer, or ``'auto'`` (one worker per CPU).
    """
    source = "workers"
    if workers is None:
        workers = os.environ.get(WORKERS_ENV_VAR, "1")
        source = f"${WORKERS_ENV_VAR}"
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            workers = os.cpu_count() or 1
        else:
            try:
                workers = int(workers)
            except ValueError:
                raise ConfigurationError(
                    f"{source} must be 'auto' or an integer, "
                    f"got {workers!r}"
                ) from None
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def _mp_context():
    """Fork where available: point runners defined in non-importable
    modules (pytest benchmark files) resolve by reference in forked
    children; spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_sweep(
    spec: SweepSpec,
    runner: PointRunner,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    on_result: Optional[Callable[[SweepPoint, Any], None]] = None,
    policy: Optional[FailurePolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    journal: Union[RunJournal, os.PathLike, str, None] = None,
    resume: bool = True,
    on_outcome: Optional[Callable[[SweepPoint, PointOutcome], None]] = None,
) -> SweepResult:
    """Execute every point of ``spec`` through ``runner``.

    ``on_result(point, value)`` streams points that completed with a
    value **in point order** (out-of-order completions are buffered),
    so aggregation is deterministic no matter how the pool schedules
    the work; ``on_outcome(point, outcome)`` streams *every* terminal
    outcome, failures included, in the same order.  The returned
    :class:`SweepResult` holds values and outcomes in point order.

    ``policy`` governs retries, per-point timeouts and degradation
    (the default policy reproduces the historical behaviour: one
    attempt, no timeout, first failure raises).  ``journal`` — a
    :class:`~repro.experiments.resilience.RunJournal` or a directory
    to put one in — durably records terminal outcomes as they happen;
    with ``resume=True`` a re-run skips journaled points (completed
    ones come back from the cache, permanent failures are replayed as
    outcomes).  ``chaos`` injects deterministic faults for testing
    recovery paths.  A point needing process isolation (a timeout is
    set, or chaos may hang/kill) executes through a worker pool even
    at ``workers=1`` — results are byte-identical either way.

    >>> spec = SweepSpec("doc", axes={"x": [1, 2, 3]})
    >>> run_sweep(spec, lambda params, seed: params["x"] * 10,
    ...           workers=1).values
    [10, 20, 30]
    """
    workers = resolve_workers(workers)
    policy = policy or FailurePolicy()
    points = spec.points()
    runner_name = _runner_name(runner)
    if journal is not None and not isinstance(journal, RunJournal):
        journal = _journal_for_directory(
            Path(journal), spec, runner_name, cache
        )
    start = time.perf_counter()
    values: List[Any] = [None] * len(points)
    seconds: List[float] = [0.0] * len(points)
    completed = [False] * len(points)
    outcomes: List[Optional[PointOutcome]] = [None] * len(points)
    delivered = 0
    hits = 0

    def flush() -> None:
        """Stream the completed contiguous prefix, in point order."""
        nonlocal delivered
        while delivered < len(points) and completed[delivered]:
            outcome = outcomes[delivered]
            if on_outcome is not None:
                on_outcome(points[delivered], outcome)
            if on_result is not None and (outcome is None or outcome.ok):
                on_result(points[delivered], values[delivered])
            delivered += 1

    def finish(
        point: SweepPoint, value: Any, outcome: PointOutcome
    ) -> None:
        values[point.index] = value
        if outcome.attempt_seconds:
            seconds[point.index] = outcome.attempt_seconds[-1]
        completed[point.index] = True
        outcomes[point.index] = outcome
        if cache is not None:
            cache.store(spec, runner_name, point, value)
        if journal is not None and not outcome.resumed:
            journal.record(outcome)

    def fail_terminal(
        point: SweepPoint,
        outcome: PointOutcome,
        exception: Optional[BaseException] = None,
    ) -> None:
        """Record a permanent failure; collect it or abort the sweep."""
        outcomes[point.index] = outcome
        if journal is not None and not outcome.resumed:
            journal.record(outcome)
        if policy.collects:
            values[point.index] = None
            completed[point.index] = True
            return
        if exception is not None:
            raise exception
        raise PointFailedError(outcome.describe(), outcome=outcome)

    journaled: Dict[str, PointOutcome] = {}
    if isinstance(journal, RunJournal):
        # Lock before consulting the journal: a second live writer
        # fails fast with JournalLockedError instead of interleaving
        # records with this run later on.
        journal.acquire()
        if resume:
            journaled = journal.load()
        else:
            journal.reset()

    #: Points still to simulate after cache and journal consultation.
    to_run: List[SweepPoint] = []
    try:
        for point in points:
            if cache is not None:
                hit, value = cache.load(spec, runner_name, point)
                if hit:
                    values[point.index] = value
                    completed[point.index] = True
                    hits += 1
                    prior = journaled.get(point.key())
                    outcomes[point.index] = PointOutcome(
                        index=point.index,
                        key=point.key(),
                        status=STATUS_OK,
                        attempts=prior.attempts if prior else 0,
                        attempt_seconds=(
                            list(prior.attempt_seconds) if prior else []
                        ),
                        cached=True,
                        resumed=prior is not None,
                    )
                    continue
            prior = journaled.get(point.key())
            if prior is not None and prior.status != STATUS_OK:
                # Journaled permanent failure: replay the outcome
                # instead of burning attempts on a known-bad point.
                resumed = dataclasses.replace(
                    prior, index=point.index, resumed=True
                )
                fail_terminal(point, resumed)
                continue
            # A journaled ok whose cache entry is gone (no cache, or
            # quarantined) falls through and re-executes.
            to_run.append(point)

        flush()
        isolate = policy.timeout_seconds is not None or (
            chaos is not None and chaos.needs_isolation()
        )
        if (workers == 1 or len(to_run) <= 1) and not isolate:
            _run_serial(
                to_run, runner, policy, chaos, finish, fail_terminal, flush
            )
        elif to_run:
            _run_pool(
                to_run,
                runner,
                workers,
                policy,
                chaos,
                finish,
                fail_terminal,
                flush,
            )
        flush()
    finally:
        if isinstance(journal, RunJournal):
            journal.close()

    return SweepResult(
        spec=spec,
        points=points,
        values=values,
        workers=workers,
        cache_hits=hits,
        cache_misses=len(to_run),
        wall_seconds=time.perf_counter() - start,
        point_seconds=seconds,
        outcomes=outcomes,
    )


def _run_serial(
    to_run: List[SweepPoint],
    runner: PointRunner,
    policy: FailurePolicy,
    chaos: Optional[ChaosSpec],
    finish: Callable[[SweepPoint, Any, PointOutcome], None],
    fail_terminal: Callable[..., None],
    flush: Callable[[], None],
) -> None:
    """In-process execution with retries (no timeout/hang/die chaos)."""
    for point in to_run:
        state = _PointState(point)
        while True:
            # The runner gets a copy so an in-process mutation can
            # never corrupt the point's identity (cache key, reports) —
            # pool workers get a pickled copy for free.
            result = _execute_point_attempt(
                runner,
                dict(point.params),
                point.seed,
                chaos,
                point.index,
                state.next_attempt,
            )
            if result[0] == "ok":
                _, value, elapsed = result
                state.attempt_seconds.append(elapsed)
                finish(point, value, state.outcome(STATUS_OK))
                break
            _, text, trace, exception, elapsed = result
            state.attempt_seconds.append(elapsed)
            state.failures += 1
            state.last_error = text
            state.last_traceback = trace
            state.last_exception = exception
            if state.failures >= policy.max_attempts:
                fail_terminal(
                    point, state.outcome(STATUS_FAILED), exception
                )
                break
            delay = policy.backoff_for(state.failures, key=point.key())
            if delay > 0.0:
                time.sleep(delay)
        flush()


def _run_pool(
    to_run: List[SweepPoint],
    runner: PointRunner,
    workers: int,
    policy: FailurePolicy,
    chaos: Optional[ChaosSpec],
    finish: Callable[[SweepPoint, Any, PointOutcome], None],
    fail_terminal: Callable[..., None],
    flush: Callable[[], None],
) -> None:
    """Pool execution with retries, timeouts and crash recovery.

    In-flight submissions are bounded by the worker count.  When the
    pool breaks, the culprit cannot be told apart from innocent
    co-residents, so *nobody* is charged: every in-flight point
    becomes a **suspect** and re-runs exclusively (one in-flight at a
    time).  A pool break during a solo run is unambiguous — that point
    is charged one crash against ``policy.max_crashes`` and becomes
    terminally ``crashed`` once the budget is spent, instead of
    killing workers forever; innocents clear themselves with one clean
    solo run and full parallelism resumes.  On *any* abort —
    ``KeyboardInterrupt``, a raising ``on_result`` callback, a
    terminal failure under ``on_error="raise"`` — queued futures are
    cancelled and workers terminated, never orphaned.
    """
    max_pool = max(1, min(workers, len(to_run)))
    pool = ProcessPoolExecutor(
        max_workers=max_pool, mp_context=_mp_context()
    )
    states = {point.index: _PointState(point) for point in to_run}
    ready: deque = deque(point.index for point in to_run)
    #: Suspects awaiting an exclusive (solo) run for crash attribution.
    solo: deque = deque()
    #: (eligible_monotonic, index) pairs sleeping out a backoff.
    waiting: List[Tuple[float, int]] = []
    #: future -> (index, deadline_monotonic, submit_perf, is_solo)
    inflight: Dict[Any, Tuple[int, float, float, bool]] = {}
    #: Backstop against a pathologically break-happy environment.
    rebuilds = 0
    max_rebuilds = 4 + 2 * policy.max_crashes * len(to_run)

    def rebuild_pool() -> None:
        nonlocal pool, rebuilds
        rebuilds += 1
        if rebuilds > max_rebuilds:
            raise SweepError(
                f"worker pool broke {rebuilds} times; giving up "
                "(crash budgets should have made this unreachable)"
            )
        _terminate_pool(pool)
        pool = ProcessPoolExecutor(
            max_workers=max_pool, mp_context=_mp_context()
        )

    def schedule(index: int, eligible: float) -> None:
        if eligible <= time.monotonic():
            ready.append(index)
        else:
            waiting.append((eligible, index))

    def charge_crash(index: int, elapsed: float, now: float) -> None:
        state = states[index]
        state.attempt_seconds.append(elapsed)
        state.crashes += 1
        state.last_error = (
            "worker process died while executing this point "
            f"(crash {state.crashes}/{policy.max_crashes})"
        )
        state.last_traceback = None
        state.last_exception = None
        if state.crashes >= policy.max_crashes:
            fail_terminal(state.point, state.outcome(STATUS_CRASHED))
        else:
            # Retry exclusively: a repeat killer must not take the
            # whole pool down again on the way to its crash budget.
            solo.append(index)

    def handle_broken_future(
        index: int, is_solo: bool, elapsed: float, now: float
    ) -> None:
        if is_solo:
            charge_crash(index, elapsed, now)
        else:
            # Ambiguous attribution: re-run exclusively, uncharged.
            solo.append(index)

    def record_failure(
        index: int,
        text: str,
        trace: Optional[str],
        exception: Optional[BaseException],
        elapsed: float,
        now: float,
        status: str = STATUS_FAILED,
    ) -> None:
        state = states[index]
        state.attempt_seconds.append(elapsed)
        state.failures += 1
        state.last_status = status
        state.last_error = text
        state.last_traceback = trace
        state.last_exception = exception
        if state.failures >= policy.max_attempts:
            fail_terminal(state.point, state.outcome(status), exception)
        else:
            schedule(
                index,
                now
                + policy.backoff_for(
                    state.failures, key=state.point.key()
                ),
            )

    def process_completion(future: Any, now: float) -> bool:
        """Handle one done future; returns True if the pool broke."""
        index, _, submitted, is_solo = inflight.pop(future)
        try:
            result = future.result()
        except BrokenProcessPool:
            handle_broken_future(
                index, is_solo, time.perf_counter() - submitted, now
            )
            return True
        except Exception as exc:
            # The attempt itself cannot raise; this is a transfer
            # failure (e.g. an unpicklable runner return value).
            record_failure(
                index,
                f"{type(exc).__name__}: {exc}",
                traceback_module.format_exc(),
                exc,
                time.perf_counter() - submitted,
                now,
            )
            return False
        state = states[index]
        if result[0] == "ok":
            _, value, elapsed = result
            state.attempt_seconds.append(elapsed)
            finish(state.point, value, state.outcome(STATUS_OK))
        else:
            _, text, trace, exception, elapsed = result
            record_failure(index, text, trace, exception, elapsed, now)
        return False

    def handle_pool_break(now: float) -> None:
        """Quarantine every in-flight point, rebuild the pool."""
        for future in list(inflight):
            if future.done():
                process_completion(future, now)
            else:  # pragma: no cover - executor failed them already
                index, _, submitted, is_solo = inflight.pop(future)
                handle_broken_future(
                    index, is_solo, time.perf_counter() - submitted, now
                )
        rebuild_pool()

    def expire_timeouts(now: float) -> None:
        """Reclaim workers hung past the per-point deadline."""
        expired = [
            (future, index)
            for future, (index, deadline, _, _) in inflight.items()
            if not future.done() and now >= deadline
        ]
        if not expired:
            return
        # Harvest any finished results first, then kill the pool: a
        # hung task cannot be cancelled, only its worker can.
        for future in [f for f in list(inflight) if f.done()]:
            process_completion(future, now)
        expired_set = {future for future, _ in expired}
        innocents = [
            index
            for future, (index, _, _, _) in inflight.items()
            if future not in expired_set
        ]
        for future, index in expired:
            if future not in inflight:
                continue
            inflight.pop(future)
            record_failure(
                index,
                (
                    "point exceeded its "
                    f"{policy.timeout_seconds}s wall-clock timeout"
                ),
                None,
                None,
                float(policy.timeout_seconds or 0.0),
                now,
                status=STATUS_TIMED_OUT,
            )
        inflight.clear()
        rebuild_pool()
        # Interrupted bystanders are resubmitted uncharged: our
        # teardown, not their failure.
        for index in innocents:
            schedule(index, now)

    def submit_ready(now: float) -> None:
        while True:
            # Suspect quarantine drains first, one exclusive run at a
            # time; normal submission resumes once it is empty.
            if solo:
                if inflight:
                    return
                index = solo[0]
                is_solo = True
            elif ready and len(inflight) < max_pool:
                index = ready.popleft()
                is_solo = False
            else:
                return
            state = states[index]
            try:
                future = pool.submit(
                    _execute_point_attempt,
                    runner,
                    state.point.params,
                    state.point.seed,
                    chaos,
                    index,
                    state.next_attempt,
                )
            except (BrokenProcessPool, RuntimeError):
                if not is_solo:
                    ready.appendleft(index)
                handle_pool_break(now)
                continue
            if is_solo:
                solo.popleft()
            deadline = (
                now + policy.timeout_seconds
                if policy.timeout_seconds is not None
                else float("inf")
            )
            inflight[future] = (
                index, deadline, time.perf_counter(), is_solo
            )

    try:
        while ready or solo or waiting or inflight:
            now = time.monotonic()
            if waiting:
                still = []
                for eligible, index in waiting:
                    if eligible <= now:
                        ready.append(index)
                    else:
                        still.append((eligible, index))
                waiting[:] = still
            submit_ready(now)
            if not inflight:
                if waiting:
                    time.sleep(
                        max(0.0, min(t for t, _ in waiting) - now)
                    )
                continue
            bounds = [
                deadline
                for _, deadline, _, _ in inflight.values()
                if deadline != float("inf")
            ]
            bounds.extend(eligible for eligible, _ in waiting)
            wait_timeout = (
                max(0.01, min(bounds) - now) if bounds else None
            )
            done, _ = wait(
                set(inflight),
                timeout=wait_timeout,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            broke = False
            for future in done:
                if future in inflight:
                    broke = process_completion(future, now) or broke
            if broke:
                handle_pool_break(now)
            else:
                expire_timeouts(now)
            flush()
    except BaseException:
        # Abort path (KeyboardInterrupt, raising callbacks, terminal
        # failure under on_error="raise"): never leave orphans.
        _terminate_pool(pool)
        raise
    else:
        pool.shutdown(wait=True, cancel_futures=True)


def _store_backed(directory: Path) -> bool:
    """Whether ``directory`` should get a store-backed cache/journal.

    Auto-detected from the presence of ``store.sqlite3`` (created by
    ``repro-hpcqc store init`` or any ``ResultStore`` use);
    ``$REPRO_SWEEP_STORE=1`` forces it for fresh directories and
    ``=0`` forbids it entirely.
    """
    override = os.environ.get(STORE_ENV_VAR)
    if override is not None and override != "":
        return override not in ("0", "false", "no")
    return (directory / "store.sqlite3").exists()


def _journal_for_directory(
    directory: Path,
    spec: SweepSpec,
    runner_name: str,
    cache: Optional[Any],
) -> RunJournal:
    """The journal for a directory-valued ``journal=`` argument.

    A store-aware cache supplies its own journal for its own
    directory (sharing one store handle and writer lock — a second
    independent handle would trip the flock in-process); a directory
    holding a ``store.sqlite3`` gets a store journal; anything else
    gets the classic JSONL :class:`RunJournal`.
    """
    maker = getattr(cache, "journal_for", None)
    if maker is not None:
        journal = maker(directory, spec, runner_name)
        if journal is not None:
            return journal
    if _store_backed(directory):
        from repro.store import ResultStore

        code_version = (
            cache.code_version if cache is not None else None
        )
        return ResultStore(directory, code_version=code_version).run_journal(
            spec.experiment_id, runner_name
        )
    return RunJournal.for_sweep(
        directory,
        spec.experiment_id,
        runner_name,
        cache.code_version if cache else _default_code_version(),
    )


def sweep_cache(cache_dir: Optional[os.PathLike]) -> Optional[Any]:
    """Cache at ``cache_dir``, else ``$REPRO_SWEEP_CACHE_DIR``, else none.

    A directory holding a ``store.sqlite3`` (see :mod:`repro.store`)
    gets a store-backed cache — same interface, same byte-identical
    results, durable SQLite + columnar metrics underneath.
    """
    if not cache_dir:
        directory = os.environ.get(CACHE_ENV_VAR)
        if not directory:
            return None
        cache_dir = directory
    if _store_backed(Path(cache_dir)):
        from repro.store import ResultStore

        return ResultStore(cache_dir).sweep_cache()
    return SweepCache(cache_dir)


def sweep_values(
    spec: SweepSpec,
    runner: PointRunner,
    workers: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
) -> List[Any]:
    """Convenience wrapper: values in point order, cache by directory."""
    return run_sweep(
        spec, runner, workers=workers, cache=sweep_cache(cache_dir)
    ).values
