"""Parallel sweep engine: fan experiment campaigns across processes.

Every paper artefact is a grid of independent (strategy x load x seed)
simulation campaigns.  This module turns those grids into declarative
:class:`SweepSpec` objects and executes them through one engine:

- **Deterministic seed derivation** — each grid point owns a seed
  derived purely from ``(base_seed, experiment_id, params,
  replication)`` via :func:`repro.sim.rng.derive_seed`, so the point's
  result is a function of its coordinates alone, never of which worker
  ran it or in what order.
- **Process-pool execution** — :func:`run_sweep` fans points across
  ``workers`` processes (serial in-process fallback when ``workers=1``)
  and always returns results in *point order*; streaming consumers see
  the same order regardless of completion order.
- **Opt-in on-disk cache** — results are memoised under a key of
  (experiment id, runner, params, seed, code version), so re-running a
  benchmark suite only simulates new points.

Results are *byte-identical* between serial and parallel execution and
between cold and warm cache (see :func:`canonical_bytes`, which the
determinism suite uses to assert exactly that).
"""

from __future__ import annotations

import dataclasses
import json
import hashlib
import os
import pickle
import subprocess
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import multiprocessing

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.metrics.stats import RunningStats
from repro.sim.rng import derive_seed

#: Environment knobs: default worker count and cache directory for
#: sweeps that do not specify them explicitly.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE_DIR"
#: Override the code-version component of cache keys (e.g. a VCS hash).
CODE_VERSION_ENV_VAR = "REPRO_SWEEP_CODE_VERSION"

#: A point runner: ``runner(params, seed) -> picklable result``.  Must
#: be a module-level callable so worker processes can import it.
PointRunner = Callable[[Dict[str, Any], int], Any]


def canonical_params(params: Mapping[str, Any]) -> str:
    """Stable textual encoding of a parameter mapping.

    Parameters must be JSON-representable (scalars, lists, nested
    mappings) so that the encoding — and everything derived from it:
    seeds, cache keys — is reproducible across processes and runs.
    Keys are sorted, so declaration order never leaks into identities:

    >>> canonical_params({"b": 2, "a": 1})
    '{"a":1,"b":2}'
    >>> canonical_params({"a": 1, "b": 2})
    '{"a":1,"b":2}'
    """
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"sweep params must be JSON-representable: {params!r}"
        ) from exc


def derive_point_seed(
    base_seed: int,
    experiment_id: str,
    params: Mapping[str, Any],
    replication: int = 0,
) -> int:
    """The seed owned by one grid point (pure function of coordinates).

    Any process, any year, any worker count derives the same seed for
    the same coordinates — that is what makes sweep results a function
    of the grid alone:

    >>> derive_point_seed(0, "demo", {"x": 1})
    15097343031012186446
    >>> derive_point_seed(0, "demo", {"x": 1}, replication=1) \\
    ...     != derive_point_seed(0, "demo", {"x": 1})
    True
    """
    key = f"sweep:{experiment_id}:{canonical_params(params)}:rep{replication}"
    return derive_seed(base_seed, key)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: parameters, replication index and derived seed."""

    index: int
    params: Dict[str, Any]
    replication: int
    seed: int

    def key(self) -> str:
        """Canonical identity of the point within its spec."""
        return f"{canonical_params(self.params)}:rep{self.replication}"


@dataclass
class SweepSpec:
    """A declarative parameter grid with replications.

    Parameters
    ----------
    experiment_id:
        Stable name scoping seeds and cache entries.
    axes:
        Ordered mapping of axis name to its values; points enumerate the
        cartesian product in row-major order (last axis fastest).
    explicit:
        Alternative to ``axes`` for non-rectangular grids: an explicit
        sequence of parameter mappings, enumerated in the given order.
    constants:
        Parameters merged into every point (part of its identity, so
        they participate in derived seeds and cache keys).
    replications:
        Number of seed replications of the whole grid (outermost loop).
    base_seed:
        Root seed the per-point seeds are derived from.
    seed_mode:
        ``"derived"`` (default) gives every (point, replication) its own
        seed via :func:`derive_point_seed` — statistically independent
        points.  ``"shared"`` gives every point of one replication the
        *same* seed (replication 0 uses ``base_seed`` itself) — the
        matched-universe mode comparison experiments need, where each
        strategy must face an identical random environment.

    Points enumerate the cartesian product in row-major order (last
    axis fastest), replications outermost:

    >>> spec = SweepSpec("demo", axes={"a": [1, 2], "b": [10, 20]})
    >>> [p.params for p in spec.points()]
    [{'a': 1, 'b': 10}, {'a': 1, 'b': 20}, {'a': 2, 'b': 10}, {'a': 2, 'b': 20}]
    >>> len(spec)
    4
    """

    experiment_id: str
    axes: Optional[Mapping[str, Sequence[Any]]] = None
    explicit: Optional[Sequence[Mapping[str, Any]]] = None
    constants: Dict[str, Any] = field(default_factory=dict)
    replications: int = 1
    base_seed: int = 0
    seed_mode: str = "derived"

    def __post_init__(self) -> None:
        if (self.axes is None) == (self.explicit is None):
            raise ConfigurationError(
                "a SweepSpec needs exactly one of axes= or explicit="
            )
        if self.replications < 1:
            raise ConfigurationError("replications must be >= 1")
        if self.seed_mode not in ("derived", "shared"):
            raise ConfigurationError(
                f"unknown seed_mode {self.seed_mode!r} "
                "(expected 'derived' or 'shared')"
            )

    def param_sets(self) -> List[Dict[str, Any]]:
        """The grid's parameter mappings, one per point, in point order."""
        if self.explicit is not None:
            sets = [dict(entry) for entry in self.explicit]
        else:
            sets = [{}]
            for axis, values in self.axes.items():
                sets = [
                    {**params, axis: value}
                    for params in sets
                    for value in values
                ]
        for params in sets:
            clash = set(params) & set(self.constants)
            if clash:
                raise ConfigurationError(
                    f"sweep constants clash with axis params: {sorted(clash)}"
                )
            params.update(self.constants)
        return sets

    def seed_for(
        self, params: Mapping[str, Any], replication: int
    ) -> int:
        if self.seed_mode == "shared":
            if replication == 0:
                return self.base_seed
            return derive_seed(
                self.base_seed, f"sweep:{self.experiment_id}:rep{replication}"
            )
        return derive_point_seed(
            self.base_seed, self.experiment_id, params, replication
        )

    def points(self) -> List[SweepPoint]:
        """Every (params, replication) pair, in deterministic order."""
        points: List[SweepPoint] = []
        sets = self.param_sets()
        for replication in range(self.replications):
            for params in sets:
                points.append(
                    SweepPoint(
                        index=len(points),
                        # Own copy per point: replications must not
                        # share mutable params.
                        params=dict(params),
                        replication=replication,
                        seed=self.seed_for(params, replication),
                    )
                )
        return points

    def __len__(self) -> int:
        sets = len(self.explicit) if self.explicit is not None else 1
        if self.axes is not None:
            for values in self.axes.values():
                sets *= len(values)
        return sets * self.replications


# -- canonical serialisation -------------------------------------------------


def _canonicalise(value: Any) -> Any:
    """Reduce ``value`` to JSON-encodable form, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _canonicalise(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(key): _canonicalise(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonicalise(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(repr(item) for item in value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    return repr(value)


def canonical_bytes(value: Any) -> bytes:
    """Deterministic serialisation used for byte-identity assertions.

    Floats round-trip through ``repr`` (shortest exact form), dict keys
    are sorted, dataclasses are expanded field by field — so two results
    serialise identically iff they are value-identical.

    >>> canonical_bytes({"f": 0.5, "n": [1, 2]})
    b'{"f":0.5,"n":[1,2]}'
    """
    return json.dumps(
        _canonicalise(value), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


# -- on-disk result cache ----------------------------------------------------


_CODE_VERSION: Optional[str] = None


def _git_output(args: List[str]) -> str:
    """Stdout of a git command run next to this file ('' on any failure)."""
    try:
        return subprocess.run(
            ["git", *args],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return ""


def _untracked_content_digest() -> str:
    """One line of ``path:sha256`` per untracked file, repo-wide."""
    toplevel = _git_output(["rev-parse", "--show-toplevel"]).strip()
    if not toplevel:
        return ""
    listing = _git_output(
        ["ls-files", "--others", "--exclude-standard", "--full-name", ":/"]
    )
    lines = []
    for rel in listing.splitlines():
        if not rel:
            continue
        try:
            content = (Path(toplevel) / rel).read_bytes()
            lines.append(f"{rel}:{hashlib.sha256(content).hexdigest()}")
        except OSError:
            lines.append(f"{rel}:unreadable")
    return "\n".join(lines)


def _default_code_version() -> str:
    """Cache-key component tied to the code that produced a result.

    ``$REPRO_SWEEP_CODE_VERSION`` wins; otherwise the package version
    plus the current VCS revision (when a ``git`` checkout is visible),
    so committed code changes invalidate cached points even without a
    package-version bump.  A dirty working tree appends a marker
    derived from the uncommitted diff: entries written under edits are
    keyed to *those* edits, never silently reused for the bare commit
    (or for different edits on top of it).
    """
    override = os.environ.get(CODE_VERSION_ENV_VAR)
    if override:
        return override
    global _CODE_VERSION
    if _CODE_VERSION is None:
        version = __version__
        revision = _git_output(["rev-parse", "--short", "HEAD"]).strip()
        if revision:
            version = f"{version}+g{revision}"
            status = _git_output(["status", "--porcelain"])
            if status.strip():
                # Key dirty trees by their actual content: the tracked
                # diff, the porcelain status, and the *contents* of
                # untracked files (which neither status nor diff can
                # see — a new module's edits must invalidate too).
                diff = _git_output(["diff", "HEAD"])
                untracked = _untracked_content_digest()
                digest = hashlib.sha256(
                    (status + diff + untracked).encode("utf-8", "replace")
                ).hexdigest()
                version = f"{version}.dirty.{digest[:12]}"
        _CODE_VERSION = version
    return _CODE_VERSION


class SweepCache:
    """Opt-in on-disk memo of per-point results.

    Entries are keyed by (experiment id, runner name, canonical params,
    seed, replication, code version).  The default code version binds
    the entry to both the package version and the VCS revision (see
    :func:`_default_code_version`), so rerunning after a commit only
    reuses points the commit could not have changed — nothing, unless
    you pin ``code_version`` yourself.
    """

    def __init__(
        self,
        directory: os.PathLike,
        code_version: Optional[str] = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.code_version = code_version or _default_code_version()

    @classmethod
    def from_environment(cls) -> Optional["SweepCache"]:
        """A cache rooted at ``$REPRO_SWEEP_CACHE_DIR``, if set."""
        directory = os.environ.get(CACHE_ENV_VAR)
        return cls(directory) if directory else None

    def _path(
        self, spec: SweepSpec, runner_name: str, point: SweepPoint
    ) -> Path:
        key = "\n".join(
            (
                spec.experiment_id,
                runner_name,
                self.code_version,
                canonical_params(point.params),
                str(point.seed),
                str(point.replication),
            )
        )
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{digest}.pkl"

    def load(
        self, spec: SweepSpec, runner_name: str, point: SweepPoint
    ) -> Tuple[bool, Any]:
        """``(hit, value)``; unreadable/corrupt entries count as misses."""
        path = self._path(spec, runner_name, point)
        try:
            with open(path, "rb") as handle:
                return True, pickle.load(handle)
        except (
            OSError,
            pickle.PickleError,
            EOFError,
            AttributeError,
            ImportError,
        ):
            # Unreadable, corrupt, or referencing renamed/moved code:
            # treat as a miss and re-simulate.
            return False, None

    def store(
        self,
        spec: SweepSpec,
        runner_name: str,
        point: SweepPoint,
        value: Any,
    ) -> None:
        """Atomically persist one point result (write + rename)."""
        path = self._path(spec, runner_name, point)
        handle = tempfile.NamedTemporaryFile(
            dir=self.directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise


# -- execution ---------------------------------------------------------------


@dataclass
class SweepResult:
    """Everything one sweep execution produced, in point order."""

    spec: SweepSpec
    points: List[SweepPoint]
    #: Per-point runner return values, index-aligned with ``points``.
    values: List[Any]
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    #: Per-point simulation seconds (0.0 for cache hits).
    point_seconds: List[float] = field(default_factory=list)

    def value_map(self) -> Dict[str, Any]:
        """Point key -> value (for non-positional lookups)."""
        return {
            point.key(): value
            for point, value in zip(self.points, self.values)
        }

    def timing_stats(self) -> RunningStats:
        """Summary statistics over the simulated points' wall times."""
        stats = RunningStats()
        for seconds in self.point_seconds:
            if seconds > 0.0:
                stats.add(seconds)
        return stats


def _runner_name(runner: PointRunner) -> str:
    module = getattr(runner, "__module__", "") or ""
    qualname = getattr(runner, "__qualname__", repr(runner))
    return f"{module}:{qualname}"


def _execute_point(
    runner: PointRunner, params: Dict[str, Any], seed: int
) -> Tuple[Any, float]:
    start = time.perf_counter()
    value = runner(params, seed)
    return value, time.perf_counter() - start


def resolve_workers(workers: Optional[int]) -> int:
    """Explicit worker count, else ``$REPRO_SWEEP_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "1")
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"${WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def _mp_context():
    """Fork where available: point runners defined in non-importable
    modules (pytest benchmark files) resolve by reference in forked
    children; spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_sweep(
    spec: SweepSpec,
    runner: PointRunner,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    on_result: Optional[Callable[[SweepPoint, Any], None]] = None,
) -> SweepResult:
    """Execute every point of ``spec`` through ``runner``.

    ``on_result(point, value)`` streams completed points **in point
    order** (out-of-order completions are buffered), so aggregation is
    deterministic no matter how the pool schedules the work.  The
    returned :class:`SweepResult` holds values in the same order.

    >>> spec = SweepSpec("doc", axes={"x": [1, 2, 3]})
    >>> run_sweep(spec, lambda params, seed: params["x"] * 10,
    ...           workers=1).values
    [10, 20, 30]
    """
    workers = resolve_workers(workers)
    points = spec.points()
    runner_name = _runner_name(runner)
    start = time.perf_counter()
    values: List[Any] = [None] * len(points)
    seconds: List[float] = [0.0] * len(points)
    completed = [False] * len(points)
    delivered = 0
    hits = 0

    def flush() -> None:
        """Stream the completed contiguous prefix, in point order."""
        nonlocal delivered
        while delivered < len(points) and completed[delivered]:
            if on_result is not None:
                on_result(points[delivered], values[delivered])
            delivered += 1

    #: Points still to simulate after consulting the cache.
    to_run: List[SweepPoint] = []
    for point in points:
        if cache is not None:
            hit, value = cache.load(spec, runner_name, point)
            if hit:
                values[point.index] = value
                completed[point.index] = True
                hits += 1
                continue
        to_run.append(point)

    def finish(point: SweepPoint, value: Any, elapsed: float) -> None:
        values[point.index] = value
        seconds[point.index] = elapsed
        completed[point.index] = True
        if cache is not None:
            cache.store(spec, runner_name, point, value)

    flush()
    if workers == 1 or len(to_run) <= 1:
        for point in to_run:
            # The runner gets a copy so an in-process mutation can
            # never corrupt the point's identity (cache key, reports) —
            # pool workers get a pickled copy for free.
            value, elapsed = _execute_point(
                runner, dict(point.params), point.seed
            )
            finish(point, value, elapsed)
            flush()
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(to_run)), mp_context=_mp_context()
        ) as pool:
            futures = {
                pool.submit(
                    _execute_point, runner, point.params, point.seed
                ): point
                for point in to_run
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    point = futures[future]
                    value, elapsed = future.result()
                    finish(point, value, elapsed)
                flush()
    flush()

    return SweepResult(
        spec=spec,
        points=points,
        values=values,
        workers=workers,
        cache_hits=hits,
        cache_misses=len(to_run),
        wall_seconds=time.perf_counter() - start,
        point_seconds=seconds,
    )


def sweep_cache(cache_dir: Optional[os.PathLike]) -> Optional[SweepCache]:
    """Cache at ``cache_dir``, else ``$REPRO_SWEEP_CACHE_DIR``, else none."""
    if cache_dir:
        return SweepCache(cache_dir)
    return SweepCache.from_environment()


def sweep_values(
    spec: SweepSpec,
    runner: PointRunner,
    workers: Optional[int] = None,
    cache_dir: Optional[os.PathLike] = None,
) -> List[Any]:
    """Convenience wrapper: values in point order, cache by directory."""
    return run_sweep(
        spec, runner, workers=workers, cache=sweep_cache(cache_dir)
    ).values
