"""Shared scenario builders for the experiment modules.

Every experiment declares its facility as a
:class:`~repro.scenarios.spec.ScenarioSpec` (usually via
:func:`campaign_scenario`) and materialises it through the single
:func:`repro.scenarios.build.build` pipeline; :func:`run_campaign`
drives a set of hybrid applications through one strategy inside such a
scenario.  The legacy keyword form of ``run_campaign`` (classical
nodes, rho, horizon as separate arguments) remains for benchmarks and
tests and is translated into a spec internally — both forms build
identical facilities.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.quantum.technology import QPUTechnology
from repro.scenarios.build import (
    background_trace,
    build,
    install_background,
    offered_load_interarrival,
)
from repro.scenarios.spec import (
    FleetSpec,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.quantum.circuit import Circuit
from repro.scheduler.job import Job
from repro.strategies.application import HybridApplication, vqe_like
from repro.strategies.base import Environment, IntegrationStrategy, RunRecord
from repro.workloads.generator import CampaignDriver, submit_trace
from repro.workloads.swf import TraceJob

__all__ = [
    "campaign_scenario",
    "make_background_trace",
    "offered_load_interarrival",
    "run_campaign",
    "standard_hybrid_app",
    "start_background",
]


def campaign_scenario(
    technology: QPUTechnology,
    classical_nodes: int = 32,
    vqpus_per_qpu: int = 1,
    background_rho: float = 0.0,
    background_horizon: float = 0.0,
    scheduling_cycle: float = 0.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> ScenarioSpec:
    """The scenario one experiment campaign runs under.

    This is the declarative equivalent of the historical
    ``make_environment`` + ``start_background`` pair: a two-partition
    facility around ``technology`` with an optional Poisson background
    of offered load ``background_rho`` over ``background_horizon``.
    """
    return ScenarioSpec(
        name=name or f"campaign-{technology.name}",
        topology=TopologySpec(classical_nodes=classical_nodes),
        fleet=FleetSpec(
            technology=technology.name, vqpus_per_qpu=vqpus_per_qpu
        ),
        workload=WorkloadSpec(
            background_rho=background_rho, horizon=background_horizon
        ),
        policy=PolicySpec(scheduling_cycle=scheduling_cycle),
        seed=seed,
    )


def make_background_trace(
    env: Environment,
    rho: float,
    horizon: float,
    seed_name: str = "background",
    min_runtime: float = 300.0,
    max_runtime: float = 1800.0,
    min_nodes: int = 2,
    max_nodes: int = 16,
) -> List[TraceJob]:
    """Synthesise a classical background trace of offered load ``rho``."""
    return background_trace(
        env,
        WorkloadSpec(
            background_rho=rho,
            horizon=horizon,
            min_runtime=min_runtime,
            max_runtime=max_runtime,
            min_nodes=min_nodes,
            max_nodes=max_nodes,
        ),
        seed_name=seed_name,
    )


def start_background(
    env: Environment, rho: float, horizon: float, **kwargs
) -> List[Job]:
    """Submit a background load of intensity ``rho`` over ``horizon``."""
    trace = make_background_trace(env, rho, horizon, **kwargs)
    return submit_trace(env, trace)


def standard_hybrid_app(
    technology: QPUTechnology,
    iterations: int = 5,
    classical_phase_seconds: float = 120.0,
    classical_nodes: int = 8,
    shots: int = 1000,
    geometry: str = "geom0",
    min_classical_nodes: int = 1,
    name: Optional[str] = None,
) -> HybridApplication:
    """The canonical VQE-style app used across experiments.

    ``classical_phase_seconds`` is the *wall* duration of each
    classical phase at ``classical_nodes`` (the single-node work is
    scaled up accordingly), so scenarios are specified in observable
    time rather than abstract work units.
    """
    probe = vqe_like(
        iterations=1,
        classical_work=1.0,
        circuit=Circuit(2, 1),
        classical_nodes=classical_nodes,
    )
    scale = probe.classical_time(probe.phases[0], classical_nodes)
    work = classical_phase_seconds / scale
    circuit = Circuit(
        num_qubits=min(20, technology.num_qubits),
        depth=100,
        geometry=geometry,
        name=f"std-{technology.name}",
    )
    return vqe_like(
        iterations=iterations,
        classical_work=work,
        circuit=circuit,
        shots=shots,
        classical_nodes=classical_nodes,
        min_classical_nodes=min_classical_nodes,
        name=name or f"std-{technology.name}-{iterations}it",
    )


def run_campaign(
    strategy: IntegrationStrategy,
    apps: Sequence[HybridApplication],
    technology: Optional[QPUTechnology] = None,
    classical_nodes: int = 32,
    vqpus_per_qpu: int = 1,
    background_rho: float = 0.0,
    background_horizon: float = 0.0,
    seed: Optional[int] = None,
    submit_times: Optional[Sequence[float]] = None,
    scheduling_cycle: float = 0.0,
    scenario: Optional[ScenarioSpec] = None,
) -> tuple[List[RunRecord], Environment]:
    """Run ``apps`` under ``strategy`` in a fresh scenario environment.

    Pass a :class:`ScenarioSpec` via ``scenario=`` (the declarative
    form experiments use), or the legacy keyword arguments, which are
    folded into an equivalent spec.  Returns the per-app records plus
    the environment (for facility metrics); the scenario's background
    workload is injected before the campaign launches.
    """
    if scenario is None:
        if technology is None:
            raise TypeError(
                "run_campaign needs either scenario= or technology="
            )
        scenario = campaign_scenario(
            technology,
            classical_nodes=classical_nodes,
            vqpus_per_qpu=vqpus_per_qpu,
            background_rho=background_rho,
            background_horizon=background_horizon,
            scheduling_cycle=scheduling_cycle,
            seed=0 if seed is None else seed,
        )
    elif seed is not None:
        scenario = scenario.with_seed(seed)
    env = build(scenario)
    install_background(env, scenario.workload)
    driver = CampaignDriver(env, strategy)
    driver.launch_all(list(apps), submit_times)
    records = driver.collect()
    return records, env
