"""Shared scenario builders for the experiment modules."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.quantum.circuit import Circuit
from repro.quantum.technology import QPUTechnology
from repro.scheduler.job import Job
from repro.strategies.application import HybridApplication, vqe_like
from repro.strategies.base import Environment, IntegrationStrategy, RunRecord
from repro.strategies.envs import make_environment
from repro.workloads.distributions import LogUniform, PowerOfTwoNodes
from repro.workloads.generator import CampaignDriver, submit_trace
from repro.workloads.swf import TraceJob, synthesise_trace


def offered_load_interarrival(
    rho: float,
    cluster_nodes: int,
    mean_job_nodes: float,
    mean_job_runtime: float,
) -> float:
    """Mean interarrival producing offered load ``rho`` on the partition.

    Offered load is node-seconds demanded per node-second of capacity:
    ``rho = nodes × runtime / (interarrival × cluster_nodes)``.
    """
    if rho <= 0:
        raise ValueError("rho must be positive")
    return (mean_job_nodes * mean_job_runtime) / (rho * cluster_nodes)


def make_background_trace(
    env: Environment,
    rho: float,
    horizon: float,
    seed_name: str = "background",
    min_runtime: float = 300.0,
    max_runtime: float = 1800.0,
    min_nodes: int = 2,
    max_nodes: int = 16,
) -> List[TraceJob]:
    """Synthesise a classical background trace of offered load ``rho``."""
    rng = env.streams.stream(seed_name)
    sizes = PowerOfTwoNodes(min_nodes, max_nodes)
    runtimes = LogUniform(min_runtime, max_runtime)
    cluster_nodes = env.cluster.partition("classical").node_count
    interarrival = offered_load_interarrival(
        rho, cluster_nodes, sizes.mean(), runtimes.mean()
    )
    job_count = max(int(horizon / interarrival) + 1, 1)
    return synthesise_trace(
        rng,
        job_count=job_count,
        mean_interarrival=interarrival,
        runtimes=runtimes,
        sizes=sizes,
    )


def start_background(
    env: Environment, rho: float, horizon: float, **kwargs
) -> List[Job]:
    """Submit a background load of intensity ``rho`` over ``horizon``."""
    trace = make_background_trace(env, rho, horizon, **kwargs)
    return submit_trace(env, trace)


def standard_hybrid_app(
    technology: QPUTechnology,
    iterations: int = 5,
    classical_phase_seconds: float = 120.0,
    classical_nodes: int = 8,
    shots: int = 1000,
    geometry: str = "geom0",
    min_classical_nodes: int = 1,
    name: Optional[str] = None,
) -> HybridApplication:
    """The canonical VQE-style app used across experiments.

    ``classical_phase_seconds`` is the *wall* duration of each
    classical phase at ``classical_nodes`` (the single-node work is
    scaled up accordingly), so scenarios are specified in observable
    time rather than abstract work units.
    """
    probe = vqe_like(
        iterations=1,
        classical_work=1.0,
        circuit=Circuit(2, 1),
        classical_nodes=classical_nodes,
    )
    scale = probe.classical_time(probe.phases[0], classical_nodes)
    work = classical_phase_seconds / scale
    circuit = Circuit(
        num_qubits=min(20, technology.num_qubits),
        depth=100,
        geometry=geometry,
        name=f"std-{technology.name}",
    )
    return vqe_like(
        iterations=iterations,
        classical_work=work,
        circuit=circuit,
        shots=shots,
        classical_nodes=classical_nodes,
        min_classical_nodes=min_classical_nodes,
        name=name or f"std-{technology.name}-{iterations}it",
    )


def run_campaign(
    strategy: IntegrationStrategy,
    apps: Sequence[HybridApplication],
    technology: QPUTechnology,
    classical_nodes: int = 32,
    vqpus_per_qpu: int = 1,
    background_rho: float = 0.0,
    background_horizon: float = 0.0,
    seed: int = 0,
    submit_times: Optional[Sequence[float]] = None,
    scheduling_cycle: float = 0.0,
) -> tuple[List[RunRecord], Environment]:
    """Run ``apps`` under ``strategy`` in a fresh environment.

    Returns the per-app records plus the environment (for facility
    metrics).  Background classical load of intensity
    ``background_rho`` is injected over ``background_horizon`` when
    requested.
    """
    env = make_environment(
        classical_nodes=classical_nodes,
        technology=technology,
        vqpus_per_qpu=vqpus_per_qpu,
        seed=seed,
        scheduling_cycle=scheduling_cycle,
    )
    if background_rho > 0 and background_horizon > 0:
        start_background(env, background_rho, background_horizon)
    driver = CampaignDriver(env, strategy)
    driver.launch_all(list(apps), submit_times)
    records = driver.collect()
    return records, env
