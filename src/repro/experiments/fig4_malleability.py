"""E5 — Fig 4: malleable jobs (shrink/grow around quantum phases).

Two scenarios straight from the paper's Section 4 discussion:

1. *Single queue wait* — under a saturated classical partition, the
   malleable job queues once while the equivalent workflow re-queues at
   every step: the malleable turnaround wins and its queue-wait count
   is one.
2. *Resource return* — on a slow (neutral-atom) QPU, the malleable job
   releases almost all classical nodes during the >30 min quantum
   phases; held node-seconds collapse versus exclusive co-scheduling,
   while the retained minimal allocation restores the full node count
   in one reconfiguration ("faster resumption") instead of a fresh
   queue wait.
"""

from __future__ import annotations

from repro.experiments.common import run_campaign, standard_hybrid_app
from repro.experiments.harness import ExperimentResult
from repro.metrics.stats import mean
from repro.quantum.technology import NEUTRAL_ATOM, SUPERCONDUCTING
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.malleability import MalleableStrategy
from repro.strategies.workflow import WorkflowStrategy


def run(
    seed: int = 0,
    iterations: int = 5,
    background_rho: float = 1.15,
    horizon: float = 8 * 3600.0,
    reconfiguration_cost: float = 5.0,
    warmup: float = 3600.0,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E5",
        title="Malleability: single job, elastic resources (Fig 4)",
        description=(
            "A malleable hybrid job shrinks its classical allocation to "
            "the minimum during quantum phases and grows back afterwards; "
            "it queues once, unlike a workflow, and returns nodes during "
            "long quantum phases, unlike exclusive co-scheduling."
        ),
        parameters={
            "iterations": iterations,
            "background_rho": background_rho,
            "reconfiguration_cost_s": reconfiguration_cost,
            "seed": seed,
        },
    )

    # -- Scenario 1: saturated classical partition, short phases ---------------
    rows = []
    records_by_strategy = {}
    for strategy in (
        CoScheduleStrategy(),
        WorkflowStrategy(),
        MalleableStrategy(reconfiguration_cost=reconfiguration_cost),
    ):
        app = standard_hybrid_app(
            SUPERCONDUCTING,
            iterations=iterations,
            classical_phase_seconds=300.0,
            classical_nodes=8,
            min_classical_nodes=1,
        )
        records, env = run_campaign(
            strategy,
            [app],
            SUPERCONDUCTING,
            classical_nodes=32,
            background_rho=background_rho,
            background_horizon=horizon,
            seed=seed,
            submit_times=[warmup],
        )
        record = records[0]
        records_by_strategy[strategy.name] = record
        rows.append(
            [
                strategy.name,
                round(record.turnaround or 0.0, 1),
                len(record.queue_waits),
                round(record.total_queue_wait, 1),
                round(record.classical_efficiency, 3),
                record.details.get("resizes", 0),
                record.details.get("final_state"),
            ]
        )
    result.add_table(
        "Saturated classical partition (rho=%.2f), 300 s phases, "
        "superconducting QPU" % background_rho,
        [
            "strategy",
            "turnaround_s",
            "queue entries",
            "queue_wait_s",
            "classical_eff",
            "resizes",
            "state",
        ],
        rows,
    )

    malleable = records_by_strategy["malleable"]
    workflow = records_by_strategy["workflow"]
    result.check(
        "the malleable job queues exactly once",
        len(malleable.queue_waits) == 1,
        detail=f"{len(malleable.queue_waits)} queue entries",
    )
    result.check(
        "under a saturated queue, malleability avoids the workflow's "
        "repeated queueing and turns around faster",
        (malleable.turnaround or 0) < (workflow.turnaround or 0),
        detail=(
            f"malleable {malleable.turnaround:.0f}s vs "
            f"workflow {workflow.turnaround:.0f}s"
        ),
    )

    # -- Scenario 2: neutral atom, long quantum phases --------------------------
    rows2 = []
    na_records = {}
    for strategy in (
        CoScheduleStrategy(),
        MalleableStrategy(reconfiguration_cost=reconfiguration_cost),
    ):
        app = standard_hybrid_app(
            NEUTRAL_ATOM,
            iterations=2,
            classical_phase_seconds=300.0,
            classical_nodes=16,
            min_classical_nodes=1,
            shots=2000,
        )
        records, env = run_campaign(
            strategy,
            [app],
            NEUTRAL_ATOM,
            classical_nodes=32,
            seed=seed,
        )
        record = records[0]
        na_records[strategy.name] = record
        grow_waits = record.details.get("grow_waits_s", [])
        rows2.append(
            [
                strategy.name,
                round(record.turnaround or 0.0, 1),
                round(record.classical_held_node_seconds, 1),
                round(record.classical_efficiency, 3),
                round(mean(grow_waits), 2) if grow_waits else 0.0,
                record.details.get("final_state"),
            ]
        )
    result.add_table(
        "Neutral-atom QPU (quantum phases > 30 min incl. calibration), "
        "idle cluster",
        [
            "strategy",
            "turnaround_s",
            "classical_held_node_s",
            "classical_eff",
            "mean_grow_wait_s",
            "state",
        ],
        rows2,
    )
    na_malleable = na_records["malleable"]
    na_coschedule = na_records["coschedule"]
    result.check(
        "during long quantum phases the malleable job returns the "
        "classical nodes: held node-seconds fall by > 3x vs exclusive "
        "co-scheduling",
        na_malleable.classical_held_node_seconds
        < na_coschedule.classical_held_node_seconds / 3.0,
        detail=(
            f"malleable {na_malleable.classical_held_node_seconds:.0f} "
            f"vs coschedule "
            f"{na_coschedule.classical_held_node_seconds:.0f} node-s"
        ),
    )
    grow_waits = na_malleable.details.get("grow_waits_s", [])
    result.check(
        "resumption is fast: on an uncontended cluster the regrow is "
        "granted immediately (grow wait ~ 0)",
        bool(grow_waits) and max(grow_waits) < 1.0,
        detail=f"grow waits {grow_waits}",
    )
    reconfig_overhead = (na_malleable.turnaround or 0) - (
        na_coschedule.turnaround or 0
    )
    resizes = na_malleable.details.get("resizes", 0)
    result.check(
        "the malleability price is the reconfiguration cost "
        "(turnaround delta ~ resizes x cost)",
        reconfig_overhead
        <= resizes * reconfiguration_cost * 1.5 + 1.0,
        detail=(
            f"delta {reconfig_overhead:.1f}s for {resizes} resizes "
            f"at {reconfiguration_cost}s"
        ),
    )
    return result
