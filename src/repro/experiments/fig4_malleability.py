"""E5 — Fig 4: malleable jobs (shrink/grow around quantum phases).

Two scenarios straight from the paper's Section 4 discussion:

1. *Single queue wait* — under a saturated classical partition, the
   malleable job queues once while the equivalent workflow re-queues at
   every step: the malleable turnaround wins and its queue-wait count
   is one.
2. *Resource return* — on a slow (neutral-atom) QPU, the malleable job
   releases almost all classical nodes during the >30 min quantum
   phases; held node-seconds collapse versus exclusive co-scheduling,
   while the retained minimal allocation restores the full node count
   in one reconfiguration ("faster resumption") instead of a fresh
   queue wait.

The scenario x strategy grid (non-rectangular: the workflow only
appears under the saturated queue) runs through the sweep engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.experiments.common import (
    campaign_scenario,
    run_campaign,
    standard_hybrid_app,
)
from repro.experiments.harness import (
    ExperimentResult,
    attach_sweep_failures,
)
from repro.experiments.resilience import ChaosSpec, FailurePolicy
from repro.experiments.sweep import SweepSpec, run_sweep, sweep_cache
from repro.metrics.stats import mean
from repro.quantum.technology import NEUTRAL_ATOM, SUPERCONDUCTING
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.malleability import MalleableStrategy
from repro.strategies.workflow import WorkflowStrategy


def _make_strategy(name: str, reconfiguration_cost: float):
    if name == "coschedule":
        return CoScheduleStrategy()
    if name == "workflow":
        return WorkflowStrategy()
    return MalleableStrategy(reconfiguration_cost=reconfiguration_cost)


def _run_point(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One (scenario, strategy) cell; returns the record's table fields."""
    strategy = _make_strategy(
        params["strategy"], params["reconfiguration_cost"]
    )
    if params["scenario"] == "saturated":
        app = standard_hybrid_app(
            SUPERCONDUCTING,
            iterations=params["iterations"],
            classical_phase_seconds=300.0,
            classical_nodes=8,
            min_classical_nodes=1,
        )
        records, env = run_campaign(
            strategy,
            [app],
            scenario=campaign_scenario(
                SUPERCONDUCTING,
                classical_nodes=32,
                background_rho=params["background_rho"],
                background_horizon=params["horizon"],
                seed=seed,
                name="fig4-saturated",
            ),
            submit_times=[params["warmup"]],
        )
    else:
        app = standard_hybrid_app(
            NEUTRAL_ATOM,
            iterations=2,
            classical_phase_seconds=300.0,
            classical_nodes=16,
            min_classical_nodes=1,
            shots=2000,
        )
        records, env = run_campaign(
            strategy,
            [app],
            scenario=campaign_scenario(
                NEUTRAL_ATOM,
                classical_nodes=32,
                seed=seed,
                name="fig4-neutral-atom",
            ),
        )
    del env
    record = records[0]
    return {
        "turnaround": record.turnaround or 0.0,
        "queue_entries": len(record.queue_waits),
        "total_queue_wait": record.total_queue_wait,
        "classical_efficiency": record.classical_efficiency,
        "classical_held_node_seconds": record.classical_held_node_seconds,
        "resizes": record.details.get("resizes", 0),
        "final_state": record.details.get("final_state"),
        "grow_waits_s": list(record.details.get("grow_waits_s", [])),
    }


def sweep_spec(
    seed: int = 0,
    iterations: int = 5,
    background_rho: float = 1.15,
    horizon: float = 8 * 3600.0,
    reconfiguration_cost: float = 5.0,
    warmup: float = 3600.0,
) -> SweepSpec:
    points = [
        {"scenario": "saturated", "strategy": name}
        for name in ("coschedule", "workflow", "malleable")
    ] + [
        {"scenario": "neutral_atom", "strategy": name}
        for name in ("coschedule", "malleable")
    ]
    return SweepSpec(
        experiment_id="E5",
        explicit=points,
        constants={
            "iterations": iterations,
            "background_rho": background_rho,
            "horizon": horizon,
            "reconfiguration_cost": reconfiguration_cost,
            "warmup": warmup,
        },
        base_seed=seed,
        seed_mode="shared",
    )


def run(
    seed: int = 0,
    iterations: int = 5,
    background_rho: float = 1.15,
    horizon: float = 8 * 3600.0,
    reconfiguration_cost: float = 5.0,
    warmup: float = 3600.0,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    policy: Optional[FailurePolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    resume: bool = False,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E5",
        title="Malleability: single job, elastic resources (Fig 4)",
        description=(
            "A malleable hybrid job shrinks its classical allocation to "
            "the minimum during quantum phases and grows back afterwards; "
            "it queues once, unlike a workflow, and returns nodes during "
            "long quantum phases, unlike exclusive co-scheduling."
        ),
        parameters={
            "iterations": iterations,
            "background_rho": background_rho,
            "reconfiguration_cost_s": reconfiguration_cost,
            "seed": seed,
        },
    )

    rows: List[List[Any]] = []
    rows2: List[List[Any]] = []
    records_by_strategy: Dict[str, Dict[str, Any]] = {}
    na_records: Dict[str, Dict[str, Any]] = {}

    def aggregate(point, metrics: Dict[str, Any]) -> None:
        name = point.params["strategy"]
        if point.params["scenario"] == "saturated":
            records_by_strategy[name] = metrics
            rows.append(
                [
                    name,
                    round(metrics["turnaround"], 1),
                    metrics["queue_entries"],
                    round(metrics["total_queue_wait"], 1),
                    round(metrics["classical_efficiency"], 3),
                    metrics["resizes"],
                    metrics["final_state"],
                ]
            )
        else:
            na_records[name] = metrics
            grow_waits = metrics["grow_waits_s"]
            rows2.append(
                [
                    name,
                    round(metrics["turnaround"], 1),
                    round(metrics["classical_held_node_seconds"], 1),
                    round(metrics["classical_efficiency"], 3),
                    round(mean(grow_waits), 2) if grow_waits else 0.0,
                    metrics["final_state"],
                ]
            )

    sweep_result = run_sweep(
        sweep_spec(
            seed=seed,
            iterations=iterations,
            background_rho=background_rho,
            horizon=horizon,
            reconfiguration_cost=reconfiguration_cost,
            warmup=warmup,
        ),
        _run_point,
        workers=workers,
        cache=sweep_cache(cache_dir),
        on_result=aggregate,
        policy=policy,
        chaos=chaos,
        journal=cache_dir or None,
        resume=resume,
    )
    if attach_sweep_failures(result, sweep_result):
        return result

    # -- Scenario 1: saturated classical partition, short phases ---------------
    result.add_table(
        "Saturated classical partition (rho=%.2f), 300 s phases, "
        "superconducting QPU" % background_rho,
        [
            "strategy",
            "turnaround_s",
            "queue entries",
            "queue_wait_s",
            "classical_eff",
            "resizes",
            "state",
        ],
        rows,
    )

    malleable = records_by_strategy["malleable"]
    workflow = records_by_strategy["workflow"]
    result.check(
        "the malleable job queues exactly once",
        malleable["queue_entries"] == 1,
        detail=f"{malleable['queue_entries']} queue entries",
    )
    result.check(
        "under a saturated queue, malleability avoids the workflow's "
        "repeated queueing and turns around faster",
        malleable["turnaround"] < workflow["turnaround"],
        detail=(
            f"malleable {malleable['turnaround']:.0f}s vs "
            f"workflow {workflow['turnaround']:.0f}s"
        ),
    )

    # -- Scenario 2: neutral atom, long quantum phases --------------------------
    result.add_table(
        "Neutral-atom QPU (quantum phases > 30 min incl. calibration), "
        "idle cluster",
        [
            "strategy",
            "turnaround_s",
            "classical_held_node_s",
            "classical_eff",
            "mean_grow_wait_s",
            "state",
        ],
        rows2,
    )
    na_malleable = na_records["malleable"]
    na_coschedule = na_records["coschedule"]
    result.check(
        "during long quantum phases the malleable job returns the "
        "classical nodes: held node-seconds fall by > 3x vs exclusive "
        "co-scheduling",
        na_malleable["classical_held_node_seconds"]
        < na_coschedule["classical_held_node_seconds"] / 3.0,
        detail=(
            f"malleable {na_malleable['classical_held_node_seconds']:.0f} "
            f"vs coschedule "
            f"{na_coschedule['classical_held_node_seconds']:.0f} node-s"
        ),
    )
    grow_waits = na_malleable["grow_waits_s"]
    result.check(
        "resumption is fast: on an uncontended cluster the regrow is "
        "granted immediately (grow wait ~ 0)",
        bool(grow_waits) and max(grow_waits) < 1.0,
        detail=f"grow waits {grow_waits}",
    )
    reconfig_overhead = (
        na_malleable["turnaround"] - na_coschedule["turnaround"]
    )
    resizes = na_malleable["resizes"]
    result.check(
        "the malleability price is the reconfiguration cost "
        "(turnaround delta ~ resizes x cost)",
        reconfig_overhead
        <= resizes * reconfiguration_cost * 1.5 + 1.0,
        detail=(
            f"delta {reconfig_overhead:.1f}s for {resizes} resizes "
            f"at {reconfiguration_cost}s"
        ),
    )
    return result
