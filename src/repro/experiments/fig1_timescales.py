"""E1 — Fig 1: time scales of quantum jobs/shots per technology.

Regenerates the paper's Fig 1 as a table: per technology, the duration
of one shot, of a standard 1000-shot job, and of a job *including* the
calibration the technology imposes (Fig 1's caption includes
register-geometry calibration for neutral atoms).  Each duration is
both computed analytically from the timing model and *measured* on the
simulated device, and must fall in the figure's qualitative band.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentResult
from repro.metrics.report import format_duration
from repro.quantum.technology import (
    TECHNOLOGIES,
    fig1_reference_bands,
    standard_job,
)
from repro.scenarios import FleetSpec, ScenarioSpec, TopologySpec, build

#: Fig 1 orders technologies fastest job first.
_ORDER = [
    "photonic",
    "annealer",
    "superconducting",
    "trapped_ion",
    "neutral_atom",
]


def device_scenario(technology_name: str) -> ScenarioSpec:
    """A minimal single-device facility for bare-metal measurement."""
    return ScenarioSpec(
        name=f"fig1-{technology_name}",
        description="One QPU, no load: measure raw job time scales.",
        topology=TopologySpec(classical_nodes=1),
        fleet=FleetSpec(technology=technology_name),
    )


def run(seed: int = 0, shots: int = 1000) -> ExperimentResult:
    """Regenerate Fig 1's time-scale table."""
    result = ExperimentResult(
        experiment_id="E1",
        title="Time scales of quantum jobs/shots (Fig 1)",
        description=(
            "Shot and job durations per QPU technology, measured on the "
            "simulated device; neutral-atom jobs include register-geometry "
            "calibration as in the figure's caption."
        ),
        parameters={"shots": shots},
    )
    bands = fig1_reference_bands()
    rows = []
    for name in _ORDER:
        technology = TECHNOLOGIES[name]
        circuit, job_shots = standard_job(technology, shots=shots)
        shot = technology.shot_time(circuit)
        job = technology.execution_time(circuit, job_shots)
        job_with_cal = technology.job_time_with_calibration(
            circuit, job_shots
        )

        # Measure on a simulated device (deterministic: no jitter).
        env = build(device_scenario(name))
        qpu = env.primary_qpu()
        completion = qpu.run(circuit, job_shots)
        measured = env.kernel.run(until=completion)
        measured_total = (
            measured.execution_time + measured.calibration_time
        )

        low, high = bands[name]
        rows.append(
            [
                name,
                format_duration(shot),
                format_duration(job),
                format_duration(job_with_cal),
                format_duration(measured_total),
                f"{format_duration(low)} - {format_duration(high)}",
            ]
        )
        result.check(
            f"{name}: job duration (incl. calibration) lands in the "
            f"Fig 1 band",
            low <= measured_total <= high,
            detail=(
                f"measured {measured_total:.3g}s, band [{low:.3g}, "
                f"{high:.3g}]s"
            ),
        )
    result.add_table(
        f"Quantum job time scales ({shots} shots of a standard kernel)",
        [
            "technology",
            "shot",
            "job (exec)",
            "job (+calibration)",
            "measured",
            "Fig 1 band",
        ],
        rows,
    )

    # The figure's headline: the spread across technologies covers
    # orders of magnitude.
    durations = [
        TECHNOLOGIES[name].job_time_with_calibration(
            *standard_job(TECHNOLOGIES[name], shots=shots)
        )
        for name in _ORDER
    ]
    spread = max(durations) / min(durations)
    result.check(
        "job durations span >= 3 orders of magnitude across technologies",
        spread >= 1e3,
        detail=f"spread factor {spread:.3g}",
    )
    result.check(
        "superconducting jobs are second-scale while neutral-atom jobs "
        "exceed 30 min (the paper's Listing 1 discussion)",
        durations[_ORDER.index("superconducting")] < 60.0
        and durations[_ORDER.index("neutral_atom")] > 1800.0,
    )
    return result
