"""Fault-tolerant campaign execution: policies, outcomes, journal, chaos.

The sweep engine fans millions-of-points campaigns across worker
processes; this module holds the fault-tolerance vocabulary it speaks:

- :class:`FailurePolicy` — per-point retry budget with bounded
  backoff, per-point wall-clock timeout, and graceful degradation
  (``on_error="collect"``) instead of aborting the whole campaign.
- :class:`PointOutcome` — the structured record every point ends with
  (ok / failed / timed_out / crashed, attempt count, error text,
  traceback, per-attempt seconds), collected in
  :class:`~repro.experiments.sweep.SweepResult.outcomes`.
- :class:`RunJournal` — a durable JSONL journal of terminal outcomes
  written next to the :class:`~repro.experiments.sweep.SweepCache`, so
  a SIGKILL'd campaign resumes skipping both completed *and*
  permanently-failed points.
- :class:`ChaosSpec` — a deterministic, seedable fault injector
  (raise / hang / die at chosen points and attempts) that exercises
  every recovery path in tests without flaky timing.

None of this perturbs per-point seed derivation: a retried attempt
re-runs the *same* ``(params, seed)``, so every point that completes is
byte-identical to a serial, chaos-free run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ChaosError, ConfigurationError, JournalLockedError
from repro.sim.rng import derive_seed

try:  # POSIX: advisory locks die with their holder (SIGKILL-safe).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Terminal point statuses (the only values ``PointOutcome.status``
#: takes).
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMED_OUT = "timed_out"
STATUS_CRASHED = "crashed"
STATUSES = (STATUS_OK, STATUS_FAILED, STATUS_TIMED_OUT, STATUS_CRASHED)

#: Chaos actions an attempt can be assigned.
CHAOS_OK = "ok"
CHAOS_RAISE = "raise"
CHAOS_HANG = "hang"
CHAOS_DIE = "die"
CHAOS_ACTIONS = (CHAOS_OK, CHAOS_RAISE, CHAOS_HANG, CHAOS_DIE)

#: Exit code a chaos-killed worker dies with (visible in core logs).
CHAOS_EXIT_CODE = 113


@dataclass(frozen=True)
class FailurePolicy:
    """How one sweep point may fail, retry, and degrade.

    Parameters
    ----------
    max_attempts:
        Executions a point gets before its failure becomes terminal
        (raising runner or timeout both consume an attempt).
    timeout_seconds:
        Per-point wall-clock budget per attempt.  Exceeding it kills
        the worker pool (a hung worker cannot be cancelled), rebuilds
        it, and either retries the point or records ``timed_out``.
    on_error:
        ``"raise"`` (default) aborts the sweep on the first terminal
        failure — the historical behaviour.  ``"collect"`` records a
        :class:`PointOutcome` for the failed point (its value is
        ``None``) and keeps going.
    backoff_seconds:
        Delay before the second attempt; doubles each retry
        (``backoff_multiplier``) up to ``max_backoff_seconds``.
    max_crashes:
        Times a point may take a worker down with it (pool marked
        broken) before it is terminally ``crashed`` instead of being
        resubmitted forever.

    >>> FailurePolicy(max_attempts=3).backoff_for(1)
    0.0
    >>> FailurePolicy(backoff_seconds=1.0, max_backoff_seconds=3.0).backoff_for(3)
    3.0
    """

    max_attempts: int = 1
    timeout_seconds: Optional[float] = None
    on_error: str = "raise"
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 30.0
    max_crashes: int = 3
    backoff_jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )
        if self.on_error not in ("raise", "collect"):
            raise ConfigurationError(
                f"on_error must be 'raise' or 'collect', got "
                f"{self.on_error!r}"
            )
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ConfigurationError("backoff seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.max_crashes < 1:
            raise ConfigurationError(
                f"max_crashes must be >= 1, got {self.max_crashes}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError(
                f"backoff_jitter must be in [0, 1], got "
                f"{self.backoff_jitter}"
            )

    @property
    def collects(self) -> bool:
        return self.on_error == "collect"

    def backoff_for(self, failures: int, key: Optional[str] = None) -> float:
        """Bounded delay before the attempt following ``failures``.

        With a ``key`` (the point's or stage's identity), the delay is
        spread by deterministic per-key jitter — a factor in
        ``[1 - backoff_jitter, 1]`` drawn from a counter-based hash of
        ``(key, failures)`` — so a pool of points that all failed at
        once does not retry in lockstep and re-thunder the same herd.
        The jitter is a pure function of the key, never of wall time
        or worker identity, so serial and parallel runs sleep the same
        schedule and byte-identity of results is untouched.

        >>> policy = FailurePolicy(backoff_seconds=1.0,
        ...                        max_backoff_seconds=3.0)
        >>> policy.backoff_for(3)
        3.0
        >>> a = policy.backoff_for(3, key="point-a")
        >>> a == policy.backoff_for(3, key="point-a")  # deterministic
        True
        >>> 0.0 < a <= 3.0
        True
        """
        if self.backoff_seconds <= 0.0 or failures < 1:
            return 0.0
        delay = self.backoff_seconds * (
            self.backoff_multiplier ** (failures - 1)
        )
        delay = min(delay, self.max_backoff_seconds)
        if key is None or self.backoff_jitter <= 0.0:
            return delay
        draw = derive_seed(0, f"backoff:{key}:{failures}")
        u = (draw % (2**53)) / float(2**53)
        return delay * (1.0 - self.backoff_jitter * u)


@dataclass
class PointOutcome:
    """The terminal record of one sweep point's execution.

    ``attempts`` counts every execution that *started* (including ones
    that crashed their worker); ``attempt_seconds`` is index-aligned
    with them.  ``error``/``traceback`` describe the last failure (both
    ``None`` when ``status == "ok"``).  ``cached`` marks a value served
    from the :class:`~repro.experiments.sweep.SweepCache` without
    executing; ``resumed`` marks an outcome replayed from a
    :class:`RunJournal` instead of re-executed.
    """

    index: int
    key: str
    status: str
    attempts: int = 1
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempt_seconds: List[float] = field(default_factory=list)
    cached: bool = False
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def describe(self) -> str:
        """One-line human summary (used by failure tables and errors)."""
        text = f"point {self.index} [{self.key}]: {self.status} " \
               f"after {self.attempts} attempt(s)"
        if self.error:
            text += f" — {self.error}"
        return text

    def to_json_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "PointOutcome":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


# -- durable journals --------------------------------------------------------

#: Journals holding live locks, so forked children can drop their
#: inherited handles (a flock is shared across fork; see
#: ``JsonlJournal._drop_inherited_handles``).
_LIVE_JOURNALS: "weakref.WeakSet" = None  # initialised lazily


def _register_fork_guard(journal: "JsonlJournal") -> None:
    global _LIVE_JOURNALS
    if _LIVE_JOURNALS is None:
        _LIVE_JOURNALS = weakref.WeakSet()
        if hasattr(os, "register_at_fork"):
            os.register_at_fork(
                after_in_child=lambda: [
                    entry._drop_inherited_handles()
                    for entry in list(_LIVE_JOURNALS or ())
                ]
            )
    _LIVE_JOURNALS.add(journal)


class JsonlJournal:
    """Durable append-only JSONL journal with locking and compaction.

    The shared machinery behind :class:`RunJournal` (point granularity)
    and :class:`repro.campaigns.journal.CampaignJournal` (stage
    granularity):

    - every record is flushed and fsync'd as it is appended, so the
      journal survives a SIGKILL mid-campaign (a torn final line is
      skipped on load, not fatal);
    - an exclusive lockfile (``<journal>.lock``, ``flock``-based) is
      taken before the first write — a second live process pointed at
      the same journal raises
      :class:`~repro.errors.JournalLockedError` instead of silently
      interleaving records; the kernel releases the lock when its
      holder dies, so crashed runs never leave stale locks;
    - :meth:`close` compacts the file — rewrites it atomically keeping
      only the latest record per key — so a journal that is resumed
      over and over cannot grow without bound.

    Subclasses define the record type via :meth:`_encode_record`,
    :meth:`_decode_record` and :meth:`_record_key`.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._handle = None
        self._lock_handle = None
        self._wrote = False

    # -- record-type hooks ---------------------------------------------------

    def _encode_record(self, record: Any) -> Dict[str, Any]:
        raise NotImplementedError

    def _decode_record(self, data: Mapping[str, Any]) -> Optional[Any]:
        """Record for one parsed line, or ``None`` to skip it."""
        raise NotImplementedError

    def _record_key(self, record: Any) -> str:
        """The identity later records supersede (compaction/load key)."""
        raise NotImplementedError

    # -- locking -------------------------------------------------------------

    @property
    def lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def _drop_inherited_handles(self) -> None:
        """Forked-child half of the lock contract (see :func:`acquire`).

        A ``flock`` belongs to the open file *description*, which fork
        shares between parent and child: a pool worker that outlives a
        SIGKILL'd orchestrator would keep the journal locked forever.
        Closing the child's inherited handles (without touching the
        parent's) guarantees the lock dies exactly when its owning
        process does.
        """
        for attribute in ("_lock_handle", "_handle"):
            handle = getattr(self, attribute)
            if handle is not None:
                try:
                    handle.close()
                except OSError:  # pragma: no cover
                    pass
                setattr(self, attribute, None)

    def acquire(self) -> None:
        """Take the exclusive writer lock (idempotent).

        Raises :class:`~repro.errors.JournalLockedError` when another
        *live* process holds it.  On platforms without ``fcntl`` the
        guard degrades to no locking.
        """
        if self._lock_handle is not None or fcntl is None:
            return
        _register_fork_guard(self)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.lock_path, "a+")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            pid = "unknown"
            try:
                handle.seek(0)
                pid = handle.read(32).strip() or "unknown"
            except OSError:  # pragma: no cover - unreadable lock file
                pass
            handle.close()
            raise JournalLockedError(
                f"journal {self.path} is locked by another live process "
                f"(pid {pid}); two concurrent writers would interleave "
                "records — wait for it or point this run at a different "
                "journal directory"
            ) from None
        handle.truncate(0)
        handle.write(f"{os.getpid()}\n")
        handle.flush()
        self._lock_handle = handle

    def _release_lock(self) -> None:
        if self._lock_handle is not None:
            try:
                self._lock_handle.close()
            except OSError:  # pragma: no cover
                pass
            self._lock_handle = None

    # -- journal operations --------------------------------------------------

    def load(self) -> Dict[str, Any]:
        """Record key -> last record (tolerates a torn tail).

        A process killed mid-``record`` leaves a truncated final line;
        it is skipped, not fatal — exactly the crash the journal is
        for.
        """
        records: Dict[str, Any] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = self._decode_record(json.loads(line))
                    except (ValueError, TypeError):
                        continue
                    if record is not None:
                        records[self._record_key(record)] = record
        except OSError:
            return {}
        return records

    def record(self, record: Any) -> None:
        """Durably append one record (lock + flush + fsync)."""
        if self._handle is None:
            self.acquire()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps(self._encode_record(record), sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        self._wrote = True
        try:
            os.fsync(self._handle.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass

    def compact(self) -> int:
        """Atomically rewrite keeping the latest record per key.

        Returns the number of superseded lines dropped.  Without
        compaction the journal grows without bound across resumes —
        every re-executed point appends a fresh terminal line on top
        of its journaled history.  The rewrite goes through a temp
        file + fsync + ``os.replace``, so a crash mid-compaction
        leaves either the old or the new journal, never a torn one.
        """
        self._close_handle()
        if not self.path.exists():
            return 0
        records = self.load()
        lines = [
            json.dumps(self._encode_record(record), sort_keys=True)
            for record in records.values()
        ]
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                before = sum(1 for line in handle if line.strip())
        except OSError:
            before = len(lines)
        if before <= len(lines):
            return 0
        handle = tempfile.NamedTemporaryFile(
            "w",
            dir=self.path.parent,
            suffix=".tmp",
            delete=False,
            encoding="utf-8",
        )
        try:
            with handle:
                handle.write("\n".join(lines) + ("\n" if lines else ""))
                handle.flush()
                try:
                    os.fsync(handle.fileno())
                except OSError:  # pragma: no cover
                    pass
            os.replace(handle.name, self.path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return before - len(lines)

    def reset(self) -> None:
        """Truncate the journal (a fresh, non-resuming run).

        Keeps the writer lock if held: a reset is the prologue of a
        fresh run that is about to write.
        """
        self._close_handle()
        try:
            self.path.unlink()
        except OSError:
            pass

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        """Compact (when this run wrote anything), close, unlock."""
        if self._wrote:
            try:
                self.compact()
            except OSError:  # pragma: no cover - compaction is advisory
                pass
            self._wrote = False
        self._close_handle()
        self._release_lock()


class RunJournal(JsonlJournal):
    """Append-only JSONL journal of terminal point outcomes.

    One line per terminal outcome, flushed and fsync'd as it happens,
    so the journal survives a SIGKILL mid-campaign.  The file name
    binds the journal to ``(experiment id, runner, code version)`` —
    resuming after a code change starts a fresh journal rather than
    replaying stale outcomes.

    Resume contract (enforced by ``run_sweep``): a journaled ``ok``
    point is served from the sweep cache without re-executing; a
    journaled permanent failure is replayed as its recorded outcome
    (under ``on_error="collect"``) without re-executing.

    Locking and compaction come from :class:`JsonlJournal`: a second
    concurrent writer raises
    :class:`~repro.errors.JournalLockedError`, and :meth:`close`
    compacts superseded outcomes away.
    """

    @classmethod
    def for_sweep(
        cls,
        directory: os.PathLike,
        experiment_id: str,
        runner_name: str,
        code_version: str,
    ) -> "RunJournal":
        """The journal file for one (spec, runner, code) identity."""
        digest = hashlib.sha256(
            f"{experiment_id}\n{runner_name}\n{code_version}".encode("utf-8")
        ).hexdigest()[:12]
        slug = "".join(
            ch if (ch.isalnum() or ch in "-_") else "-"
            for ch in experiment_id
        )
        return cls(Path(directory) / f"{slug}-{digest}.journal.jsonl")

    def _encode_record(self, record: PointOutcome) -> Dict[str, Any]:
        return record.to_json_dict()

    def _decode_record(
        self, data: Mapping[str, Any]
    ) -> Optional[PointOutcome]:
        outcome = PointOutcome.from_json_dict(data)
        return outcome if outcome.status in STATUSES else None

    def _record_key(self, record: PointOutcome) -> str:
        return record.key


# -- deterministic chaos harness ---------------------------------------------


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic, seedable fault injection for sweep executions.

    Two composable modes:

    - **Plan mode** — ``plan`` maps a point *index* to the action of
      each of its attempts, in order (attempts beyond the plan run
      clean).  ``ChaosSpec(plan={3: ("die", "ok")})`` kills the worker
      running point 3 on its first attempt and lets the retry through.
    - **Rate mode** — ``seed`` plus ``raise_rate`` / ``hang_rate`` /
      ``die_rate`` draw an action per ``(point, attempt)`` from a
      counter-based hash of the chaos seed: the same spec injects the
      same faults at the same coordinates in every process, at any
      worker count.  Rates only apply to the first
      ``attempts_affected`` attempts, so a sweep with enough retries
      deterministically completes.
    - **Stage mode** — ``stage_plan`` maps a campaign *stage name* to
      the actions of its attempts, and ``stage_rates=True`` applies
      the rate draws at stage boundaries too (keyed by stage name).
      Stage chaos is injected by the campaign engine in the
      *orchestrating* process, right at the stage boundary — so a
      stage-level ``die`` is a whole-campaign SIGKILL, the exact crash
      ``campaign --resume`` recovers from.

    Actions: ``"raise"`` raises :class:`~repro.errors.ChaosError`,
    ``"hang"`` sleeps ``hang_seconds`` (long past any sane timeout),
    ``"die"`` hard-exits the worker process (``os._exit``), breaking
    the pool.  Injection happens *before* the point runner is invoked,
    so chaos never perturbs the runner's RNG — completed values stay
    byte-identical with and without chaos.

    >>> chaos = ChaosSpec(plan={2: ("raise",)})
    >>> [chaos.action_for(i, 1) for i in range(4)]
    ['ok', 'ok', 'raise', 'ok']
    >>> chaos.action_for(2, 2)
    'ok'
    >>> rated = ChaosSpec(seed=7, raise_rate=0.5)
    >>> rated.action_for(0, 1) == rated.action_for(0, 1)
    True
    >>> rated.action_for(0, 2)  # beyond attempts_affected: clean
    'ok'
    >>> staged = ChaosSpec(stage_plan={"grid": ("raise", "ok")})
    >>> (staged.action_for_stage("grid", 1),
    ...  staged.action_for_stage("grid", 2),
    ...  staged.action_for_stage("report", 1))
    ('raise', 'ok', 'ok')
    """

    plan: Mapping[int, Sequence[str]] = field(default_factory=dict)
    seed: int = 0
    raise_rate: float = 0.0
    hang_rate: float = 0.0
    die_rate: float = 0.0
    attempts_affected: int = 1
    hang_seconds: float = 3600.0
    stage_plan: Mapping[str, Sequence[str]] = field(default_factory=dict)
    stage_rates: bool = False

    def __post_init__(self) -> None:
        normalised: Dict[int, Tuple[str, ...]] = {}
        for index, actions in dict(self.plan).items():
            actions = tuple(actions)
            for action in actions:
                if action not in CHAOS_ACTIONS:
                    raise ConfigurationError(
                        f"unknown chaos action {action!r} "
                        f"(expected one of {CHAOS_ACTIONS})"
                    )
            normalised[int(index)] = actions
        object.__setattr__(self, "plan", normalised)
        staged: Dict[str, Tuple[str, ...]] = {}
        for stage, actions in dict(self.stage_plan).items():
            actions = tuple(actions)
            for action in actions:
                if action not in CHAOS_ACTIONS:
                    raise ConfigurationError(
                        f"unknown chaos action {action!r} for stage "
                        f"{stage!r} (expected one of {CHAOS_ACTIONS})"
                    )
            staged[str(stage)] = actions
        object.__setattr__(self, "stage_plan", staged)
        total = self.raise_rate + self.hang_rate + self.die_rate
        if not 0.0 <= total <= 1.0:
            raise ConfigurationError(
                "chaos rates must be >= 0 and sum to <= 1, got "
                f"raise={self.raise_rate} hang={self.hang_rate} "
                f"die={self.die_rate}"
            )
        if self.attempts_affected < 0:
            raise ConfigurationError("attempts_affected must be >= 0")
        if self.hang_seconds <= 0:
            raise ConfigurationError("hang_seconds must be > 0")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSpec":
        """Build from a JSON-style mapping (plan keys may be strings)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ConfigurationError(
                f"unknown ChaosSpec fields: {sorted(unknown)}"
            )
        return cls(**dict(data))

    def _rated_action(self, counter_key: str, attempt: int) -> str:
        """Rate-mode draw for one (coordinate, attempt) counter key."""
        if attempt > self.attempts_affected:
            return CHAOS_OK
        total = self.raise_rate + self.hang_rate + self.die_rate
        if total <= 0.0:
            return CHAOS_OK
        draw = derive_seed(self.seed, counter_key)
        u = (draw % (2**53)) / float(2**53)
        if u < self.die_rate:
            return CHAOS_DIE
        if u < self.die_rate + self.hang_rate:
            return CHAOS_HANG
        if u < total:
            return CHAOS_RAISE
        return CHAOS_OK

    def action_for(self, point_index: int, attempt: int) -> str:
        """The action for attempt ``attempt`` (1-based) of one point."""
        actions = self.plan.get(point_index)
        if actions is not None:
            if attempt <= len(actions):
                return actions[attempt - 1]
            return CHAOS_OK
        return self._rated_action(f"chaos:{point_index}:{attempt}", attempt)

    def action_for_stage(self, stage: str, attempt: int) -> str:
        """The action for attempt ``attempt`` (1-based) of one stage.

        Stage-granular chaos: an explicit ``stage_plan`` entry wins;
        otherwise the rate draws apply only when ``stage_rates`` is
        set (sweep-point rates and stage rates would otherwise couple
        through one flag).
        """
        actions = self.stage_plan.get(stage)
        if actions is not None:
            if attempt <= len(actions):
                return actions[attempt - 1]
            return CHAOS_OK
        if not self.stage_rates:
            return CHAOS_OK
        return self._rated_action(f"chaos-stage:{stage}:{attempt}", attempt)

    def needs_isolation(self) -> bool:
        """Whether any injected fault must run in a worker process.

        ``die`` would kill the orchestrating process and ``hang``
        would block it forever; both force pool execution even at
        ``workers=1``.
        """
        if self.die_rate > 0.0 or self.hang_rate > 0.0:
            return True
        return any(
            action in (CHAOS_DIE, CHAOS_HANG)
            for actions in self.plan.values()
            for action in actions
        )

    def _apply(self, action: str, where: str) -> None:
        if action == CHAOS_RAISE:
            raise ChaosError(f"chaos: injected failure at {where}")
        if action == CHAOS_HANG:
            time.sleep(self.hang_seconds)
            raise ChaosError(f"chaos: hang elapsed at {where}")
        if action == CHAOS_DIE:
            os._exit(CHAOS_EXIT_CODE)

    def inject(self, point_index: int, attempt: int) -> None:
        """Apply this spec's action for one attempt (worker-side)."""
        self._apply(
            self.action_for(point_index, attempt),
            f"point {point_index} attempt {attempt}",
        )

    def inject_stage(self, stage: str, attempt: int) -> None:
        """Apply this spec's stage action (orchestrator-side).

        Called by the campaign engine at the stage boundary, *before*
        the stage is dispatched: ``raise``/``hang`` surface as a failed
        stage attempt (retryable under the stage's policy), ``die``
        hard-exits the orchestrating process — indistinguishable from
        a SIGKILL at that boundary, which is exactly what the
        crash-resume suite wants to rehearse.
        """
        self._apply(
            self.action_for_stage(stage, attempt),
            f"stage {stage!r} attempt {attempt}",
        )


# -- reporting helpers -------------------------------------------------------

#: Column headers for :func:`failure_rows` tables.
FAILURE_HEADERS = ("point", "key", "status", "attempts", "error")


def failure_rows(outcomes: Sequence[PointOutcome]) -> List[List[Any]]:
    """Table rows (one per non-ok outcome) for failure summaries."""
    rows = []
    for outcome in outcomes:
        if outcome.ok:
            continue
        rows.append(
            [
                outcome.index,
                outcome.key,
                outcome.status,
                outcome.attempts,
                (outcome.error or "")[:120],
            ]
        )
    return rows
