"""Fault-tolerant campaign execution: policies, outcomes, journal, chaos.

The sweep engine fans millions-of-points campaigns across worker
processes; this module holds the fault-tolerance vocabulary it speaks:

- :class:`FailurePolicy` — per-point retry budget with bounded
  backoff, per-point wall-clock timeout, and graceful degradation
  (``on_error="collect"``) instead of aborting the whole campaign.
- :class:`PointOutcome` — the structured record every point ends with
  (ok / failed / timed_out / crashed, attempt count, error text,
  traceback, per-attempt seconds), collected in
  :class:`~repro.experiments.sweep.SweepResult.outcomes`.
- :class:`RunJournal` — a durable JSONL journal of terminal outcomes
  written next to the :class:`~repro.experiments.sweep.SweepCache`, so
  a SIGKILL'd campaign resumes skipping both completed *and*
  permanently-failed points.
- :class:`ChaosSpec` — a deterministic, seedable fault injector
  (raise / hang / die at chosen points and attempts) that exercises
  every recovery path in tests without flaky timing.

None of this perturbs per-point seed derivation: a retried attempt
re-runs the *same* ``(params, seed)``, so every point that completes is
byte-identical to a serial, chaos-free run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ChaosError, ConfigurationError
from repro.sim.rng import derive_seed

#: Terminal point statuses (the only values ``PointOutcome.status``
#: takes).
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMED_OUT = "timed_out"
STATUS_CRASHED = "crashed"
STATUSES = (STATUS_OK, STATUS_FAILED, STATUS_TIMED_OUT, STATUS_CRASHED)

#: Chaos actions an attempt can be assigned.
CHAOS_OK = "ok"
CHAOS_RAISE = "raise"
CHAOS_HANG = "hang"
CHAOS_DIE = "die"
CHAOS_ACTIONS = (CHAOS_OK, CHAOS_RAISE, CHAOS_HANG, CHAOS_DIE)

#: Exit code a chaos-killed worker dies with (visible in core logs).
CHAOS_EXIT_CODE = 113


@dataclass(frozen=True)
class FailurePolicy:
    """How one sweep point may fail, retry, and degrade.

    Parameters
    ----------
    max_attempts:
        Executions a point gets before its failure becomes terminal
        (raising runner or timeout both consume an attempt).
    timeout_seconds:
        Per-point wall-clock budget per attempt.  Exceeding it kills
        the worker pool (a hung worker cannot be cancelled), rebuilds
        it, and either retries the point or records ``timed_out``.
    on_error:
        ``"raise"`` (default) aborts the sweep on the first terminal
        failure — the historical behaviour.  ``"collect"`` records a
        :class:`PointOutcome` for the failed point (its value is
        ``None``) and keeps going.
    backoff_seconds:
        Delay before the second attempt; doubles each retry
        (``backoff_multiplier``) up to ``max_backoff_seconds``.
    max_crashes:
        Times a point may take a worker down with it (pool marked
        broken) before it is terminally ``crashed`` instead of being
        resubmitted forever.

    >>> FailurePolicy(max_attempts=3).backoff_for(1)
    0.0
    >>> FailurePolicy(backoff_seconds=1.0, max_backoff_seconds=3.0).backoff_for(3)
    3.0
    """

    max_attempts: int = 1
    timeout_seconds: Optional[float] = None
    on_error: str = "raise"
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 30.0
    max_crashes: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError(
                f"timeout_seconds must be > 0, got {self.timeout_seconds}"
            )
        if self.on_error not in ("raise", "collect"):
            raise ConfigurationError(
                f"on_error must be 'raise' or 'collect', got "
                f"{self.on_error!r}"
            )
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ConfigurationError("backoff seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.max_crashes < 1:
            raise ConfigurationError(
                f"max_crashes must be >= 1, got {self.max_crashes}"
            )

    @property
    def collects(self) -> bool:
        return self.on_error == "collect"

    def backoff_for(self, failures: int) -> float:
        """Bounded delay before the attempt following ``failures``."""
        if self.backoff_seconds <= 0.0 or failures < 1:
            return 0.0
        delay = self.backoff_seconds * (
            self.backoff_multiplier ** (failures - 1)
        )
        return min(delay, self.max_backoff_seconds)


@dataclass
class PointOutcome:
    """The terminal record of one sweep point's execution.

    ``attempts`` counts every execution that *started* (including ones
    that crashed their worker); ``attempt_seconds`` is index-aligned
    with them.  ``error``/``traceback`` describe the last failure (both
    ``None`` when ``status == "ok"``).  ``cached`` marks a value served
    from the :class:`~repro.experiments.sweep.SweepCache` without
    executing; ``resumed`` marks an outcome replayed from a
    :class:`RunJournal` instead of re-executed.
    """

    index: int
    key: str
    status: str
    attempts: int = 1
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempt_seconds: List[float] = field(default_factory=list)
    cached: bool = False
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def describe(self) -> str:
        """One-line human summary (used by failure tables and errors)."""
        text = f"point {self.index} [{self.key}]: {self.status} " \
               f"after {self.attempts} attempt(s)"
        if self.error:
            text += f" — {self.error}"
        return text

    def to_json_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "PointOutcome":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})


# -- durable run journal -----------------------------------------------------


class RunJournal:
    """Append-only JSONL journal of terminal point outcomes.

    One line per terminal outcome, flushed and fsync'd as it happens,
    so the journal survives a SIGKILL mid-campaign.  The file name
    binds the journal to ``(experiment id, runner, code version)`` —
    resuming after a code change starts a fresh journal rather than
    replaying stale outcomes.

    Resume contract (enforced by ``run_sweep``): a journaled ``ok``
    point is served from the sweep cache without re-executing; a
    journaled permanent failure is replayed as its recorded outcome
    (under ``on_error="collect"``) without re-executing.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self._handle = None

    @classmethod
    def for_sweep(
        cls,
        directory: os.PathLike,
        experiment_id: str,
        runner_name: str,
        code_version: str,
    ) -> "RunJournal":
        """The journal file for one (spec, runner, code) identity."""
        digest = hashlib.sha256(
            f"{experiment_id}\n{runner_name}\n{code_version}".encode("utf-8")
        ).hexdigest()[:12]
        slug = "".join(
            ch if (ch.isalnum() or ch in "-_") else "-"
            for ch in experiment_id
        )
        return cls(Path(directory) / f"{slug}-{digest}.journal.jsonl")

    def load(self) -> Dict[str, PointOutcome]:
        """Point key -> last terminal outcome (tolerates a torn tail).

        A process killed mid-``record`` leaves a truncated final line;
        it is skipped, not fatal — exactly the crash the journal is
        for.
        """
        outcomes: Dict[str, PointOutcome] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                        outcome = PointOutcome.from_json_dict(data)
                    except (ValueError, TypeError):
                        continue
                    if outcome.status in STATUSES:
                        outcomes[outcome.key] = outcome
        except OSError:
            return {}
        return outcomes

    def record(self, outcome: PointOutcome) -> None:
        """Durably append one terminal outcome (flush + fsync)."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps(outcome.to_json_dict(), sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:  # pragma: no cover - exotic filesystems
            pass

    def reset(self) -> None:
        """Truncate the journal (a fresh, non-resuming run)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# -- deterministic chaos harness ---------------------------------------------


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic, seedable fault injection for sweep executions.

    Two composable modes:

    - **Plan mode** — ``plan`` maps a point *index* to the action of
      each of its attempts, in order (attempts beyond the plan run
      clean).  ``ChaosSpec(plan={3: ("die", "ok")})`` kills the worker
      running point 3 on its first attempt and lets the retry through.
    - **Rate mode** — ``seed`` plus ``raise_rate`` / ``hang_rate`` /
      ``die_rate`` draw an action per ``(point, attempt)`` from a
      counter-based hash of the chaos seed: the same spec injects the
      same faults at the same coordinates in every process, at any
      worker count.  Rates only apply to the first
      ``attempts_affected`` attempts, so a sweep with enough retries
      deterministically completes.

    Actions: ``"raise"`` raises :class:`~repro.errors.ChaosError`,
    ``"hang"`` sleeps ``hang_seconds`` (long past any sane timeout),
    ``"die"`` hard-exits the worker process (``os._exit``), breaking
    the pool.  Injection happens *before* the point runner is invoked,
    so chaos never perturbs the runner's RNG — completed values stay
    byte-identical with and without chaos.

    >>> chaos = ChaosSpec(plan={2: ("raise",)})
    >>> [chaos.action_for(i, 1) for i in range(4)]
    ['ok', 'ok', 'raise', 'ok']
    >>> chaos.action_for(2, 2)
    'ok'
    >>> rated = ChaosSpec(seed=7, raise_rate=0.5)
    >>> rated.action_for(0, 1) == rated.action_for(0, 1)
    True
    >>> rated.action_for(0, 2)  # beyond attempts_affected: clean
    'ok'
    """

    plan: Mapping[int, Sequence[str]] = field(default_factory=dict)
    seed: int = 0
    raise_rate: float = 0.0
    hang_rate: float = 0.0
    die_rate: float = 0.0
    attempts_affected: int = 1
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        normalised: Dict[int, Tuple[str, ...]] = {}
        for index, actions in dict(self.plan).items():
            actions = tuple(actions)
            for action in actions:
                if action not in CHAOS_ACTIONS:
                    raise ConfigurationError(
                        f"unknown chaos action {action!r} "
                        f"(expected one of {CHAOS_ACTIONS})"
                    )
            normalised[int(index)] = actions
        object.__setattr__(self, "plan", normalised)
        total = self.raise_rate + self.hang_rate + self.die_rate
        if not 0.0 <= total <= 1.0:
            raise ConfigurationError(
                "chaos rates must be >= 0 and sum to <= 1, got "
                f"raise={self.raise_rate} hang={self.hang_rate} "
                f"die={self.die_rate}"
            )
        if self.attempts_affected < 0:
            raise ConfigurationError("attempts_affected must be >= 0")
        if self.hang_seconds <= 0:
            raise ConfigurationError("hang_seconds must be > 0")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSpec":
        """Build from a JSON-style mapping (plan keys may be strings)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise ConfigurationError(
                f"unknown ChaosSpec fields: {sorted(unknown)}"
            )
        return cls(**dict(data))

    def action_for(self, point_index: int, attempt: int) -> str:
        """The action for attempt ``attempt`` (1-based) of one point."""
        actions = self.plan.get(point_index)
        if actions is not None:
            if attempt <= len(actions):
                return actions[attempt - 1]
            return CHAOS_OK
        if attempt > self.attempts_affected:
            return CHAOS_OK
        total = self.raise_rate + self.hang_rate + self.die_rate
        if total <= 0.0:
            return CHAOS_OK
        draw = derive_seed(self.seed, f"chaos:{point_index}:{attempt}")
        u = (draw % (2**53)) / float(2**53)
        if u < self.die_rate:
            return CHAOS_DIE
        if u < self.die_rate + self.hang_rate:
            return CHAOS_HANG
        if u < total:
            return CHAOS_RAISE
        return CHAOS_OK

    def needs_isolation(self) -> bool:
        """Whether any injected fault must run in a worker process.

        ``die`` would kill the orchestrating process and ``hang``
        would block it forever; both force pool execution even at
        ``workers=1``.
        """
        if self.die_rate > 0.0 or self.hang_rate > 0.0:
            return True
        return any(
            action in (CHAOS_DIE, CHAOS_HANG)
            for actions in self.plan.values()
            for action in actions
        )

    def inject(self, point_index: int, attempt: int) -> None:
        """Apply this spec's action for one attempt (worker-side)."""
        action = self.action_for(point_index, attempt)
        if action == CHAOS_RAISE:
            raise ChaosError(
                f"chaos: injected failure at point {point_index} "
                f"attempt {attempt}"
            )
        if action == CHAOS_HANG:
            time.sleep(self.hang_seconds)
            raise ChaosError(
                f"chaos: hang elapsed at point {point_index} "
                f"attempt {attempt}"
            )
        if action == CHAOS_DIE:
            os._exit(CHAOS_EXIT_CODE)


# -- reporting helpers -------------------------------------------------------

#: Column headers for :func:`failure_rows` tables.
FAILURE_HEADERS = ("point", "key", "status", "attempts", "error")


def failure_rows(outcomes: Sequence[PointOutcome]) -> List[List[Any]]:
    """Table rows (one per non-ok outcome) for failure summaries."""
    rows = []
    for outcome in outcomes:
        if outcome.ok:
            continue
        rows.append(
            [
                outcome.index,
                outcome.key,
                outcome.status,
                outcome.attempts,
                (outcome.error or "")[:120],
            ]
        )
    return rows
