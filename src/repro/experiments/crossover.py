"""E6 — Section 4 synthesis: "a one-size-fits-all solution is unlikely".

Sweeps the two axes the paper identifies as deciding which strategy
wins — the *direction of workload imbalance* (QPU technology: seconds
vs minutes vs >30 min per quantum task) and the *cluster load* — and
runs a multi-tenant campaign under every strategy in every cell.

The regime map the paper sketches in prose is then checked explicitly:

- short quantum tasks (superconducting) + several tenants →
  virtual QPUs dominate (co-scheduling serialises the tenants);
- long quantum tasks (neutral atom) → virtualisation is marginal;
  strategies that release classical nodes during quantum phases
  (workflow, malleable) waste far fewer node-seconds;
- saturated classical queue → malleability beats workflows (one queue
  wait instead of one per step);
- exclusive co-scheduling never wins a cell on efficiency.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.common import (
    campaign_scenario,
    run_campaign,
    standard_hybrid_app,
)
from repro.experiments.harness import (
    ExperimentResult,
    attach_sweep_failures,
)
from repro.experiments.resilience import ChaosSpec, FailurePolicy
from repro.experiments.sweep import SweepSpec, run_sweep, sweep_cache
from repro.metrics.stats import mean
from repro.quantum.technology import (
    NEUTRAL_ATOM,
    SUPERCONDUCTING,
    TRAPPED_ION,
    QPUTechnology,
)
from repro.strategies.coschedule import CoScheduleStrategy
from repro.strategies.elastic import ElasticQPUStrategy
from repro.strategies.malleability import MalleableStrategy
from repro.strategies.vqpu import VQPUStrategy
from repro.strategies.workflow import WorkflowStrategy

#: (label, technology, tenants, iterations, classical phase seconds, shots)
_TECH_CELLS: List[Tuple[str, QPUTechnology, int, int, float, int]] = [
    ("superconducting", SUPERCONDUCTING, 6, 4, 120.0, 1000),
    ("trapped_ion", TRAPPED_ION, 4, 3, 120.0, 500),
    ("neutral_atom", NEUTRAL_ATOM, 2, 2, 300.0, 1000),
]

_LOADS = (("low load", 0.0), ("high load", 1.1))

_STRATEGY_NAMES = ("coschedule", "workflow", "vqpu", "malleable", "elastic")


def _make_strategy(name: str, tenants: int):
    """Strategy instance + VQPU count for one grid point."""
    if name == "coschedule":
        return CoScheduleStrategy(), 1
    if name == "workflow":
        return WorkflowStrategy(), 1
    if name == "vqpu":
        return VQPUStrategy(), tenants
    if name == "malleable":
        return MalleableStrategy(), 1
    # Extension (S4): single job, QPU attached per quantum phase.
    return ElasticQPUStrategy(), 1


def _run_cell(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """One grid point: a full multi-tenant campaign in a fresh facility."""
    tech_label = params["technology"]
    name = params["strategy"]
    rho = dict(_LOADS)[params["load"]]
    _, technology, tenants, iterations, phase_s, shots = next(
        cell for cell in _TECH_CELLS if cell[0] == tech_label
    )
    strategy, vqpus = _make_strategy(name, tenants)
    apps = [
        standard_hybrid_app(
            technology,
            iterations=iterations,
            classical_phase_seconds=phase_s,
            classical_nodes=4,
            min_classical_nodes=1,
            shots=shots,
            name=f"{tech_label[:2]}-{name}-t{index}",
        )
        for index in range(tenants)
    ]
    submit_at = params["warmup"] if rho > 0 else 0.0
    records, env = run_campaign(
        strategy,
        apps,
        scenario=campaign_scenario(
            technology,
            classical_nodes=8 * tenants,
            vqpus_per_qpu=vqpus,
            background_rho=rho,
            background_horizon=params["horizon"],
            scheduling_cycle=params["scheduling_cycle"],
            seed=seed,
            name=f"crossover-{tech_label}-{name}",
        ),
        submit_times=[submit_at] * tenants,
    )
    del env
    turnarounds = [r.turnaround for r in records if r.turnaround]
    wasted = sum(
        max(
            r.classical_held_node_seconds - r.classical_useful_node_seconds,
            0.0,
        )
        for r in records
    )
    completed = sum(
        1 for r in records if r.details.get("final_state") == "completed"
    )
    return {
        "mean_turnaround": mean(turnarounds),
        "wasted_node_s": wasted,
        "completed": completed,
        "queue_entries": mean(
            [float(len(r.queue_waits)) for r in records]
        ),
        "tenants": tenants,
    }


def sweep_spec(
    seed: int = 0,
    horizon: float = 10 * 3600.0,
    scheduling_cycle: float = 30.0,
    warmup: float = 3600.0,
) -> SweepSpec:
    """The experiment's grid: technology x load x strategy (30 points)."""
    return SweepSpec(
        experiment_id="E6",
        axes={
            "technology": [cell[0] for cell in _TECH_CELLS],
            "load": [label for label, _ in _LOADS],
            "strategy": list(_STRATEGY_NAMES),
        },
        constants={
            "horizon": horizon,
            "scheduling_cycle": scheduling_cycle,
            "warmup": warmup,
        },
        base_seed=seed,
        # Matched universes: every cell faces the same random
        # environment, as the paper's comparison requires.
        seed_mode="shared",
    )


def run(
    seed: int = 0,
    horizon: float = 10 * 3600.0,
    scheduling_cycle: float = 30.0,
    warmup: float = 3600.0,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    policy: Optional[FailurePolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    resume: bool = False,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E6",
        title="Strategy crossover map (Section 4 synthesis)",
        description=(
            "Multi-tenant campaigns under every strategy across QPU "
            "technology x cluster load (30 s scheduler cycle, as on "
            "production systems).  Winners by mean tenant turnaround "
            "and by wasted classical node-seconds reproduce the "
            "paper's regime assignments."
        ),
        parameters={"seed": seed, "scheduling_cycle_s": scheduling_cycle},
    )
    rows: List[List[Any]] = []
    cells: Dict[Tuple[str, str], Dict[str, Dict[str, float]]] = {}

    def aggregate(point, metrics: Dict[str, float]) -> None:
        """Streamed in point order: table rows land deterministically."""
        tech_label = point.params["technology"]
        load_label = point.params["load"]
        name = point.params["strategy"]
        cells.setdefault((tech_label, load_label), {})[name] = metrics
        rows.append(
            [
                tech_label,
                load_label,
                name,
                round(metrics["mean_turnaround"], 1),
                round(metrics["wasted_node_s"], 1),
                f"{metrics['completed']:.0f}/{metrics['tenants']:.0f}",
            ]
        )

    sweep_result = run_sweep(
        sweep_spec(
            seed=seed,
            horizon=horizon,
            scheduling_cycle=scheduling_cycle,
            warmup=warmup,
        ),
        _run_cell,
        workers=workers,
        cache=sweep_cache(cache_dir),
        on_result=aggregate,
        policy=policy,
        chaos=chaos,
        journal=cache_dir or None,
        resume=resume,
    )
    if attach_sweep_failures(result, sweep_result):
        return result
    result.add_table(
        "Crossover sweep (mean tenant turnaround / wasted classical "
        "node-seconds)",
        [
            "technology",
            "load",
            "strategy",
            "mean_turnaround_s",
            "wasted_node_s",
            "completed",
        ],
        rows,
    )

    def winner(cell: Dict[str, Dict[str, float]], metric: str) -> str:
        return min(cell, key=lambda name: cell[name][metric])

    # Regime table (the paper's qualitative map, measured).
    regime_rows = []
    for key, cell in cells.items():
        regime_rows.append(
            [
                key[0],
                key[1],
                winner(cell, "mean_turnaround"),
                winner(cell, "wasted_node_s"),
            ]
        )
    result.add_table(
        "Measured regime map",
        ["technology", "load", "best turnaround", "least waste"],
        regime_rows,
    )

    sc_low = cells[("superconducting", "low load")]
    result.check(
        "short quantum tasks, multiple tenants: VQPUs give the best "
        "turnaround (exclusive co-scheduling serialises)",
        winner(sc_low, "mean_turnaround") == "vqpu",
        detail=f"winner: {winner(sc_low, 'mean_turnaround')}",
    )
    na_low = cells[("neutral_atom", "low load")]
    vqpu_gain = (
        na_low["coschedule"]["mean_turnaround"]
        / max(na_low["vqpu"]["mean_turnaround"], 1e-9)
    )
    sc_gain = (
        sc_low["coschedule"]["mean_turnaround"]
        / max(sc_low["vqpu"]["mean_turnaround"], 1e-9)
    )
    result.check(
        "virtualisation gains shrink on slow QPUs (neutral atom) "
        "relative to fast ones (superconducting)",
        vqpu_gain < sc_gain,
        detail=f"NA gain {vqpu_gain:.2f}x vs SC gain {sc_gain:.2f}x",
    )
    result.check(
        "on slow QPUs, node-releasing strategies (workflow/malleable) "
        "waste the least classical time",
        winner(na_low, "wasted_node_s") in ("workflow", "malleable"),
        detail=f"least waste: {winner(na_low, 'wasted_node_s')}",
    )
    sc_high = cells[("superconducting", "high load")]
    result.check(
        "under a saturated classical queue, the malleable single-job "
        "approach avoids the workflow's repeated queueing (it re-enters "
        "the queue at most via regrows, never per step)",
        sc_high["malleable"]["queue_entries"]
        < sc_high["workflow"]["queue_entries"],
        detail=(
            f"malleable {sc_high['malleable']['queue_entries']:.0f} "
            f"queue entries vs workflow "
            f"{sc_high['workflow']['queue_entries']:.0f}"
        ),
    )
    coschedule_efficiency_wins = sum(
        1
        for cell in cells.values()
        if winner(cell, "wasted_node_s") == "coschedule"
    )
    result.check(
        "exclusive co-scheduling never wins a cell on wasted "
        "node-seconds (it is the 'inadequate' baseline)",
        coschedule_efficiency_wins == 0,
        detail=f"{coschedule_efficiency_wins} cells won by coschedule",
    )
    elastic_vs_vqpu = all(
        cells[("superconducting", load)]["elastic"]["mean_turnaround"]
        >= cells[("superconducting", load)]["vqpu"]["mean_turnaround"]
        * 0.95
        for load, _ in _LOADS
    )
    result.check(
        "elastic attach/detach (extension) pays a scheduler negotiation "
        "per quantum phase, so VQPUs keep the turnaround edge where "
        "kernels are shorter than the scheduling cycle "
        "(superconducting cells)",
        elastic_vs_vqpu,
    )
    return result
