"""E7 — Section 3 "Access and allocation model".

Current machines sit behind vendor REST endpoints with internal queues
and polling clients; HPC resources sit behind a batch scheduler.  This
experiment measures the per-kernel *access overhead* (client-observed
time minus device execution time) of the two models for a population of
users submitting short superconducting kernels:

- *cloud*: network latency + vendor FIFO queue + status polling;
- *batch gres*: each kernel wrapped in a batch job requesting
  ``--gres=qpu:1`` through the scheduler (with a production scheduling
  cycle).

Both models leave the seconds-scale kernel dwarfed by access machinery
once the user population grows — the gap the paper's proposals target.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.experiments.harness import (
    ExperimentResult,
    attach_sweep_failures,
)
from repro.experiments.resilience import ChaosSpec, FailurePolicy
from repro.experiments.sweep import SweepSpec, run_sweep, sweep_cache
from repro.metrics.stats import mean
from repro.quantum.circuit import Circuit
from repro.quantum.cloud import CloudQPUEndpoint
from repro.quantum.qpu import QPU
from repro.quantum.technology import SUPERCONDUCTING
from repro.scenarios import (
    FleetSpec,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    build,
)
from repro.scheduler.job import JobComponent, JobSpec
from repro.sim.kernel import Kernel
from repro.sim.monitor import SampleSeries
from repro.sim.rng import RandomStreams


def batch_access_scenario(
    scheduling_cycle: float, seed: int = 0
) -> ScenarioSpec:
    """The batch-gres access facility: tiny partition, production cycle."""
    return ScenarioSpec(
        name="access-batch",
        description=(
            "Section 3's batch access model: users wrap each kernel "
            "in a --gres=qpu:1 job behind a production scheduling "
            "cycle."
        ),
        topology=TopologySpec(classical_nodes=4),
        fleet=FleetSpec(technology="superconducting"),
        policy=PolicySpec(scheduling_cycle=scheduling_cycle),
        seed=seed,
    )


def _cloud_scenario(
    users: int, kernels_per_user: int, think_time: float, seed: int
) -> SampleSeries:
    """Users submitting via the vendor cloud endpoint."""
    kernel = Kernel()
    streams = RandomStreams(seed)
    qpu = QPU(kernel, SUPERCONDUCTING)
    endpoint = CloudQPUEndpoint(
        kernel,
        qpu,
        submission_latency=0.25,
        polling_interval=2.0,
        streams=streams,
    )
    overheads = SampleSeries("cloud-overheads")
    circuit = Circuit(10, 100, name="access-kernel")

    def user(index: int):
        rng = streams.stream(f"user{index}")
        for _ in range(kernels_per_user):
            result = yield from endpoint.execute(
                circuit, 1000, submitter=f"user{index}"
            )
            overheads.record(result.total_time - result.execution_time)
            yield kernel.timeout(float(rng.exponential(think_time)))

    for index in range(users):
        kernel.process(user(index), name=f"cloud-user{index}")
    kernel.run()
    return overheads


def _batch_scenario(
    users: int,
    kernels_per_user: int,
    think_time: float,
    seed: int,
    scheduling_cycle: float,
) -> SampleSeries:
    """Users wrapping each kernel in a batch job with a qpu gres."""
    env = build(batch_access_scenario(scheduling_cycle, seed=seed))
    overheads = SampleSeries("batch-overheads")
    circuit = Circuit(10, 100, name="access-kernel")
    technology = SUPERCONDUCTING
    expected_exec = technology.execution_time(circuit, 1000)
    walltime = expected_exec * 2 + technology.calibration_duration + 60.0

    def kernel_job_spec(index: int, sequence: int) -> JobSpec:
        def work(ctx):
            yield ctx.first_qpu().run(
                circuit, 1000, submitter=f"user{index}"
            )

        return JobSpec(
            name=f"qjob-u{index}-{sequence}",
            components=[
                JobComponent("quantum", 1, walltime, gres={"qpu": 1})
            ],
            user=f"user{index}",
            work=work,
        )

    def user(index: int):
        rng = env.streams.stream(f"user{index}")
        for sequence in range(kernels_per_user):
            submit_time = env.kernel.now
            job = yield from env.scheduler.submit_and_wait(
                kernel_job_spec(index, sequence)
            )
            elapsed = env.kernel.now - submit_time
            overheads.record(elapsed - expected_exec)
            del job
            yield env.kernel.timeout(float(rng.exponential(think_time)))

    for index in range(users):
        env.kernel.process(user(index), name=f"batch-user{index}")
    env.kernel.run()
    return overheads


def _run_point(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """One (model, user-count) cell; summary stats of the overheads."""
    if params["model"] == "cloud":
        overheads = _cloud_scenario(
            params["users"],
            params["kernels_per_user"],
            params["think_time"],
            seed,
        )
    else:
        overheads = _batch_scenario(
            params["users"],
            params["kernels_per_user"],
            params["think_time"],
            seed,
            params["scheduling_cycle"],
        )
    return {
        "mean": overheads.mean,
        "p95": overheads.percentile(95),
        "minimum": overheads.minimum,
    }


def sweep_spec(
    seed: int = 0,
    kernels_per_user: int = 8,
    think_time: float = 30.0,
    scheduling_cycle: float = 30.0,
    user_counts: tuple = (1, 4, 16),
) -> SweepSpec:
    return SweepSpec(
        experiment_id="E7",
        axes={
            "users": list(user_counts),
            "model": ["cloud", "batch"],
        },
        constants={
            "kernels_per_user": kernels_per_user,
            "think_time": think_time,
            "scheduling_cycle": scheduling_cycle,
        },
        base_seed=seed,
        seed_mode="shared",
    )


def run(
    seed: int = 0,
    kernels_per_user: int = 8,
    think_time: float = 30.0,
    scheduling_cycle: float = 30.0,
    user_counts: tuple = (1, 4, 16),
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    policy: Optional[FailurePolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    resume: bool = False,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E7",
        title="Access models: vendor cloud vs batch gres (Section 3)",
        description=(
            "Per-kernel access overhead (client time minus device "
            "execution) for users running seconds-scale kernels through "
            "the vendor cloud path (latency + queue + polling) and "
            "through batch jobs with a qpu gres (scheduler cycle + "
            "queue)."
        ),
        parameters={
            "kernels_per_user": kernels_per_user,
            "think_time_s": think_time,
            "scheduling_cycle_s": scheduling_cycle,
            "seed": seed,
        },
    )
    rows = []
    cloud_by_users: Dict[int, Dict[str, float]] = {}
    batch_by_users: Dict[int, Dict[str, float]] = {}

    def aggregate(point, metrics: Dict[str, float]) -> None:
        users = point.params["users"]
        if point.params["model"] == "cloud":
            cloud_by_users[users] = metrics
        else:
            batch_by_users[users] = metrics
            # Point order is users-major, cloud before batch: the pair
            # is complete when the batch half arrives.  Under
            # on_error="collect" the cloud half may have failed, in
            # which case the failure table stands in for this row.
            cloud = cloud_by_users.get(users)
            if cloud is None:
                return
            rows.append(
                [
                    users,
                    round(cloud["mean"], 2),
                    round(cloud["p95"], 2),
                    round(metrics["mean"], 2),
                    round(metrics["p95"], 2),
                ]
            )

    sweep_result = run_sweep(
        sweep_spec(
            seed=seed,
            kernels_per_user=kernels_per_user,
            think_time=think_time,
            scheduling_cycle=scheduling_cycle,
            user_counts=user_counts,
        ),
        _run_point,
        workers=workers,
        cache=sweep_cache(cache_dir),
        on_result=aggregate,
        policy=policy,
        chaos=chaos,
        journal=cache_dir or None,
        resume=resume,
    )
    if attach_sweep_failures(result, sweep_result):
        return result
    result.add_table(
        "Per-kernel access overhead (seconds; kernel exec ~3 s)",
        [
            "users",
            "cloud mean",
            "cloud p95",
            "batch mean",
            "batch p95",
        ],
        rows,
    )

    single_cloud = cloud_by_users[min(user_counts)]
    result.check(
        "the cloud path costs at least a polling quantum even for a "
        "single idle user",
        single_cloud["minimum"] >= 0.5,
        detail=f"min overhead {single_cloud['minimum']:.2f}s",
    )
    many = max(user_counts)
    result.check(
        "cloud overhead grows with the user population (vendor-queue "
        "contention)",
        cloud_by_users[many]["mean"] > single_cloud["mean"] * 2,
        detail=(
            f"{single_cloud['mean']:.2f}s (1 user) -> "
            f"{cloud_by_users[many]['mean']:.2f}s ({many} users)"
        ),
    )
    result.check(
        "the batch path pays the scheduling cycle per kernel: the "
        "unloaded mean overhead is about half a cycle (submissions land "
        "uniformly within the running cycle)",
        batch_by_users[min(user_counts)]["mean"] >= scheduling_cycle * 0.4,
        detail=(
            f"mean overhead "
            f"{batch_by_users[min(user_counts)]['mean']:.1f}s vs cycle "
            f"{scheduling_cycle:.0f}s"
        ),
    )
    result.check(
        "in both models the seconds-scale kernel is dwarfed by access "
        "overhead at high tenancy (overhead > 3x execution)",
        batch_by_users[many]["mean"] > 9.0
        and cloud_by_users[many]["mean"] > 9.0,
        detail=(
            f"batch {batch_by_users[many]['mean']:.1f}s, "
            f"cloud {cloud_by_users[many]['mean']:.1f}s vs ~3 s exec"
        ),
    )
    return result
