"""E4 — Fig 3: virtual QPUs / temporal interleaving.

N tenant applications — long classical computation interleaved with
short quantum kernels — share one physical superconducting QPU.  The
quantum partition exposes V virtual QPU gres units:

- V = 1 is exclusive access: tenants serialise at the *job* level
  (each holds the QPU for its full lifetime);
- V = N lets all tenants co-schedule and interleave kernels on the
  device "with minimal delays, bounded by the number of VQPUs".

The experiment regenerates Fig 3 as a sweep over V: campaign makespan,
mean tenant turnaround, physical-QPU busy fraction, and the measured
per-request interleaving delay against the (V−1)·task-time bound.

The marginal-gains caveat is also reproduced: for quantum-dominated
tenants ("the time needed by the quantum partition is comparable to or
greater than the one required to prepare the data"), virtualisation
stops helping.

The two sub-sweeps (classical-dominated V sweep, quantum-dominated
caveat pair) are one non-rectangular :class:`SweepSpec` executed
through the parallel sweep engine.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.experiments.common import (
    campaign_scenario,
    run_campaign,
    standard_hybrid_app,
)
from repro.experiments.harness import (
    ExperimentResult,
    attach_sweep_failures,
)
from repro.experiments.resilience import ChaosSpec, FailurePolicy
from repro.experiments.sweep import SweepSpec, run_sweep, sweep_cache
from repro.metrics.stats import mean
from repro.quantum.technology import SUPERCONDUCTING
from repro.strategies.vqpu import VQPUStrategy


def _tenant_apps(
    count: int,
    classical_phase_seconds: float,
    iterations: int,
    shots: int,
) -> List:
    return [
        standard_hybrid_app(
            SUPERCONDUCTING,
            iterations=iterations,
            classical_phase_seconds=classical_phase_seconds,
            classical_nodes=2,
            shots=shots,
            name=f"tenant-{index}",
        )
        for index in range(count)
    ]


def _run_point(params: Dict[str, Any], seed: int) -> Dict[str, float]:
    """One V-sweep cell: a fresh multi-tenant campaign."""
    tenants = params["tenants"]
    v = params["vqpus"]
    quantum_dominated = params["case"] == "quantum"
    apps = _tenant_apps(
        tenants,
        classical_phase_seconds=5.0 if quantum_dominated else 120.0,
        iterations=params["iterations"],
        shots=20000 if quantum_dominated else 1000,
    )
    records, env = run_campaign(
        VQPUStrategy(),
        apps,
        scenario=campaign_scenario(
            SUPERCONDUCTING,
            classical_nodes=4 * tenants,
            vqpus_per_qpu=v,
            seed=seed,
            name=f"fig3-{params['case']}-v{v}",
        ),
    )
    turnarounds = [r.turnaround for r in records if r.turnaround]
    makespan = max(
        r.end_time for r in records if r.end_time is not None
    ) - min(r.submit_time for r in records)
    qpu = env.primary_qpu()
    busy_fraction = qpu.busy.time_average(makespan)
    interleave_waits = [
        wait for r in records for wait in r.quantum_access_waits
    ]
    kernel_time = mean(
        [
            r.qpu_busy_seconds / max(len(r.quantum_access_waits), 1)
            for r in records
        ]
    )
    bound = (v - 1) * max(
        (
            r.qpu_busy_seconds / max(len(r.quantum_access_waits), 1)
            for r in records
        ),
        default=0.0,
    )
    return {
        "makespan": makespan,
        "mean_turnaround": mean(turnarounds),
        "busy_fraction": busy_fraction,
        "max_wait": max(interleave_waits, default=0.0),
        "mean_wait": mean(interleave_waits),
        "bound": bound,
        "kernel_time": kernel_time,
    }


def sweep_spec(
    seed: int = 0,
    tenants: int = 8,
    iterations: int = 4,
    vqpu_counts: tuple = (1, 2, 4, 8),
) -> SweepSpec:
    """Classical-dominated V sweep plus the quantum-dominated caveat pair."""
    points = [
        {"case": "classical", "vqpus": v} for v in vqpu_counts
    ] + [
        {"case": "quantum", "vqpus": v} for v in (1, max(vqpu_counts))
    ]
    return SweepSpec(
        experiment_id="E4",
        explicit=points,
        constants={"tenants": tenants, "iterations": iterations},
        base_seed=seed,
        seed_mode="shared",
    )


def run(
    seed: int = 0,
    tenants: int = 8,
    iterations: int = 4,
    vqpu_counts: tuple = (1, 2, 4, 8),
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    policy: Optional[FailurePolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    resume: bool = False,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="E4",
        title="Virtual QPUs: multitenant temporal interleaving (Fig 3)",
        description=(
            "N tenants with classical-dominated hybrid apps share one "
            "physical superconducting QPU through V virtual QPU gres "
            "units.  V=1 reproduces exclusive access; increasing V "
            "interleaves tenants on the device."
        ),
        parameters={
            "tenants": tenants,
            "iterations": iterations,
            "seed": seed,
        },
    )

    # Classical-dominated tenants: 120 s classical phases, ~3 s kernels.
    rows = []
    sweep: Dict[int, Dict[str, float]] = {}
    caveat_rows = []
    caveat: Dict[int, float] = {}
    kernel_times: List[float] = []

    def aggregate(point, metrics: Dict[str, float]) -> None:
        v = point.params["vqpus"]
        if point.params["case"] == "quantum":
            caveat[v] = metrics["makespan"]
            caveat_rows.append([v, round(metrics["makespan"], 1)])
            return
        sweep[v] = metrics
        kernel_times.append(metrics["kernel_time"])
        rows.append(
            [
                v,
                round(metrics["makespan"], 1),
                round(metrics["mean_turnaround"], 1),
                round(metrics["busy_fraction"], 4),
                round(metrics["mean_wait"], 2),
                round(metrics["max_wait"], 2),
                round(metrics["bound"], 2),
            ]
        )

    sweep_result = run_sweep(
        sweep_spec(
            seed=seed,
            tenants=tenants,
            iterations=iterations,
            vqpu_counts=vqpu_counts,
        ),
        _run_point,
        workers=workers,
        cache=sweep_cache(cache_dir),
        on_result=aggregate,
        policy=policy,
        chaos=chaos,
        journal=cache_dir or None,
        resume=resume,
    )
    if attach_sweep_failures(result, sweep_result):
        return result
    # The slack term of the delay-bound check uses the kernel time of
    # the last classical-dominated cell (largest V), as measured.
    kernel_time = kernel_times[-1]
    result.add_table(
        f"VQPU sweep: {tenants} classical-dominated tenants, 1 physical QPU",
        [
            "VQPUs",
            "makespan_s",
            "mean_turnaround_s",
            "qpu_busy_fraction",
            "mean_kernel_wait_s",
            "max_kernel_wait_s",
            "(V-1)*task bound_s",
        ],
        rows,
    )

    v_min, v_max = min(vqpu_counts), max(vqpu_counts)
    result.check(
        "virtualisation shortens the campaign: makespan at V=max is "
        "well below exclusive access (V=1)",
        sweep[v_max]["makespan"] < 0.5 * sweep[v_min]["makespan"],
        detail=(
            f"{sweep[v_max]['makespan']:.0f}s vs "
            f"{sweep[v_min]['makespan']:.0f}s"
        ),
    )
    result.check(
        "physical QPU utilisation rises with the VQPU count",
        sweep[v_max]["busy_fraction"] > sweep[v_min]["busy_fraction"],
        detail=(
            f"{sweep[v_min]['busy_fraction']:.4f} -> "
            f"{sweep[v_max]['busy_fraction']:.4f}"
        ),
    )
    bounded = all(
        sweep[v]["max_wait"]
        <= max(1.25 * sweep[v]["bound"], 2.0 * kernel_time)
        for v in vqpu_counts
        if v > 1
    )
    result.check(
        "per-request interleaving delay stays bounded by the number of "
        "VQPUs ((V-1) x task time, with slack for calibration)",
        bounded,
        detail=", ".join(
            f"V={v}: max {sweep[v]['max_wait']:.1f}s vs bound "
            f"{sweep[v]['bound']:.1f}s"
            for v in vqpu_counts
            if v > 1
        ),
    )

    # Marginal-gains caveat: quantum-dominated tenants (short classical
    # prep, heavy kernels) barely benefit from more VQPUs.
    result.add_table(
        "Marginal gains for quantum-dominated tenants "
        "(5 s classical prep, 20000-shot kernels)",
        ["VQPUs", "makespan_s"],
        caveat_rows,
    )
    classical_speedup = sweep[v_min]["makespan"] / sweep[v_max]["makespan"]
    quantum_speedup = caveat[1] / caveat[max(vqpu_counts)]
    result.check(
        "gains are marginal when the quantum phase is comparable to or "
        "longer than the classical one (speedup far below the "
        "classical-dominated case)",
        quantum_speedup < 0.5 * classical_speedup
        and quantum_speedup < 1.5,
        detail=(
            f"speedup {quantum_speedup:.2f}x (quantum-dominated) vs "
            f"{classical_speedup:.2f}x (classical-dominated)"
        ),
    )
    return result
