"""Sampling distributions for workload generation.

Public HPC workload archives (the Feitelson Parallel Workloads Archive,
whose traces the literature's scheduling studies replay) exhibit
heavy-tailed runtimes, power-of-two-biased job sizes and bursty
arrivals.  Real traces cannot be shipped, so these distribution objects
generate synthetic workloads with the same *shape* — the substitution
documented in DESIGN.md.

Every distribution exposes ``sample(rng) -> float`` over a
:class:`numpy.random.Generator`, plus ``mean()`` where closed-form.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError


class Distribution(Protocol):
    """Protocol for scalar sampling distributions."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""
        ...

    def mean(self) -> float:
        """Expected value."""
        ...


class Constant:
    """Degenerate distribution: always ``value``."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


class Uniform:
    """Uniform over [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ConfigurationError("high must be >= low")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class LogUniform:
    """Log-uniform over [low, high] — the classic runtime model.

    Matches the empirical observation that job runtimes are roughly
    uniform in log space across several decades.
    """

    def __init__(self, low: float, high: float) -> None:
        if low <= 0 or high < low:
            raise ConfigurationError("need 0 < low <= high")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(
            math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
        )

    def mean(self) -> float:
        if self.low == self.high:
            return self.low
        return (self.high - self.low) / (
            math.log(self.high) - math.log(self.low)
        )

    def __repr__(self) -> str:
        return f"LogUniform({self.low!r}, {self.high!r})"


class Exponential:
    """Exponential with the given mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ConfigurationError("mean must be positive")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean!r})"


class BoundedPareto:
    """Pareto truncated to [low, high]: heavy tails without outliers
    that would dominate a finite simulation."""

    def __init__(self, low: float, high: float, alpha: float = 1.5) -> None:
        if low <= 0 or high <= low:
            raise ConfigurationError("need 0 < low < high")
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        self.low = float(low)
        self.high = float(high)
        self.alpha = float(alpha)

    def sample(self, rng: np.random.Generator) -> float:
        # Inverse-CDF sampling of the truncated Pareto.
        u = float(rng.random())
        la, ha, a = self.low**self.alpha, self.high**self.alpha, self.alpha
        x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / a)
        return float(min(max(x, self.low), self.high))

    def mean(self) -> float:
        a, low, high = self.alpha, self.low, self.high
        if a == 1.0:
            return (
                math.log(high / low) * low * high / (high - low)
            )
        num = low**a / (1 - (low / high) ** a)
        return num * a / (a - 1) * (low ** (1 - a) - high ** (1 - a))

    def __repr__(self) -> str:
        return (
            f"BoundedPareto({self.low!r}, {self.high!r}, alpha={self.alpha!r})"
        )


class PowerOfTwoNodes:
    """Job-size model: powers of two between bounds, log-uniform weight.

    Parallel-workload archives show strong clustering of node counts at
    powers of two.
    """

    def __init__(self, min_nodes: int = 1, max_nodes: int = 64) -> None:
        if min_nodes <= 0 or max_nodes < min_nodes:
            raise ConfigurationError("need 0 < min_nodes <= max_nodes")
        self.choices: Sequence[int] = [
            2**p
            for p in range(
                int(math.floor(math.log2(min_nodes))),
                int(math.floor(math.log2(max_nodes))) + 1,
            )
            if min_nodes <= 2**p <= max_nodes
        ]
        if not self.choices:
            self.choices = [min_nodes]

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(list(self.choices)))

    def mean(self) -> float:
        return float(sum(self.choices)) / len(self.choices)

    def __repr__(self) -> str:
        return f"PowerOfTwoNodes({list(self.choices)!r})"
