"""Submission drivers: inject workloads into a live environment.

Two pieces every multi-tenant experiment needs:

- :func:`submit_trace` replays a (synthetic) SWF trace of rigid
  classical jobs, creating the background queue contention that makes
  per-step queue waits in the workflow strategy non-trivial (Fig 2's
  downside);
- :class:`CampaignDriver` launches a set of hybrid applications under
  one strategy, each at its own arrival time, and collects the
  :class:`~repro.strategies.base.RunRecord` results.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.scheduler.job import Job, JobComponent, JobSpec
from repro.strategies.application import HybridApplication
from repro.strategies.base import (
    Environment,
    IntegrationStrategy,
    RunRecord,
    StrategyRun,
)
from repro.workloads.swf import TraceJob


#: Maps one trace job to its resource components; returning ``None``
#: drops the job (e.g. an oversize job under a ``drop`` mapping rule).
ComponentMapper = Callable[[TraceJob], Optional[List[JobComponent]]]

#: Maps one trace job to an in-job work generator function; returning
#: ``None`` keeps the default rigid occupy-for-runtime behaviour.  The
#: scenario layer's trace source uses this to make quantum-mapped jobs
#: dispatch their kernel payload through the facility's QPU fleet.
WorkMapper = Callable[[TraceJob], Optional[Callable]]


def submit_trace(
    env: Environment,
    jobs: Iterable[TraceJob],
    partition: str = "classical",
    components_for: Optional[ComponentMapper] = None,
    work_for: Optional[WorkMapper] = None,
) -> List[Job]:
    """Schedule the replay of ``jobs``: each is submitted at its trace
    submit time.  Returns the runtime :class:`Job` records (populated
    as the simulation advances).

    By default every job becomes one rigid component on ``partition``
    sized straight from the trace.  ``components_for`` overrides that
    mapping per job — the scenario layer's trace source uses it to
    clamp oversize jobs and to route a subset to the quantum partition
    as ``qpu`` gres requests; returning ``None`` drops the job.
    ``work_for`` optionally supplies an in-job work generator for a
    job (e.g. fleet-routed kernel dispatch); jobs it declines stay
    rigid with the trace runtime as their duration.
    """
    submitted: List[Job] = []

    def default_components(
        trace_job: TraceJob,
    ) -> Optional[List[JobComponent]]:
        return [
            JobComponent(
                partition,
                trace_job.nodes,
                trace_job.requested_walltime,
            )
        ]

    mapper = components_for or default_components

    def replay(trace_job: TraceJob, components: List[JobComponent]):
        delay = trace_job.submit_time - env.kernel.now
        if delay > 0:
            yield env.kernel.timeout(delay)
        work = work_for(trace_job) if work_for is not None else None
        spec = JobSpec(
            name=f"trace-{trace_job.job_id}",
            components=components,
            user=trace_job.user,
            duration=None if work is not None else trace_job.runtime,
            work=work,
            tags={"source": "trace"},
        )
        submitted.append(env.scheduler.submit(spec))

    for trace_job in jobs:
        components = mapper(trace_job)
        if components is None:
            continue
        env.kernel.process(
            replay(trace_job, components), name=f"replay:{trace_job.job_id}"
        )
    return submitted


class CampaignDriver:
    """Launch hybrid applications under a strategy at given times."""

    def __init__(self, env: Environment, strategy: IntegrationStrategy) -> None:
        self.env = env
        self.strategy = strategy
        self.runs: List[StrategyRun] = []
        self._launchers: List[object] = []

    def launch_at(
        self, app: HybridApplication, submit_time: float
    ) -> None:
        """Schedule ``app`` to be launched at ``submit_time``."""

        def launcher():
            delay = submit_time - self.env.kernel.now
            if delay > 0:
                yield self.env.kernel.timeout(delay)
            self.runs.append(self.strategy.launch(self.env, app))

        self._launchers.append(
            self.env.kernel.process(launcher(), name=f"launch:{app.name}")
        )

    def launch_all(
        self,
        apps: Sequence[HybridApplication],
        submit_times: Optional[Sequence[float]] = None,
    ) -> None:
        """Schedule every app (simultaneously when no times given)."""
        times = submit_times or [self.env.kernel.now] * len(apps)
        if len(times) != len(apps):
            raise ValueError("submit_times length must match apps")
        for app, time in zip(apps, times):
            self.launch_at(app, time)

    def collect(self, settle_time: float = 0.0) -> List[RunRecord]:
        """Run the simulation until every launched app completes."""
        kernel = self.env.kernel
        # First let every scheduled launch materialise its run...
        for launcher in self._launchers:
            if not launcher.processed:  # type: ignore[attr-defined]
                kernel.run(until=launcher)
        # ...then drive each run to completion.
        for run in self.runs:
            if not run.done.processed:
                kernel.run(until=run.done)
        if settle_time > 0:
            kernel.run(until=kernel.now + settle_time)
        return [run.record for run in self.runs]
