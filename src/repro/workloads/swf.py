"""Standard Workload Format (SWF) style traces: synthesis, read, write.

The Parallel Workloads Archive distributes traces in SWF: one job per
line, whitespace-separated numeric fields.  We implement the subset of
fields the simulator consumes (job id, submit time, runtime, node
count, requested walltime, user) plus a generator that synthesises
traces with archive-like marginals — the documented substitution for
real traces, which are not redistributable here.

Replay transforms (:func:`rescale_trace`, :func:`truncate_trace`,
:func:`clip_trace`, :func:`loop_trace`, :func:`jitter_trace`) are the
pure half of the scenario layer's trace source
(:class:`repro.scenarios.spec.TraceSpec`): each takes and returns a
list of :class:`TraceJob` values, so the build pipeline composes them
deterministically.
"""

from __future__ import annotations

import dataclasses
import io
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Union

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import (
    Distribution,
    LogUniform,
    PowerOfTwoNodes,
)


@dataclass(frozen=True)
class TraceJob:
    """One rigid classical job of a trace."""

    job_id: int
    submit_time: float
    runtime: float
    nodes: int
    requested_walltime: float
    user: str = "user0"

    def __post_init__(self) -> None:
        if self.runtime < 0 or self.requested_walltime <= 0:
            raise WorkloadError(
                f"trace job {self.job_id}: bad runtime/walltime"
            )
        if self.nodes <= 0:
            raise WorkloadError(f"trace job {self.job_id}: bad node count")


def synthesise_trace(
    rng: np.random.Generator,
    job_count: int,
    mean_interarrival: float = 120.0,
    runtimes: Optional[Distribution] = None,
    sizes: Optional[Distribution] = None,
    walltime_overestimate: float = 2.0,
    user_count: int = 8,
) -> List[TraceJob]:
    """Generate an archive-shaped synthetic trace.

    Runtimes are log-uniform over [1 min, 12 h]; node counts cluster at
    powers of two; requested walltimes overestimate runtime by
    ``walltime_overestimate`` (users famously over-request).
    """
    if job_count < 0:
        raise WorkloadError("job_count must be >= 0")
    runtimes = runtimes or LogUniform(60.0, 12 * 3600.0)
    sizes = sizes or PowerOfTwoNodes(1, 32)
    arrivals = PoissonArrivals(mean_interarrival)
    horizon = mean_interarrival * max(job_count, 1) * 10.0
    jobs: List[TraceJob] = []
    for index, submit in enumerate(arrivals.times(rng, horizon)):
        if index >= job_count:
            break
        runtime = float(runtimes.sample(rng))
        jobs.append(
            TraceJob(
                job_id=index + 1,
                submit_time=submit,
                runtime=runtime,
                nodes=int(sizes.sample(rng)),
                requested_walltime=runtime * walltime_overestimate,
                user=f"user{int(rng.integers(0, user_count))}",
            )
        )
    return jobs


# -- SWF serialisation --------------------------------------------------------
#
# Field layout (subset of the 18 SWF columns; unused columns are -1):
#   1 job id, 2 submit, 4 runtime, 5 allocated processors (nodes for
#   us), 8 requested processors, 9 requested walltime, 12 user id.
#   Header/comment lines start with ';' (the archive standard) or '#'.

_SWF_COLUMNS = 18

_USER_PATTERN = re.compile(r"^user(\d+)$")


def _user_id_map(jobs: Sequence[TraceJob]) -> Dict[str, int]:
    """Numeric SWF user id per username in ``jobs``.

    ``"user7"`` maps to 7; any other name gets a stable synthetic id
    allocated in first-seen order, starting past both 1000 (clear of
    the synthetic generator's pool) and every numeric id the trace
    already uses, so synthetic ids never collide with real ones —
    SWF stores numeric ids only, so arbitrary usernames cannot
    round-trip verbatim.
    """
    mapping: Dict[str, int] = {}
    for job in jobs:
        match = _USER_PATTERN.match(job.user)
        # Only the canonical spelling ("user7", not "user007") claims
        # the numeric id, else two distinct names would merge.
        if match and job.user == f"user{int(match.group(1))}":
            mapping[job.user] = int(match.group(1))
    next_id = max([999, *mapping.values()]) + 1
    for job in jobs:
        if job.user not in mapping:
            mapping[job.user] = next_id
            next_id += 1
    return mapping


def write_swf(jobs: Iterable[TraceJob], sink: Union[str, TextIO]) -> None:
    """Write jobs to an SWF file or file-like object.

    Times are rounded to whole seconds (the archive convention);
    zero-duration jobs keep their 0 runtime rather than being promoted
    to one second.
    """
    jobs = list(jobs)
    own = isinstance(sink, str)
    handle: TextIO = open(sink, "w") if own else sink  # noqa: SIM115
    user_ids = _user_id_map(jobs)
    try:
        handle.write("; synthetic SWF trace generated by repro\n")
        for job in jobs:
            fields = [-1] * _SWF_COLUMNS
            fields[0] = job.job_id
            fields[1] = int(round(job.submit_time))
            fields[3] = int(round(job.runtime))
            fields[4] = job.nodes
            fields[7] = job.nodes
            fields[8] = int(round(job.requested_walltime))
            fields[11] = user_ids[job.user]
            handle.write(" ".join(str(field) for field in fields) + "\n")
    finally:
        if own:
            handle.close()


def read_swf(source: Union[str, TextIO]) -> List[TraceJob]:
    """Parse an SWF file (or file-like / literal text) into trace jobs.

    Archive conventions handled: ``;`` and ``#`` comment/header lines,
    the ``-1`` missing-field sentinel (a missing submit time clamps to
    0, missing allocated processors fall back to the *requested*
    processors column, a missing walltime falls back to the runtime),
    zero-duration jobs (kept — they are real in archive traces), and
    negative runtimes (cancelled-before-start entries, skipped).
    """
    own = isinstance(source, str)
    if own and "\n" in source:
        handle: TextIO = io.StringIO(source)
        own = False
    elif own:
        handle = open(source)  # noqa: SIM115
    else:
        handle = source
    jobs: List[TraceJob] = []
    try:
        for line_number, line in enumerate(handle, start=1):
            text = line.lstrip("\ufeff").strip()
            if not text or text.startswith((";", "#")):
                continue
            parts = text.split()
            if len(parts) < 12:
                raise WorkloadError(
                    f"SWF line {line_number}: expected >= 12 fields, "
                    f"got {len(parts)}"
                )
            try:
                job_id = int(parts[0])
                submit = float(parts[1])
                runtime = float(parts[3])
                nodes = int(float(parts[4]))
                requested_nodes = int(float(parts[7]))
                walltime = float(parts[8])
                user_id = int(parts[11])
            except ValueError as error:
                raise WorkloadError(
                    f"SWF line {line_number}: {error}"
                ) from error
            if runtime < 0:
                continue  # cancelled-before-start entries
            if nodes < 1:
                nodes = requested_nodes  # allocated missing: use request
            jobs.append(
                TraceJob(
                    job_id=job_id,
                    submit_time=max(submit, 0.0),
                    runtime=runtime,
                    nodes=max(nodes, 1),
                    requested_walltime=max(walltime, runtime, 1.0),
                    user=f"user{max(user_id, 0)}",
                )
            )
    finally:
        if own:
            handle.close()
    return jobs


# -- replay transforms --------------------------------------------------------


def rescale_trace(
    jobs: Sequence[TraceJob],
    time_scale: float = 1.0,
    runtime_scale: float = 1.0,
) -> List[TraceJob]:
    """Rescale submit times and durations.

    ``time_scale`` multiplies submit times (0.5 compresses the trace,
    doubling the arrival rate at unchanged per-job work);
    ``runtime_scale`` multiplies runtimes *and* requested walltimes
    (preserving each job's overestimation factor).
    """
    if time_scale <= 0 or runtime_scale <= 0:
        raise WorkloadError("trace scale factors must be > 0")
    if time_scale == 1.0 and runtime_scale == 1.0:
        return list(jobs)
    return [
        dataclasses.replace(
            job,
            submit_time=job.submit_time * time_scale,
            runtime=job.runtime * runtime_scale,
            requested_walltime=job.requested_walltime * runtime_scale,
        )
        for job in jobs
    ]


def truncate_trace(
    jobs: Sequence[TraceJob], limit: Optional[int]
) -> List[TraceJob]:
    """The first ``limit`` jobs in submit order (all when ``None``)."""
    ordered = sorted(jobs, key=lambda job: job.submit_time)
    if limit is None:
        return ordered
    if limit < 1:
        raise WorkloadError("trace limit must be >= 1")
    return ordered[:limit]


def clip_trace(jobs: Sequence[TraceJob], horizon: float) -> List[TraceJob]:
    """Drop jobs submitted at or after ``horizon``."""
    return [job for job in jobs if job.submit_time < horizon]


def loop_trace(
    jobs: Sequence[TraceJob],
    horizon: float,
    period: Optional[float] = None,
) -> List[TraceJob]:
    """Repeat the trace until its arrivals fill ``horizon``.

    Each pass shifts submit times by ``period`` (default: the trace
    span plus one mean interarrival, so the wrap-around gap matches the
    trace's own rhythm; a zero-span trace — a single job or an
    all-at-once burst — has no rhythm, so it repeats once its longest
    job would have finished rather than every second) and renumbers
    job ids so every replayed job stays unique.  Jobs submitted at or
    after the horizon are dropped.
    """
    ordered = sorted(jobs, key=lambda job: job.submit_time)
    if not ordered or horizon <= 0:
        return []
    span = ordered[-1].submit_time - ordered[0].submit_time
    if period is None:
        if len(ordered) > 1 and span > 0:
            gap = span / (len(ordered) - 1)
            period = span + max(gap, 1.0)
        else:
            period = max(max(job.runtime for job in ordered), 1.0)
    if period <= 0:
        raise WorkloadError("trace loop period must be > 0")
    ids = [job.job_id for job in ordered]
    id_stride = max(ids) - min(ids) + 1
    looped: List[TraceJob] = []
    offset = 0.0
    generation = 0
    while offset < horizon:
        exhausted = True
        for job in ordered:
            submit = job.submit_time + offset
            if submit >= horizon:
                break
            exhausted = False
            looped.append(
                dataclasses.replace(
                    job,
                    job_id=job.job_id + generation * id_stride,
                    submit_time=submit,
                )
            )
        if exhausted:
            break
        generation += 1
        offset += period
    return looped


def jitter_trace(
    jobs: Sequence[TraceJob], rng, sigma: float
) -> List[TraceJob]:
    """Perturb submit times with zero-mean Gaussian noise.

    One draw per job from ``rng`` (clamped at 0 so nothing submits
    before the simulation starts), then re-sorted by submit time —
    deterministic given the generator's state, so replications that
    derive distinct seeds get distinct but reproducible realisations.
    """
    if sigma < 0:
        raise WorkloadError("trace jitter must be >= 0")
    if sigma == 0:
        return list(jobs)
    jittered = [
        dataclasses.replace(
            job,
            submit_time=max(
                job.submit_time + float(rng.normal(0.0, sigma)), 0.0
            ),
        )
        for job in jobs
    ]
    jittered.sort(key=lambda job: job.submit_time)
    return jittered
