"""Random hybrid-application generation.

Produces :class:`~repro.strategies.application.HybridApplication`
instances with randomised phase structure — the simulated analogue of a
user population submitting VQE/QAOA/sampling campaigns of varying
shapes.  All randomness flows through named RNG streams for
reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.quantum.circuit import Circuit
from repro.strategies.application import (
    HybridApplication,
    Phase,
    classical,
    quantum,
)
from repro.workloads.distributions import (
    Constant,
    Distribution,
    LogUniform,
    PowerOfTwoNodes,
    Uniform,
)


@dataclass
class HybridAppConfig:
    """Knobs of the random hybrid-application population.

    Defaults model a mixed variational campaign: a handful of
    iterations, classical phases of minutes, kilo-shot kernels on
    mid-sized circuits, and a small pool of register geometries (so
    neutral-atom geometry calibration is exercised but amortised).
    """

    iterations_low: int = 2
    iterations_high: int = 8
    classical_work: Distribution = field(
        default_factory=lambda: LogUniform(60.0, 1800.0)
    )
    nodes: Distribution = field(
        default_factory=lambda: PowerOfTwoNodes(2, 16)
    )
    qubits: Distribution = field(default_factory=lambda: Uniform(4, 24))
    depth: Distribution = field(default_factory=lambda: LogUniform(20, 400))
    shots: Distribution = field(default_factory=lambda: Constant(1000))
    two_qubit_fraction: float = 0.3
    geometry_pool: Sequence[str] = ("geomA", "geomB", "geomC")
    min_nodes_fraction: float = 0.125

    def __post_init__(self) -> None:
        if not 1 <= self.iterations_low <= self.iterations_high:
            raise ConfigurationError(
                "need 1 <= iterations_low <= iterations_high"
            )
        if not self.geometry_pool:
            raise ConfigurationError("geometry_pool must be non-empty")
        if not 0.0 < self.min_nodes_fraction <= 1.0:
            raise ConfigurationError("min_nodes_fraction must be in (0, 1]")


class HybridAppGenerator:
    """Draws random applications from a :class:`HybridAppConfig`."""

    def __init__(
        self,
        rng: np.random.Generator,
        config: Optional[HybridAppConfig] = None,
        max_qubits: Optional[int] = None,
    ) -> None:
        self.rng = rng
        self.config = config or HybridAppConfig()
        #: Clamp circuit widths to the target device, when known.
        self.max_qubits = max_qubits
        self._counter = 0

    def next_app(self) -> HybridApplication:
        """Generate one application."""
        config = self.config
        rng = self.rng
        self._counter += 1
        iterations = int(
            rng.integers(config.iterations_low, config.iterations_high + 1)
        )
        nodes = max(int(config.nodes.sample(rng)), 1)
        min_nodes = max(int(round(nodes * config.min_nodes_fraction)), 1)
        geometry = str(rng.choice(list(config.geometry_pool)))
        qubits = max(int(config.qubits.sample(rng)), 1)
        if self.max_qubits is not None:
            qubits = min(qubits, self.max_qubits)
        depth = max(int(config.depth.sample(rng)), 1)
        shots = max(int(config.shots.sample(rng)), 1)
        circuit = Circuit(
            num_qubits=qubits,
            depth=depth,
            two_qubit_fraction=config.two_qubit_fraction,
            geometry=geometry,
            name=f"hyb-circ-{self._counter}",
        )
        phases: List[Phase] = []
        for _ in range(iterations):
            phases.append(classical(float(config.classical_work.sample(rng))))
            phases.append(quantum(circuit, shots))
        return HybridApplication(
            phases=phases,
            classical_nodes=nodes,
            min_classical_nodes=min_nodes,
            name=f"hybrid-{self._counter}",
        )

    def apps(self, count: int) -> List[HybridApplication]:
        """Generate ``count`` applications."""
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        return [self.next_app() for _ in range(count)]
