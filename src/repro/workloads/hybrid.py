"""Random hybrid-application generation.

Produces :class:`~repro.strategies.application.HybridApplication`
instances with randomised phase structure — the simulated analogue of a
user population submitting VQE/QAOA/sampling campaigns of varying
shapes.  All randomness flows through named RNG streams for
reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.quantum.circuit import Circuit
from repro.sim.rng import derive_seed
from repro.strategies.application import (
    HybridApplication,
    Phase,
    classical,
    quantum,
)
from repro.workloads.distributions import (
    Constant,
    Distribution,
    LogUniform,
    PowerOfTwoNodes,
    Uniform,
)


@dataclass
class HybridAppConfig:
    """Knobs of the random hybrid-application population.

    Defaults model a mixed variational campaign: a handful of
    iterations, classical phases of minutes, kilo-shot kernels on
    mid-sized circuits, and a small pool of register geometries (so
    neutral-atom geometry calibration is exercised but amortised).
    """

    iterations_low: int = 2
    iterations_high: int = 8
    classical_work: Distribution = field(
        default_factory=lambda: LogUniform(60.0, 1800.0)
    )
    nodes: Distribution = field(
        default_factory=lambda: PowerOfTwoNodes(2, 16)
    )
    qubits: Distribution = field(default_factory=lambda: Uniform(4, 24))
    depth: Distribution = field(default_factory=lambda: LogUniform(20, 400))
    shots: Distribution = field(default_factory=lambda: Constant(1000))
    two_qubit_fraction: float = 0.3
    geometry_pool: Sequence[str] = ("geomA", "geomB", "geomC")
    min_nodes_fraction: float = 0.125

    def __post_init__(self) -> None:
        if not 1 <= self.iterations_low <= self.iterations_high:
            raise ConfigurationError(
                "need 1 <= iterations_low <= iterations_high"
            )
        if not self.geometry_pool:
            raise ConfigurationError("geometry_pool must be non-empty")
        if not 0.0 < self.min_nodes_fraction <= 1.0:
            raise ConfigurationError("min_nodes_fraction must be in (0, 1]")


class HybridAppGenerator:
    """Draws random applications from a :class:`HybridAppConfig`.

    Circuit widths clamp to the execution target when it is known:
    either a fixed device's register (``max_qubits``) or a
    heterogeneous :class:`~repro.quantum.fleet.QPUFleet` (``fleet``),
    where a kernel only needs to fit *some* device — the fleet router
    picks which one at dispatch time — so the clamp is the fleet's
    largest register.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        config: Optional[HybridAppConfig] = None,
        max_qubits: Optional[int] = None,
        fleet: Optional[Any] = None,
    ) -> None:
        self.rng = rng
        self.config = config or HybridAppConfig()
        if max_qubits is None and fleet is not None:
            max_qubits = max(
                qpu.technology.num_qubits for qpu in fleet.qpus
            )
        #: Clamp circuit widths to the execution target, when known.
        self.max_qubits = max_qubits
        self._counter = 0

    def next_app(self) -> HybridApplication:
        """Generate one application."""
        config = self.config
        rng = self.rng
        self._counter += 1
        iterations = int(
            rng.integers(config.iterations_low, config.iterations_high + 1)
        )
        nodes = max(int(config.nodes.sample(rng)), 1)
        min_nodes = max(int(round(nodes * config.min_nodes_fraction)), 1)
        geometry = str(rng.choice(list(config.geometry_pool)))
        qubits = max(int(config.qubits.sample(rng)), 1)
        if self.max_qubits is not None:
            qubits = min(qubits, self.max_qubits)
        depth = max(int(config.depth.sample(rng)), 1)
        shots = max(int(config.shots.sample(rng)), 1)
        circuit = Circuit(
            num_qubits=qubits,
            depth=depth,
            two_qubit_fraction=config.two_qubit_fraction,
            geometry=geometry,
            name=f"hyb-circ-{self._counter}",
        )
        phases: List[Phase] = []
        for _ in range(iterations):
            phases.append(classical(float(config.classical_work.sample(rng))))
            phases.append(quantum(circuit, shots))
        return HybridApplication(
            phases=phases,
            classical_nodes=nodes,
            min_classical_nodes=min_nodes,
            name=f"hybrid-{self._counter}",
        )

    def apps(self, count: int) -> List[HybridApplication]:
        """Generate ``count`` applications."""
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        return [self.next_app() for _ in range(count)]


#: Bounds of the representative trace-job kernel payloads (width is
#: additionally clamped to the fleet's largest register).
_PAYLOAD_QUBITS = (4, 24)
_PAYLOAD_DEPTH = (20, 200)
_PAYLOAD_SHOTS = (500, 2000)


def trace_kernel_payload(
    job_id: int, max_qubits: int
) -> Tuple[Circuit, int]:
    """The representative kernel a hybrid trace job dispatches.

    When a replayed archive trace routes a job to the quantum
    partition (``TraceSpec.qpu_fraction``), the job carries one
    quantum kernel as its payload, dispatched through the facility's
    :class:`~repro.quantum.fleet.QPUFleet` router rather than pinned
    to a fixed device.  The payload's shape is derived by hashing the
    trace job id — seed-independent, exactly like the routing decision
    itself, so replications agree on every job's kernel.

    >>> circuit, shots = trace_kernel_payload(7, max_qubits=127)
    >>> (circuit, shots) == trace_kernel_payload(7, max_qubits=127)
    True
    >>> circuit.num_qubits <= 24 and 500 <= shots <= 2000
    True
    """
    rng = np.random.default_rng(derive_seed(job_id, "trace:kernel"))
    low, high = _PAYLOAD_QUBITS
    qubits = min(int(rng.integers(low, high + 1)), max_qubits)
    depth = int(rng.integers(_PAYLOAD_DEPTH[0], _PAYLOAD_DEPTH[1] + 1))
    shots = int(rng.integers(_PAYLOAD_SHOTS[0], _PAYLOAD_SHOTS[1] + 1))
    return (
        Circuit(
            num_qubits=max(qubits, 1),
            depth=depth,
            two_qubit_fraction=0.3,
            name=f"trace-kernel-{job_id}",
        ),
        shots,
    )
