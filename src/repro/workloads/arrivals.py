"""Arrival processes: when jobs hit the scheduler.

Poisson arrivals are the baseline; the diurnal variant modulates the
rate with a day/night cycle (thinning method), reproducing the burst
structure of production traces; :class:`TraceArrivals` replays the
recorded submit times of an archive trace verbatim.  All three share
one protocol — ``times(rng, horizon, start)`` yields arrival times in
``[start, start + horizon)`` — so workload sources are interchangeable
downstream.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


class PoissonArrivals:
    """Homogeneous Poisson process with the given mean inter-arrival."""

    def __init__(self, mean_interarrival: float) -> None:
        if mean_interarrival <= 0:
            raise ConfigurationError("mean_interarrival must be positive")
        self.mean_interarrival = float(mean_interarrival)

    @property
    def rate(self) -> float:
        return 1.0 / self.mean_interarrival

    def times(
        self, rng: np.random.Generator, horizon: float, start: float = 0.0
    ) -> Iterator[float]:
        """Yield arrival times in [start, start + horizon)."""
        now = start
        end = start + horizon
        while True:
            now += float(rng.exponential(self.mean_interarrival))
            if now >= end:
                return
            yield now


class DiurnalArrivals:
    """Poisson process with sinusoidal day/night rate modulation.

    The instantaneous rate is
    ``base_rate * (1 + amplitude * sin(2π t / period))``, sampled by
    thinning against the peak rate.
    """

    def __init__(
        self,
        mean_interarrival: float,
        amplitude: float = 0.5,
        period: float = 24 * 3600.0,
    ) -> None:
        if mean_interarrival <= 0:
            raise ConfigurationError("mean_interarrival must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.base_rate = 1.0 / mean_interarrival
        self.amplitude = amplitude
        self.period = period

    def instantaneous_rate(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def times(
        self, rng: np.random.Generator, horizon: float, start: float = 0.0
    ) -> Iterator[float]:
        """Yield arrival times in [start, start + horizon) by thinning."""
        peak = self.base_rate * (1.0 + self.amplitude)
        now = start
        end = start + horizon
        while True:
            now += float(rng.exponential(1.0 / peak))
            if now >= end:
                return
            if rng.random() <= self.instantaneous_rate(now) / peak:
                yield now


class TraceArrivals:
    """Deterministic arrival process replaying recorded submit times.

    The times are sorted once at construction; ``times()`` offsets them
    by ``start`` and stops at the horizon, matching the generator-based
    processes' contract exactly — the ``rng`` argument is accepted (and
    ignored) so trace replay drops into any code written against
    :class:`PoissonArrivals`.

    >>> arrivals = TraceArrivals([30.0, 10.0, 90.0])
    >>> list(arrivals.times(None, horizon=60.0))
    [10.0, 30.0]
    """

    def __init__(self, submit_times: Sequence[float]) -> None:
        ordered = sorted(float(time) for time in submit_times)
        if ordered and ordered[0] < 0:
            raise ConfigurationError("trace submit times must be >= 0")
        self.submit_times = ordered

    def times(
        self,
        rng: Optional[np.random.Generator],
        horizon: float,
        start: float = 0.0,
    ) -> Iterator[float]:
        """Yield the recorded times, shifted by ``start``, within the
        horizon."""
        for time in self.submit_times:
            shifted = start + time
            if shifted >= start + horizon:
                return
            yield shifted
