"""Arrival processes: when jobs hit the scheduler.

Poisson arrivals are the baseline; the diurnal variant modulates the
rate with a day/night cycle (thinning method), reproducing the burst
structure of production traces.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError


class PoissonArrivals:
    """Homogeneous Poisson process with the given mean inter-arrival."""

    def __init__(self, mean_interarrival: float) -> None:
        if mean_interarrival <= 0:
            raise ConfigurationError("mean_interarrival must be positive")
        self.mean_interarrival = float(mean_interarrival)

    @property
    def rate(self) -> float:
        return 1.0 / self.mean_interarrival

    def times(
        self, rng: np.random.Generator, horizon: float, start: float = 0.0
    ) -> Iterator[float]:
        """Yield arrival times in [start, start + horizon)."""
        now = start
        end = start + horizon
        while True:
            now += float(rng.exponential(self.mean_interarrival))
            if now >= end:
                return
            yield now


class DiurnalArrivals:
    """Poisson process with sinusoidal day/night rate modulation.

    The instantaneous rate is
    ``base_rate * (1 + amplitude * sin(2π t / period))``, sampled by
    thinning against the peak rate.
    """

    def __init__(
        self,
        mean_interarrival: float,
        amplitude: float = 0.5,
        period: float = 24 * 3600.0,
    ) -> None:
        if mean_interarrival <= 0:
            raise ConfigurationError("mean_interarrival must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.base_rate = 1.0 / mean_interarrival
        self.amplitude = amplitude
        self.period = period

    def instantaneous_rate(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def times(
        self, rng: np.random.Generator, horizon: float, start: float = 0.0
    ) -> Iterator[float]:
        """Yield arrival times in [start, start + horizon) by thinning."""
        peak = self.base_rate * (1.0 + self.amplitude)
        now = start
        end = start + horizon
        while True:
            now += float(rng.exponential(1.0 / peak))
            if now >= end:
                return
            if rng.random() <= self.instantaneous_rate(now) / peak:
                yield now
