"""Workload synthesis: distributions, arrivals, hybrid apps, traces."""

from repro.workloads.arrivals import (
    DiurnalArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.workloads.distributions import (
    BoundedPareto,
    Constant,
    Distribution,
    Exponential,
    LogUniform,
    PowerOfTwoNodes,
    Uniform,
)
from repro.workloads.generator import CampaignDriver, submit_trace
from repro.workloads.hybrid import (
    HybridAppConfig,
    HybridAppGenerator,
    trace_kernel_payload,
)
from repro.workloads.swf import (
    TraceJob,
    clip_trace,
    jitter_trace,
    loop_trace,
    read_swf,
    rescale_trace,
    synthesise_trace,
    truncate_trace,
    write_swf,
)

__all__ = [
    "BoundedPareto",
    "CampaignDriver",
    "Constant",
    "DiurnalArrivals",
    "Distribution",
    "Exponential",
    "HybridAppConfig",
    "HybridAppGenerator",
    "LogUniform",
    "PoissonArrivals",
    "PowerOfTwoNodes",
    "TraceArrivals",
    "TraceJob",
    "Uniform",
    "clip_trace",
    "jitter_trace",
    "loop_trace",
    "read_swf",
    "rescale_trace",
    "submit_trace",
    "synthesise_trace",
    "trace_kernel_payload",
    "truncate_trace",
    "write_swf",
]
