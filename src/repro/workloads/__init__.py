"""Workload synthesis: distributions, arrivals, hybrid apps, traces."""

from repro.workloads.arrivals import DiurnalArrivals, PoissonArrivals
from repro.workloads.distributions import (
    BoundedPareto,
    Constant,
    Distribution,
    Exponential,
    LogUniform,
    PowerOfTwoNodes,
    Uniform,
)
from repro.workloads.generator import CampaignDriver, submit_trace
from repro.workloads.hybrid import HybridAppConfig, HybridAppGenerator
from repro.workloads.swf import TraceJob, read_swf, synthesise_trace, write_swf

__all__ = [
    "BoundedPareto",
    "CampaignDriver",
    "Constant",
    "DiurnalArrivals",
    "Distribution",
    "Exponential",
    "HybridAppConfig",
    "HybridAppGenerator",
    "LogUniform",
    "PoissonArrivals",
    "PowerOfTwoNodes",
    "TraceJob",
    "Uniform",
    "read_swf",
    "submit_trace",
    "synthesise_trace",
    "write_swf",
]
