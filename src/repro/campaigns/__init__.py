"""Resilient campaign orchestration: declarative DAGs of stages.

The PR-2 sweep engine executes one parameter grid; real reproduction
pipelines chain many — sweeps feeding aggregations feeding reports,
with independent branches that should not die together.  This package
runs such pipelines as declarative, journaled, resumable DAGs:

- :mod:`~repro.campaigns.spec` — :class:`CampaignSpec` /
  :class:`StageSpec`, loadable from TOML/JSON (checked-in specs ship
  in ``repro/campaigns/data``);
- :mod:`~repro.campaigns.dag` — deterministic topological order and
  downstream-cone computation;
- :mod:`~repro.campaigns.steps` — the :data:`STEPS` registry mapping
  step names (``scenario.sweep``, ``strategy.compare``, …) to code;
- :mod:`~repro.campaigns.journal` — the fsync'd stage journal resume
  reads;
- :mod:`~repro.campaigns.backends` — serial and local-pool execution
  with byte-identical values;
- :mod:`~repro.campaigns.engine` — :class:`CampaignEngine`, tying the
  above to per-stage retries, timeouts, cone-skipping and chaos.
"""

from repro.campaigns.backends import (
    BACKENDS,
    ExecutionBackend,
    LocalPoolBackend,
    SerialBackend,
    create_backend,
)
from repro.campaigns.dag import CampaignDAG
from repro.campaigns.engine import (
    CampaignEngine,
    CampaignResult,
    result_digest,
    run_campaign_spec,
    stage_seed,
)
from repro.campaigns.journal import (
    STATUS_SKIPPED,
    CampaignJournal,
    StageOutcome,
    campaign_digest,
)
from repro.campaigns.spec import (
    CampaignSpec,
    StageSpec,
    list_campaigns,
    load_campaign,
)
from repro.campaigns.steps import (
    STEPS,
    StageContext,
    StepRegistry,
    register_step,
    resolve_step,
)

__all__ = [
    "BACKENDS",
    "CampaignDAG",
    "CampaignEngine",
    "CampaignJournal",
    "CampaignResult",
    "CampaignSpec",
    "ExecutionBackend",
    "LocalPoolBackend",
    "STATUS_SKIPPED",
    "STEPS",
    "SerialBackend",
    "StageContext",
    "StageOutcome",
    "StageSpec",
    "StepRegistry",
    "campaign_digest",
    "create_backend",
    "list_campaigns",
    "load_campaign",
    "register_step",
    "resolve_step",
    "result_digest",
    "run_campaign_spec",
    "stage_seed",
]
