"""Pluggable stage-execution backends for the campaign engine.

The engine decides *what* runs (DAG order, retries, resume, chaos);
a backend decides *where* it runs.  Two are built in:

- :class:`SerialBackend` — stages execute one at a time in the
  orchestrating process (in a transient single-worker pool when the
  stage carries a timeout, because a hung in-process stage cannot be
  cancelled).
- :class:`LocalPoolBackend` — independent DAG branches execute
  concurrently in a fork-context process pool; a stage past its
  deadline kills and rebuilds the pool (the same recovery the sweep
  engine uses for hung workers).

Both speak one protocol — ``submit`` stages, ``drain`` completed
``(stage, outcome-tuple)`` pairs — and both run each stage's step as a
pure function of its :class:`~repro.campaigns.steps.StageContext`, so
campaign values are byte-identical across backends by construction.

Outcome tuples::

    ("ok", value, elapsed)
    ("err", error_text, traceback_text, elapsed)
    ("timeout", elapsed)
    ("crashed", elapsed)
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.campaigns.steps import StageContext, resolve_step
from repro.experiments.sweep import _mp_context, _terminate_pool

#: Completed-stage report: (stage name, outcome tuple).
StageReport = Tuple[str, Tuple[Any, ...]]


def _execute_stage(step_name: str, ctx: StageContext) -> Any:
    """Run one stage's step (in-process or inside a pool worker).

    Module-level so pool workers can resolve it by reference; the step
    itself is re-resolved from the registry on the worker side, which
    keeps :class:`StageContext` (plain data) the only thing pickled.
    """
    return resolve_step(step_name)(ctx)


class ExecutionBackend:
    """Where campaign stages execute.

    Lifecycle: ``start()`` once, any number of ``submit()`` /
    ``drain()`` rounds, ``stop()`` in a ``finally``.  ``drain()``
    blocks until at least one submitted stage reaches a terminal
    outcome (or a deadline expires) and returns every report that is
    ready; the engine owns retries, journaling, and ordering.
    """

    name = "abstract"

    def start(self) -> None:
        """Acquire execution resources (idempotent)."""

    def stop(self) -> None:
        """Release resources; safe to call on a never-started backend."""

    def capacity(self) -> int:
        """How many stages may be in flight at once."""
        raise NotImplementedError

    def submit(
        self,
        stage: str,
        step_name: str,
        ctx: StageContext,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        raise NotImplementedError

    def drain(self) -> List[StageReport]:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """One stage at a time, in the orchestrating process.

    The reference backend: no pools, no pickling (unless a stage
    carries a timeout, which forces a transient single-worker pool —
    an in-process hang cannot be cancelled).  Parallel backends must
    match its values byte for byte.
    """

    name = "serial"

    def __init__(self, workers: Optional[int] = None) -> None:
        # ``workers`` accepted for constructor uniformity; serial
        # execution ignores it.
        self._reports: List[StageReport] = []

    def capacity(self) -> int:
        return 1

    def submit(
        self,
        stage: str,
        step_name: str,
        ctx: StageContext,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        start = time.perf_counter()
        if timeout_seconds is not None:
            self._reports.append(
                self._isolated(stage, step_name, ctx, timeout_seconds)
            )
            return
        try:
            value = _execute_stage(step_name, ctx)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            elapsed = time.perf_counter() - start
            self._reports.append(
                (
                    stage,
                    (
                        "err",
                        f"{type(exc).__name__}: {exc}",
                        traceback.format_exc(),
                        elapsed,
                    ),
                )
            )
        else:
            elapsed = time.perf_counter() - start
            self._reports.append((stage, ("ok", value, elapsed)))

    def _isolated(
        self,
        stage: str,
        step_name: str,
        ctx: StageContext,
        timeout_seconds: float,
    ) -> StageReport:
        """Run one timed stage in a throwaway single-worker pool."""
        pool = ProcessPoolExecutor(
            max_workers=1, mp_context=_mp_context()
        )
        start = time.perf_counter()
        try:
            future = pool.submit(_execute_stage, step_name, ctx)
            try:
                value = future.result(timeout=timeout_seconds)
            except TimeoutError:
                return (stage, ("timeout", time.perf_counter() - start))
            except BrokenProcessPool:
                return (stage, ("crashed", time.perf_counter() - start))
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                return (
                    stage,
                    (
                        "err",
                        f"{type(exc).__name__}: {exc}",
                        traceback.format_exc(),
                        time.perf_counter() - start,
                    ),
                )
            return (stage, ("ok", value, time.perf_counter() - start))
        finally:
            _terminate_pool(pool)

    def drain(self) -> List[StageReport]:
        reports, self._reports = self._reports, []
        return reports


class LocalPoolBackend(ExecutionBackend):
    """Independent DAG branches in a fork-context process pool.

    A stage past its per-attempt deadline cannot be cancelled (pool
    workers are not interruptible), so expiry kills and rebuilds the
    whole pool; other in-flight stages are transparently resubmitted —
    their partial work is discarded, never charged as a failure,
    and their values are unaffected because steps are pure functions
    of their context.  A worker that dies (pool marked broken) charges
    a ``crashed`` outcome to every in-flight stage — coarser than the
    sweep engine's per-point solo quarantine, acceptable at stage
    granularity where in-flight counts are small.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        self._workers = max(1, workers or 2)
        self._pool: Optional[ProcessPoolExecutor] = None
        #: future -> (stage, step, ctx, deadline | None, started_at)
        self._inflight: Dict[Any, Tuple] = {}

    def start(self) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers, mp_context=_mp_context()
            )

    def stop(self) -> None:
        if self._pool is not None:
            _terminate_pool(self._pool)
            self._pool = None
        self._inflight.clear()

    def capacity(self) -> int:
        return self._workers

    def submit(
        self,
        stage: str,
        step_name: str,
        ctx: StageContext,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        self.start()
        deadline = (
            time.monotonic() + timeout_seconds
            if timeout_seconds is not None
            else None
        )
        future = self._pool.submit(_execute_stage, step_name, ctx)
        self._inflight[future] = (
            stage,
            step_name,
            ctx,
            timeout_seconds,
            deadline,
            time.perf_counter(),
        )

    def _rebuild(self) -> None:
        _terminate_pool(self._pool)
        self._pool = ProcessPoolExecutor(
            max_workers=self._workers, mp_context=_mp_context()
        )

    def _resubmit(self, entries: List[Tuple]) -> None:
        """Re-dispatch in-flight stages after a pool rebuild."""
        for stage, step_name, ctx, timeout_seconds, _, _ in entries:
            self.submit(stage, step_name, ctx, timeout_seconds)

    def drain(self) -> List[StageReport]:
        if not self._inflight:
            return []
        reports: List[StageReport] = []
        while not reports:
            now = time.monotonic()
            deadlines = [
                entry[4]
                for entry in self._inflight.values()
                if entry[4] is not None
            ]
            wait_for = (
                max(0.0, min(deadlines) - now) if deadlines else None
            )
            done, _pending = futures_wait(
                list(self._inflight),
                timeout=wait_for,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                entry = self._inflight.pop(future)
                stage, _, _, _, _, started = entry
                elapsed = time.perf_counter() - started
                try:
                    value = future.result()
                except BrokenProcessPool:
                    broken = True
                    reports.append((stage, ("crashed", elapsed)))
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    reports.append(
                        (
                            stage,
                            (
                                "err",
                                f"{type(exc).__name__}: {exc}",
                                traceback.format_exc(),
                                elapsed,
                            ),
                        )
                    )
                else:
                    reports.append((stage, ("ok", value, elapsed)))
            if broken:
                # The pool is unusable: charge every other in-flight
                # stage as crashed too (attribution at stage
                # granularity) and start fresh.
                for future, entry in list(self._inflight.items()):
                    stage, _, _, _, _, started = entry
                    reports.append(
                        (
                            stage,
                            ("crashed", time.perf_counter() - started),
                        )
                    )
                self._inflight.clear()
                self._rebuild()
                continue
            # Deadline sweep: expired stages time out; survivors are
            # resubmitted because the rebuild killed their workers.
            now = time.monotonic()
            expired = [
                future
                for future, entry in self._inflight.items()
                if entry[4] is not None and entry[4] <= now
            ]
            if expired:
                survivors = [
                    entry
                    for future, entry in self._inflight.items()
                    if future not in expired
                ]
                for future in expired:
                    entry = self._inflight[future]
                    reports.append(
                        (
                            entry[0],
                            ("timeout", time.perf_counter() - entry[5]),
                        )
                    )
                self._inflight.clear()
                self._rebuild()
                self._resubmit(survivors)
        return reports


#: Backend registry the CLI and engine resolve names against.
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    LocalPoolBackend.name: LocalPoolBackend,
}


def create_backend(
    name: str, workers: Optional[int] = None
) -> ExecutionBackend:
    """Instantiate a backend by registry name.

    >>> create_backend("serial").capacity()
    1
    >>> create_backend("process", workers=3).capacity()
    3
    """
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution backend {name!r} "
            f"(known: {sorted(BACKENDS)})"
        ) from None
    return backend_cls(workers=workers)
