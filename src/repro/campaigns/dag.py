"""The campaign DAG: stage dependency resolution, deterministically.

A campaign's stages form a directed acyclic graph over their ``after``
edges.  :class:`CampaignDAG` validates the graph once (unknown
dependencies, self-loops, cycles) and answers the two questions the
engine asks:

- :attr:`~CampaignDAG.order` — a *deterministic* topological order
  (Kahn's algorithm with ties broken by declaration order), so every
  run schedules ready stages identically regardless of backend or of
  which stage happened to finish first;
- :meth:`~CampaignDAG.downstream_cone` — the set of transitive
  dependents of one stage, which is exactly what gets skipped when
  that stage fails under ``on_error="collect"`` while independent
  branches keep running.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import ConfigurationError


class CampaignDAG:
    """Dependency structure over a campaign's stages.

    >>> from repro.campaigns.spec import StageSpec
    >>> dag = CampaignDAG([
    ...     StageSpec(name="a", step="report.render"),
    ...     StageSpec(name="b", step="report.render", after=("a",)),
    ...     StageSpec(name="c", step="report.render", after=("a",)),
    ...     StageSpec(name="d", step="report.render", after=("b", "c")),
    ... ])
    >>> dag.order
    ['a', 'b', 'c', 'd']
    >>> sorted(dag.downstream_cone("b"))
    ['d']
    >>> sorted(dag.downstream_cone("a"))
    ['b', 'c', 'd']
    """

    def __init__(self, stages: Sequence) -> None:
        names = [stage.name for stage in stages]
        duplicates = sorted(
            {name for name in names if names.count(name) > 1}
        )
        if duplicates:
            raise ConfigurationError(
                f"duplicate stage names: {duplicates}"
            )
        self.stages = {stage.name: stage for stage in stages}
        self._children: Dict[str, List[str]] = {name: [] for name in names}
        for stage in stages:
            for dep in stage.after:
                if dep == stage.name:
                    raise ConfigurationError(
                        f"stage {stage.name!r} depends on itself"
                    )
                if dep not in self.stages:
                    raise ConfigurationError(
                        f"stage {stage.name!r} depends on unknown stage "
                        f"{dep!r} (stages: {sorted(self.stages)})"
                    )
                self._children[dep].append(stage.name)
        self.order = self._topological_order(names)

    def _topological_order(self, names: List[str]) -> List[str]:
        """Kahn's algorithm; ready ties broken by declaration order."""
        indegree = {
            name: len(self.stages[name].after) for name in names
        }
        position = {name: index for index, name in enumerate(names)}
        ready = deque(
            sorted(
                (name for name in names if indegree[name] == 0),
                key=position.__getitem__,
            )
        )
        order: List[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            released = []
            for child in self._children[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    released.append(child)
            for child in sorted(released, key=position.__getitem__):
                ready.append(child)
        if len(order) != len(names):
            cycle = sorted(
                name for name in names if indegree[name] > 0
            )
            raise ConfigurationError(
                f"campaign stages form a cycle involving {cycle}"
            )
        return order

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """The direct dependencies of one stage, in declaration order."""
        return tuple(self.stages[name].after)

    def successors(self, name: str) -> Tuple[str, ...]:
        """The direct dependents of one stage."""
        return tuple(self._children[name])

    def downstream_cone(self, name: str) -> Set[str]:
        """Every transitive dependent of ``name`` (excluding itself)."""
        cone: Set[str] = set()
        frontier = list(self._children[name])
        while frontier:
            child = frontier.pop()
            if child in cone:
                continue
            cone.add(child)
            frontier.extend(self._children[child])
        return cone
